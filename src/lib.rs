//! # requiem — the necessary death of the block device interface, in Rust
//!
//! A full reproduction of Bjørling, Bonnet, Bouganim & Dayan,
//! *The Necessary Death of the Block Device Interface* (CIDR 2013): the
//! simulated I/O stack the paper dissects, the beyond-block interfaces it
//! envisions, and a database storage manager exercising both sides.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`sim`] — deterministic discrete-event kernel (virtual time, serial
//!   resources, histograms, seeded RNG, Gantt traces).
//! * [`flash`] — NAND model: geometry, SLC/MLC/TLC timing, constraints
//!   C1–C4, wear, bit errors, ECC.
//! * [`pcm`] — phase-change memory: byte-addressable chips, Start-Gap
//!   wear leveling, memory-bus DIMM, PCM-based SSD.
//! * [`ssd`] — the flash SSD: channels, LUN interleaving, page / block /
//!   hybrid / DFTL FTLs, garbage collection, wear leveling, write-back
//!   buffer, TRIM.
//! * [`block`] — the OS block layer: CPU path costs, single vs multi
//!   queue, interrupt vs polling, elevator scheduling, a disk model.
//! * [`iface`] — beyond the block device: atomic writes, nameless writes
//!   with migration upcalls, the communication abstraction.
//! * [`db`] — a miniature storage manager (pages, heap, B+tree, buffer
//!   pool, WAL, recovery) with legacy and vision persistence backends.
//! * [`workload`] — uFLIP-style patterns, zipfian skew, OLTP mixes,
//!   closed-loop drivers.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-claim-by-claim reproduction results.
//!
//! ## Quickstart
//!
//! ```
//! use requiem::ssd::{Lpn, Ssd, SsdConfig};
//! use requiem::sim::time::SimTime;
//!
//! let mut ssd = Ssd::new(SsdConfig::modern());
//! let w = ssd.write(SimTime::ZERO, Lpn(0)).unwrap();
//! println!("a buffered write completes in {}", w.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use requiem_block as block;
pub use requiem_db as db;
pub use requiem_flash as flash;
pub use requiem_iface as iface;
pub use requiem_pcm as pcm;
pub use requiem_sim as sim;
pub use requiem_ssd as ssd;
pub use requiem_workload as workload;
