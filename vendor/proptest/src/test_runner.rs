//! Test-case execution: config, deterministic RNG, and the error type
//! produced by the `prop_assert*` macros.

/// Why a generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The test body's assertion failed.
    Fail(String),
    /// The input was rejected (unused by the workspace, kept for API shape).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration for a `proptest!` block (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising plenty of inputs. Tests that need more pass an
        // explicit `#![proptest_config(ProptestConfig::with_cases(n))]`.
        Config { cases: 64 }
    }
}

/// Deterministic random source for strategy sampling (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; 0 when `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // widening multiply maps the full u64 range onto [0, bound);
        // bias is < 2^-64 per draw, irrelevant for test-input generation
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Drives the cases of one property test deterministically.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    name_seed: u64,
}

impl TestRunner {
    /// Create a runner for the named test (name seeds the RNG streams).
    pub fn new(config: Config, name: &str) -> Self {
        // FNV-1a over the fully qualified test name
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            name_seed: h,
        }
    }

    /// Number of cases this runner will execute.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic RNG for one case index.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::from_seed(self.name_seed ^ (u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }
}
