//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the subset of the proptest API that the workspace's
//! property tests use, with the same semantics minus input shrinking:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges and 2/3-tuples
//! - [`collection::vec`] with a `Range<usize>` size
//! - weighted/unweighted [`prop_oneof!`]
//! - the [`proptest!`] block macro with optional
//!   `#![proptest_config(...)]`, and the `prop_assert*` macros
//!
//! Sampling is deterministic: each test case draws from a splitmix64
//! stream seeded by FNV-1a over the test's module path and name plus the
//! case index, so failures reproduce exactly on re-run. On failure the
//! generated inputs are printed in full (no shrinking is attempted — the
//! workspace's inputs are small enough to read directly).
//!
//! Only what the workspace uses is implemented; extend as needed.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a proptest body; on failure returns
/// `Err(TestCaseError)` from the enclosing (generated) closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Build a [`strategy::Union`] over alternatives, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let boxed: ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> =
                    ::std::boxed::Box::new($strat);
                (($weight) as u32, boxed)
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and test functions of the form
/// `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let inputs = [
                    $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                ]
                .join(", ");
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}\ninputs: {inputs}",
                        stringify!($name),
                        runner.cases(),
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}
