//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A half-open range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let width = self.size.end.saturating_sub(self.size.start) as u64;
        let len = self.size.start + rng.below(width) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
