//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators the workspace uses (integer ranges, tuples, `prop_map`,
//! weighted unions).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Object-safe (`Box<dyn Strategy<Value = T>>` works) so that
/// [`prop_oneof!`](crate::prop_oneof) can mix heterogeneous alternatives.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draw one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as u64).saturating_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let width = (i128::from(self.end) - i128::from(self.start)).max(0) as u64;
                (i128::from(self.start) + i128::from(rng.below(width))) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// A weighted choice between boxed alternatives (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T: Debug> {
    alts: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    /// Build a union from `(weight, strategy)` alternatives.
    ///
    /// # Panics
    /// If `alts` is empty or all weights are zero.
    pub fn new(alts: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = alts.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! requires at least one positively weighted alternative"
        );
        Union { alts, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.alts {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}
