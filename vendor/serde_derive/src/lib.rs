//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no network access, so the
//! real `serde_derive` cannot be fetched. Nothing in the workspace actually
//! serializes anything (there is no `serde_json` or other format crate);
//! the `#[derive(Serialize, Deserialize)]` attributes exist so that config
//! structs keep a serde-compatible shape for downstream users. These
//! derives therefore expand to nothing, while still accepting the
//! `#[serde(...)]` helper attribute so annotated fields compile.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts `#[serde(...)]` attributes, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts `#[serde(...)]` attributes, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
