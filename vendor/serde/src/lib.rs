//! Offline stand-in for `serde`.
//!
//! This crate exists because the build environment has no network access to
//! crates.io. The workspace only uses serde for `#[derive(Serialize,
//! Deserialize)]` markers on config structs — no format crate (serde_json,
//! bincode, ...) is present, so no code path ever calls into serde. The
//! traits here are empty markers and the derives (re-exported from the
//! sibling `serde_derive` stub) expand to nothing.
//!
//! If real serialization is ever needed, replace `[workspace.dependencies]
//! serde` in the root `Cargo.toml` with the crates.io release; the derive
//! attributes in the workspace are already written against the real API.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
