//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so this
//! crate implements the subset of the criterion API the bench crate uses
//! — `Criterion` + `benchmark_group` + `bench_function`, `Bencher::iter`
//! / `iter_batched`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a straightforward wall-clock
//! harness:
//!
//! - warm up for `warm_up_time`, auto-scaling the per-batch iteration
//!   count,
//! - collect `sample_size` samples spread over `measurement_time`,
//! - report median / mean ns-per-iteration (and throughput when
//!   configured) as plain text.
//!
//! There is no statistical regression analysis, HTML report, or saved
//! baseline; numbers are comparable within a run, which is what the
//! BENCH_* trajectory tooling consumes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized in [`Bencher::iter_batched`].
///
/// The stand-in harness always materialises one input per timed
/// iteration, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many.
    SmallInput,
    /// Inputs are expensive to hold; batch few.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: MeasureConfig,
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Total time budget for measurement samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let cfg = self.cfg;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            cfg,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    cfg: MeasureConfig,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`].
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            cfg: self.cfg,
            samples_ns_per_iter: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.into(), self.throughput);
    }

    /// Finish the group (plain-text harness: purely cosmetic).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    cfg: MeasureConfig,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up while growing the batch size until one batch takes a
        // measurable slice of the warm-up budget.
        let mut batch: u64 = 1;
        let warm_end = Instant::now() + self.cfg.warm_up_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warm_end {
                // aim each sample at measurement_time / sample_size
                let per_iter = dt.as_nanos().max(1) as f64 / batch as f64;
                let target =
                    self.cfg.measurement_time.as_nanos() as f64 / self.cfg.sample_size as f64;
                batch = ((target / per_iter).ceil() as u64).clamp(1, 1 << 24);
                break;
            }
            if dt < Duration::from_millis(1) {
                batch = batch.saturating_mul(2).min(1 << 24);
            }
        }
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns_per_iter.push(ns);
        }
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up briefly.
        let warm_end = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        // One timed input per sample; setup excluded.
        for _ in 0..self.cfg.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns_per_iter
                .push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns_per_iter.is_empty() {
            println!("{group}/{id}: no samples (benchmark body never called iter)");
            return;
        }
        self.samples_ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = self.samples_ns_per_iter.len();
        let median = self.samples_ns_per_iter[n / 2];
        let mean = self.samples_ns_per_iter.iter().sum::<f64>() / n as f64;
        let rate = match throughput {
            Some(Throughput::Elements(e)) if median > 0.0 => {
                format!(" ({:.3} Melem/s)", e as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(by)) if median > 0.0 => {
                format!(
                    " ({:.3} MiB/s)",
                    by as f64 * 1e9 / median / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("{group}/{id}: median {median:.1} ns/iter, mean {mean:.1} ns/iter{rate}");
    }
}

/// Define a benchmark group function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
