#!/usr/bin/env bash
# Perf gate for the simulation kernel.
#
# The bench binary (`bench_kernel`) is virtual-time deterministic and
# never reads a clock — the determinism lint bans wall-clock sources in
# every simulation-path crate. So this script owns the stopwatch: it
# times each sub-bench (best of 3), composes `BENCH_kernel.json`, and in
# check mode fails the build when
#
#   * a sub-bench checksum changed (the deterministic work itself
#     changed — regenerate the JSON deliberately, don't let it drift),
#   * events/sec regressed more than REGRESS_TOL vs the checked-in
#     numbers (machine-dependent, hence the generous tolerance), or
#   * the aggregated-probe sampling path is no longer at least
#     MIN_PROBE_SPEEDUP x the recording-clone baseline (a wall-clock
#     *ratio* on the same machine, so this one is machine-independent).
#
# Usage:
#   scripts/perf_gate.sh --write   # regenerate BENCH_kernel.json
#   scripts/perf_gate.sh check     # gate against BENCH_kernel.json
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BENCH_KERNEL_BIN:-target/release/bench_kernel}
JSON=BENCH_kernel.json
BENCHES="queue_churn blame_alloc blame_scratch probe_recording_clone probe_aggregated"
REGRESS_TOL=${REGRESS_TOL:-20}      # percent
MIN_PROBE_SPEEDUP=${MIN_PROBE_SPEEDUP:-5}

[ -x "$BIN" ] || { echo "perf_gate: $BIN missing; build with: cargo build --release -p requiem-bench --bin bench_kernel" >&2; exit 1; }

declare -A EVENTS CHECKSUM WALL_MS EPS

run_bench() {
    local name=$1 best_ms=0 out s e ms
    for _ in 1 2 3; do
        s=$(date +%s%N)
        out=$("$BIN" "$name")
        e=$(date +%s%N)
        ms=$(( (e - s) / 1000000 )); [ "$ms" -lt 1 ] && ms=1
        if [ "$best_ms" -eq 0 ] || [ "$ms" -lt "$best_ms" ]; then best_ms=$ms; fi
    done
    EVENTS[$name]=$(sed -n 's/.*events=\([0-9]*\).*/\1/p' <<<"$out")
    CHECKSUM[$name]=$(sed -n 's/.*checksum=\([0-9]*\).*/\1/p' <<<"$out")
    WALL_MS[$name]=$best_ms
    EPS[$name]=$(( EVENTS[$name] * 1000 / best_ms ))
    echo "  $name: events=${EVENTS[$name]} wall_ms=${best_ms} events/sec=${EPS[$name]}"
}

echo "perf_gate: timing kernel sub-benches (best of 3)"
for b in $BENCHES; do run_bench "$b"; done

speedup_x100=$(( EPS[probe_aggregated] * 100 / EPS[probe_recording_clone] ))
speedup_str=$(printf '%d.%02dx' $((speedup_x100 / 100)) $((speedup_x100 % 100)))
echo "  probe aggregated-vs-clone speedup: $speedup_str"

json_field() { # file bench field
    sed -n "s/.*{\"name\":\"$2\",\"events\":\([0-9]*\),\"checksum\":\"\([0-9]*\)\",\"wall_ms\":\([0-9]*\),\"events_per_sec\":\([0-9]*\)}.*/\\$3/p" "$1"
}

case "${1:-check}" in
--write)
    {
        printf '{\n'
        printf '  "_regenerate": "cargo build --release -p requiem-bench --bin bench_kernel && scripts/perf_gate.sh --write (wall-clock best-of-3; events and checksums are deterministic, times are machine-dependent)",\n'
        printf '  "gate": {"regression_tolerance_pct": %s, "min_probe_speedup": %s},\n' "$REGRESS_TOL" "$MIN_PROBE_SPEEDUP"
        printf '  "probe_speedup_x100": %s,\n' "$speedup_x100"
        printf '  "benches": [\n'
        first=1
        for b in $BENCHES; do
            [ $first -eq 0 ] && printf ',\n'
            first=0
            printf '    {"name":"%s","events":%s,"checksum":"%s","wall_ms":%s,"events_per_sec":%s}' \
                "$b" "${EVENTS[$b]}" "${CHECKSUM[$b]}" "${WALL_MS[$b]}" "${EPS[$b]}"
        done
        printf '\n  ]\n}\n'
    } >"$JSON"
    echo "perf_gate: wrote $JSON"
    ;;
check)
    [ -f "$JSON" ] || { echo "perf_gate: $JSON missing; run scripts/perf_gate.sh --write" >&2; exit 1; }
    fail=0
    for b in $BENCHES; do
        want_sum=$(json_field "$JSON" "$b" 2)
        want_eps=$(json_field "$JSON" "$b" 4)
        if [ -z "$want_sum" ] || [ -z "$want_eps" ]; then
            echo "perf_gate: FAIL $b not found in $JSON (regenerate with --write)"; fail=1; continue
        fi
        if [ "${CHECKSUM[$b]}" != "$want_sum" ]; then
            echo "perf_gate: FAIL $b checksum ${CHECKSUM[$b]} != recorded $want_sum (deterministic work changed; regenerate $JSON deliberately)"
            fail=1
        fi
        floor=$(( want_eps * (100 - REGRESS_TOL) / 100 ))
        if [ "${EPS[$b]}" -lt "$floor" ]; then
            echo "perf_gate: FAIL $b events/sec ${EPS[$b]} < floor $floor (recorded $want_eps, tolerance ${REGRESS_TOL}%)"
            fail=1
        else
            echo "perf_gate: ok   $b events/sec ${EPS[$b]} >= floor $floor"
        fi
    done
    if [ "$speedup_x100" -lt $(( MIN_PROBE_SPEEDUP * 100 )) ]; then
        echo "perf_gate: FAIL aggregated-probe speedup $speedup_str < ${MIN_PROBE_SPEEDUP}x"
        fail=1
    else
        echo "perf_gate: ok   aggregated-probe speedup >= ${MIN_PROBE_SPEEDUP}x"
    fi
    exit $fail
    ;;
*)
    echo "usage: scripts/perf_gate.sh [--write|check]" >&2
    exit 2
    ;;
esac
