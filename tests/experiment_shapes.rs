//! Regression harness for the paper's claims: every headline experiment
//! *shape* in EXPERIMENTS.md is asserted here, so a refactor that silently
//! breaks the reproduction fails CI.

use requiem::iface::atomic::{double_write_journal, ExtendedSsd};
use requiem::pcm::{PcmDimm, PcmTiming};
use requiem::sim::time::SimTime;
use requiem::ssd::{ArrayShape, BufferConfig, ChannelTiming, Lpn, Placement, Ssd, SsdConfig};
use requiem::workload::driver::{precondition_sequential, run_closed_loop, IoMix};
use requiem::workload::pattern::{AddressPattern, Pattern};

fn unbuffered() -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg
}

/// E1 / Figure 1: sustained reads are channel-bound, writes chip-bound.
#[test]
fn e1_reads_channel_bound_writes_chip_bound() {
    let cfg = SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 4,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    };
    // reads
    let mut ssd = Ssd::new(cfg.clone());
    let t = precondition_sequential(&mut ssd, 512, SimTime::ZERO);
    let cb = ssd.channel_busy_time()[0];
    let lb: u64 = ssd.lun_busy_time().iter().map(|d| d.as_nanos()).sum();
    let mut pat = AddressPattern::new(Pattern::Sequential, 512, 1);
    run_closed_loop(&mut ssd, &mut pat, IoMix::read_only(), 16, 512, 1, t);
    let window = ssd.drain_time().since(t).as_nanos() as f64;
    let chan_util = (ssd.channel_busy_time()[0].as_nanos() - cb.as_nanos()) as f64 / window;
    let chips_util = (ssd
        .lun_busy_time()
        .iter()
        .map(|d| d.as_nanos())
        .sum::<u64>()
        - lb) as f64
        / 4.0
        / window;
    assert!(chan_util > 0.9, "reads: channel util {chan_util}");
    assert!(chips_util < 0.3, "reads: chip util {chips_util}");

    // writes
    let mut ssd = Ssd::new(cfg);
    let mut pat = AddressPattern::new(Pattern::Sequential, 2048, 2);
    run_closed_loop(
        &mut ssd,
        &mut pat,
        IoMix::write_only(),
        16,
        512,
        2,
        SimTime::ZERO,
    );
    let window = ssd.drain_time().since(SimTime::ZERO).as_nanos() as f64;
    let chan_util = ssd.channel_busy_time()[0].as_nanos() as f64 / window;
    let chips_util = ssd
        .lun_busy_time()
        .iter()
        .map(|d| d.as_nanos())
        .sum::<u64>() as f64
        / 4.0
        / window;
    assert!(chips_util > 0.9, "writes: chip util {chips_util}");
    assert!(chan_util < 0.6, "writes: channel util {chan_util}");
}

/// E2 / myth 1: a buffered device write completes far below tPROG; the
/// array outperforms a single chip by an order of magnitude.
#[test]
fn e2_device_is_not_a_chip() {
    let mut ssd = Ssd::new(SsdConfig::modern());
    let w = ssd.write(SimTime::ZERO, Lpn(0)).unwrap();
    let tprog = SsdConfig::modern().flash.timing.program_mean();
    assert!(w.latency.as_nanos() * 10 < tprog.as_nanos());

    let run_bw = |channels: u32, chips: u32| -> f64 {
        let mut cfg = unbuffered();
        cfg.shape.channels = channels;
        cfg.shape.chips_per_channel = chips;
        let mut ssd = Ssd::new(cfg);
        let span = ssd.capacity().exported_pages;
        let mut pat = AddressPattern::new(Pattern::Sequential, span, 1);
        run_closed_loop(
            &mut ssd,
            &mut pat,
            IoMix::write_only(),
            32,
            1024,
            1,
            SimTime::ZERO,
        )
        .mb_per_s
    };
    assert!(run_bw(8, 4) > 10.0 * run_bw(1, 1));
}

/// E3 / myth 2: random/sequential write ratio per device generation.
#[test]
fn e3_random_write_parity_is_generational() {
    let ratio = |cfg: SsdConfig| -> f64 {
        let mut rates = Vec::new();
        for pattern in [Pattern::Sequential, Pattern::UniformRandom] {
            let mut ssd = Ssd::new(cfg.clone());
            let span = ssd.capacity().exported_pages / 4;
            let t = precondition_sequential(&mut ssd, span, SimTime::ZERO);
            let mut pat = AddressPattern::new(pattern, span, 1);
            let r = run_closed_loop(&mut ssd, &mut pat, IoMix::write_only(), 4, 1024, 1, t);
            rates.push(r.mb_per_s);
        }
        rates[1] / rates[0]
    };
    assert!(
        ratio(SsdConfig::circa_2009_hybrid()) < 0.25,
        "2009 hybrid must collapse under random writes"
    );
    assert!(
        ratio(SsdConfig::circa_2009_block()) < 0.5,
        "2009 block map must degrade under random writes"
    );
    let modern = ratio(SsdConfig::modern());
    assert!(
        modern > 0.8,
        "modern page-mapped device must reach parity, got {modern}"
    );
}

/// E3c: sustained random churn amplifies writes; sequential does not.
#[test]
fn e3c_random_churn_raises_write_amplification() {
    let wa = |pattern: Pattern| -> f64 {
        let mut cfg = unbuffered();
        cfg.shape.channels = 2;
        cfg.shape.chips_per_channel = 2;
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let t = precondition_sequential(&mut ssd, pages, SimTime::ZERO);
        let mut pat = AddressPattern::new(pattern, pages, 3);
        run_closed_loop(&mut ssd, &mut pat, IoMix::write_only(), 4, 3 * pages, 3, t);
        ssd.metrics().write_amplification()
    };
    let seq = wa(Pattern::Sequential);
    let rnd = wa(Pattern::UniformRandom);
    assert!(seq < 1.1, "sequential churn WA {seq}");
    assert!(rnd > 1.5, "random churn WA {rnd}");
}

/// E4 / myth 3: read tail inflates amid writes; placement gates
/// read parallelism.
#[test]
fn e4_reads_suffer_at_the_device_level() {
    // (a) tail inflation
    let mut cfg = unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    let mut quiet = Ssd::new(cfg.clone());
    let pages = quiet.capacity().exported_pages;
    let t = precondition_sequential(&mut quiet, pages, SimTime::ZERO);
    let mut pat = AddressPattern::new(Pattern::UniformRandom, pages, 1);
    let base = run_closed_loop(&mut quiet, &mut pat, IoMix::read_only(), 4, 1024, 1, t);

    let mut noisy = Ssd::new(cfg);
    let t = precondition_sequential(&mut noisy, pages, SimTime::ZERO);
    let mut pat = AddressPattern::new(Pattern::UniformRandom, pages, 2);
    run_closed_loop(&mut noisy, &mut pat, IoMix::write_only(), 4, pages, 2, t);
    let t = noisy.drain_time();
    let mut pat = AddressPattern::new(Pattern::UniformRandom, pages, 3);
    run_closed_loop(&mut noisy, &mut pat, IoMix::mixed(0.5), 8, 2048, 3, t);
    let noisy_p99 = noisy.metrics().read_latency.p99();
    assert!(
        noisy_p99 > 5 * base.latency.p99(),
        "read p99 should inflate: quiet {} noisy {}",
        base.latency.p99(),
        noisy_p99
    );

    // (b) placement gates parallelism
    let mut striped = Ssd::new(unbuffered());
    let nluns = striped.config().total_luns() as u64;
    let mut one_lun = Ssd::new(SsdConfig {
        placement: Placement::StaticByLpn,
        ..unbuffered()
    });
    let mut t1 = SimTime::ZERO;
    let mut t2 = SimTime::ZERO;
    for i in 0..128u64 {
        t1 = striped.write(t1, Lpn(i)).unwrap().done;
        t2 = one_lun.write(t2, Lpn(i * nluns)).unwrap().done;
    }
    let (mut d1, mut d2) = (striped.drain_time(), one_lun.drain_time());
    let start1 = d1;
    let start2 = d2;
    for i in 0..256u64 {
        d1 = d1.max(striped.read(start1, Lpn(i % 128)).unwrap().done);
        d2 = d2.max(one_lun.read(start2, Lpn((i % 128) * nluns)).unwrap().done);
    }
    let striped_span = d1.since(start1);
    let one_lun_span = d2.since(start2);
    assert!(
        striped_span.as_nanos() * 3 < one_lun_span.as_nanos(),
        "striped {striped_span} vs one-lun {one_lun_span}"
    );
}

/// E5: TRIM cuts GC work when dead data stays dead.
#[test]
fn e5_trim_reduces_write_amplification() {
    let churn = |use_trim: bool| -> f64 {
        let mut cfg = unbuffered();
        cfg.shape.channels = 2;
        cfg.shape.chips_per_channel = 1;
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let mut t = precondition_sequential(&mut ssd, pages, SimTime::ZERO);
        if use_trim {
            for lpn in 0..pages / 3 {
                t = ssd.trim(t, Lpn(lpn)).unwrap().done;
            }
        }
        let survivors = pages - pages / 3;
        let before = ssd.metrics().flash_programs.total();
        let before_host = ssd.metrics().host_writes;
        let mut x = 17u64;
        for _ in 0..2 * pages {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lpn = pages / 3 + x % survivors;
            t = ssd.write(t, Lpn(lpn)).unwrap().done;
        }
        let m = ssd.metrics();
        (m.flash_programs.total() - before) as f64 / (m.host_writes - before_host) as f64
    };
    let without = churn(false);
    let with = churn(true);
    assert!(
        with * 1.3 < without,
        "TRIM should clearly cut WA: without {without:.2} with {with:.2}"
    );
}

/// E6: atomic batch = 1× programs; journal = 2×.
#[test]
fn e6_atomic_write_halves_journal_traffic() {
    let lpns: Vec<Lpn> = (0..16).map(Lpn).collect();
    let mut dev = ExtendedSsd::new(Ssd::new(unbuffered()));
    let a = dev.write_atomic(SimTime::ZERO, &lpns).unwrap();
    assert_eq!(dev.inner().metrics().flash_programs.total(), 16);

    let mut ssd = Ssd::new(unbuffered());
    let j = double_write_journal(&mut ssd, SimTime::ZERO, &lpns, Lpn(1024)).unwrap();
    assert_eq!(ssd.metrics().flash_programs.total(), 32);
    assert!(j.latency.as_nanos() > 3 * a.latency.as_nanos() / 2);
}

/// E7 / P1: the PCM log force is orders of magnitude below a flash one.
#[test]
fn e7_pcm_log_force_is_orders_faster() {
    let mut dimm = PcmDimm::new(1 << 20, PcmTiming::gen1(), 100);
    let pcm_force = dimm
        .persist(SimTime::ZERO, 0, &[0u8; 256])
        .since(SimTime::ZERO);
    let mut ssd = Ssd::new(unbuffered());
    let flash_force = ssd.write(SimTime::ZERO, Lpn(0)).unwrap().latency;
    assert!(
        flash_force.as_nanos() > 100 * pcm_force.as_nanos(),
        "flash {flash_force} vs pcm {pcm_force}"
    );
}

/// E9: software share negligible on a disk, dominant on a buffered write.
#[test]
fn e9_software_share_flips_with_the_device() {
    use requiem::block::{Disk, DiskConfig, IoRequest, IoStack, StackConfig};
    let mut disk_stack = IoStack::new(StackConfig::legacy(1), Disk::new(DiskConfig::hdd_7200()));
    let mut t = SimTime::ZERO;
    let mut s = 99u64;
    for _ in 0..32 {
        s = (s.wrapping_mul(999983)) % (1 << 20);
        t = disk_stack.submit(t, 0, IoRequest::read(s)).done;
    }
    assert!(disk_stack.software_share() < 0.01);

    let mut ssd_stack = IoStack::new(StackConfig::legacy(1), Ssd::new(SsdConfig::modern()));
    let mut t = SimTime::ZERO;
    for lba in 0..32u64 {
        t = ssd_stack.submit(t, 0, IoRequest::write(lba)).done;
    }
    assert!(ssd_stack.software_share() > 0.25);
}

/// E10: the PCM SSD still queues on banks; the DIMM path crushes both.
#[test]
fn e10_pcm_complexity_persists() {
    use requiem::pcm::ssd::PcmSsdConfig;
    use requiem::pcm::PcmSsd;
    let mut dev = PcmSsd::new(PcmSsdConfig::small());
    let a = dev.read_page(SimTime::ZERO, 0);
    let b = dev.read_page(SimTime::ZERO, 16); // same bank
    assert!(b.latency > a.latency, "same-bank requests must queue");
    // memory-bus path is far below even the PCM SSD's block path
    let mut dimm = PcmDimm::new(1 << 20, PcmTiming::gen1(), 100);
    let line = dimm
        .persist(SimTime::ZERO, 0, &[0u8; 64])
        .since(SimTime::ZERO);
    assert!(a.latency.as_nanos() > 5 * line.as_nanos());
}
