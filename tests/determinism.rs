//! The reproducibility contract: identical seeds and configurations must
//! produce bit-identical simulations — the property uFLIP-style "sound
//! measurements" (the paper's ref [3]) are built on.

use requiem::sim::time::SimTime;
use requiem::ssd::{Lpn, Ssd, SsdConfig};
use requiem::workload::driver::{run_closed_loop, IoMix};
use requiem::workload::pattern::{AddressPattern, Pattern};

fn run_once(seed: u64) -> (u64, u64, u64, u64, f64) {
    let mut cfg = SsdConfig::modern();
    cfg.seed = seed;
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    let mut pat = AddressPattern::new(Pattern::UniformRandom, pages, seed);
    let start = ssd.drain_time();
    let r = run_closed_loop(
        &mut ssd,
        &mut pat,
        IoMix::mixed(0.3),
        8,
        2 * pages,
        seed,
        start,
    );
    let m = ssd.metrics();
    (
        m.flash_programs.total(),
        m.flash_erases.total(),
        m.gc_pages_moved,
        ssd.drain_time().as_nanos(),
        r.iops,
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.0, b.0, "programs");
    assert_eq!(a.1, b.1, "erases");
    assert_eq!(a.2, b.2, "gc pages");
    assert_eq!(a.3, b.3, "drain time (ns)");
    assert_eq!(a.4.to_bits(), b.4.to_bits(), "iops bit pattern");
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1);
    let b = run_once(2);
    // the random pattern differs, so fine-grained outcomes must diverge
    assert_ne!(a.3, b.3, "two seeds produced identical timelines");
}

#[test]
fn oltp_generation_replays_identically() {
    use requiem::workload::oltp::{OltpConfig, OltpGen};
    let mut a = OltpGen::new(OltpConfig::default(), 7);
    let mut b = OltpGen::new(OltpConfig::default(), 7);
    for _ in 0..500 {
        let (x, y) = (a.next_txn(), b.next_txn());
        assert_eq!(x.accesses, y.accesses);
        assert_eq!(x.log_bytes, y.log_bytes);
    }
}

#[test]
fn nameless_device_is_deterministic_too() {
    use requiem::iface::nameless::{NamelessConfig, NamelessSsd};
    let run = || {
        let base = SsdConfig::modern();
        let mut dev = NamelessSsd::new(NamelessConfig::from(&base));
        let mut t = SimTime::ZERO;
        let mut names = Vec::new();
        for tag in 0..512u64 {
            let w = dev.write(t, tag).expect("write");
            t = w.done;
            names.push(w.name);
        }
        (t, names)
    };
    let (t1, n1) = run();
    let (t2, n2) = run();
    assert_eq!(t1, t2);
    assert_eq!(n1, n2);
}
