//! Cross-crate integration: the database engine drives the simulated
//! I/O stack end-to-end on both persistence designs; crash/recovery and
//! device-level accounting are cross-checked.

use requiem::db::backend::{LegacyBackend, PersistenceBackend, VisionBackend};
use requiem::db::engine::{Database, DbConfig};
use requiem::ssd::SsdConfig;
use requiem::workload::oltp::{OltpConfig, OltpGen};
use std::collections::HashMap;

fn db_cfg() -> DbConfig {
    DbConfig {
        buffer_frames: 64,
        data_pages: 512,
        slots_per_page: 16,
        record_size: 100,
        checkpoint_every: 0,
        group_commit: 1,
        ..DbConfig::default()
    }
}

fn legacy() -> Database<LegacyBackend> {
    let mut ssd_cfg = SsdConfig::modern();
    ssd_cfg.buffer.capacity_pages = 0;
    let mut db = Database::new(db_cfg(), LegacyBackend::new(ssd_cfg, 512, 128));
    db.load();
    db
}

fn vision() -> Database<VisionBackend> {
    let mut flash_cfg = SsdConfig::modern();
    flash_cfg.buffer.capacity_pages = 0;
    let mut db = Database::new(db_cfg(), VisionBackend::new(flash_cfg, 512, 1 << 22));
    db.load();
    db
}

/// Run an OLTP mix and track the expected last writer of every slot.
fn run_tracked<B: PersistenceBackend>(
    db: &mut Database<B>,
    txns: u64,
    seed: u64,
) -> HashMap<(u64, u16), u64> {
    let mut gen = OltpGen::new(
        OltpConfig {
            data_pages: 512,
            ..OltpConfig::default()
        },
        seed,
    );
    let mut expected: HashMap<(u64, u16), u64> = HashMap::new();
    for _ in 0..txns {
        let txn = gen.next_txn();
        let acc: Vec<(u64, u16, bool)> = txn
            .accesses
            .iter()
            .map(|a| (a.page, (a.page % 16) as u16, a.dirty))
            .collect();
        let out = db.execute(&acc, txn.log_bytes);
        for &(page, slot, dirty) in &acc {
            if dirty {
                expected.insert((page % 512, slot % 16), out.txn);
            }
        }
    }
    expected
}

#[test]
fn committed_state_survives_crash_on_both_backends() {
    // legacy
    let mut db = legacy();
    let expected = run_tracked(&mut db, 300, 5);
    db.crash();
    db.recover();
    for (&(page, slot), &txn) in &expected {
        assert_eq!(db.visible_owner(page, slot), txn, "legacy ({page},{slot})");
    }
    // vision
    let mut db = vision();
    let expected = run_tracked(&mut db, 300, 5);
    db.crash();
    db.recover();
    for (&(page, slot), &txn) in &expected {
        assert_eq!(db.visible_owner(page, slot), txn, "vision ({page},{slot})");
    }
}

#[test]
fn both_backends_agree_on_logical_state() {
    // identical workload, seed, and engine — physical worlds differ, the
    // logical outcome must not
    let mut a = legacy();
    let mut b = vision();
    let ea = run_tracked(&mut a, 200, 9);
    let eb = run_tracked(&mut b, 200, 9);
    assert_eq!(ea, eb, "workload generation must be deterministic");
    for (&(page, slot), &txn) in &ea {
        assert_eq!(a.visible_owner(page, slot), txn);
        assert_eq!(b.visible_owner(page, slot), txn);
    }
}

#[test]
fn vision_is_strictly_faster_on_commit_heavy_oltp() {
    let mut a = legacy();
    let mut b = vision();
    run_tracked(&mut a, 300, 3);
    run_tracked(&mut b, 300, 3);
    assert!(
        b.now() < a.now(),
        "vision {} should beat legacy {}",
        b.now(),
        a.now()
    );
    // and the gap comes from commit stalls specifically
    assert!(b.stats().commit_stall < a.stats().commit_stall);
}

#[test]
fn device_accounting_is_consistent_with_engine_traffic() {
    let mut db = legacy();
    run_tracked(&mut db, 200, 7);
    let be_stats = db.backend().stats().clone();
    let ssd = db.backend().ssd();
    let m = ssd.metrics();
    let log_forces = db.wal_backend().stats().log_forces;
    // every backend-level write/read became at least one host command on
    // the device (log forces can spill into multiple page writes)
    assert!(m.host_writes >= be_stats.page_writes + be_stats.steal_writes + log_forces);
    assert_eq!(m.host_reads, be_stats.page_reads);
    // no metrics went backwards
    assert!(m.write_amplification() >= 1.0 - 1e-9);
}

#[test]
fn checkpoints_bound_recovery_replay() {
    let mut cfg = db_cfg();
    cfg.checkpoint_every = 50;
    let mut ssd_cfg = SsdConfig::modern();
    ssd_cfg.buffer.capacity_pages = 0;
    let mut db = Database::new(cfg, LegacyBackend::new(ssd_cfg, 512, 128));
    db.load();
    let expected = run_tracked(&mut db, 300, 13);
    db.crash();
    let replayed = db.recover();
    // with a checkpoint every 50 txns and ≤ 4 dirty slots per txn, the
    // replay is bounded by roughly one checkpoint interval of updates
    assert!(
        replayed <= 50 * 4 + 8,
        "replay {replayed} not bounded by the checkpoint interval"
    );
    for (&(page, slot), &txn) in &expected {
        assert_eq!(db.visible_owner(page, slot), txn);
    }
}
