//! **E7 — Principle P1**: separate synchronous from asynchronous
//! persistence.
//!
//! The same storage manager (buffer pool, WAL, checkpoints) runs on two
//! backends: **legacy** (everything through one flash SSD's block
//! interface) and **vision** (log forces and buffer steals to a PCM DIMM
//! on the memory bus; data traffic to flash with atomic batches and TRIM).
//! The workload is a TPC-B-flavoured OLTP mix.

use requiem_bench::{note, section};
use requiem_db::backend::{LegacyBackend, PersistenceBackend, VisionBackend};
use requiem_db::engine::{Database, DbConfig};
use requiem_sim::table::Align;
use requiem_sim::time::SimDuration;
use requiem_sim::Table;
use requiem_ssd::SsdConfig;
use requiem_workload::oltp::{OltpConfig, OltpGen};

struct RunResult {
    label: String,
    tps: f64,
    txn_p50: u64,
    txn_p99: u64,
    commit_p50: u64,
    commit_p99: u64,
    steals: u64,
    read_stall: SimDuration,
    commit_stall: SimDuration,
}

fn run<B: PersistenceBackend>(label: &str, mut db: Database<B>, txns: u64) -> RunResult {
    let oltp = OltpConfig {
        pages_per_txn: 4,
        read_only_fraction: 0.5,
        log_bytes_per_txn: 256,
        data_pages: 1024,
        theta: 0.8,
    };
    let mut gen = OltpGen::new(oltp, 7);
    db.load();
    let t0 = db.now();
    for _ in 0..txns {
        let txn = gen.next_txn();
        let accesses: Vec<(u64, u16, bool)> = txn
            .accesses
            .iter()
            .map(|a| (a.page, (a.page % 16) as u16, a.dirty))
            .collect();
        db.execute(&accesses, txn.log_bytes);
    }
    let span = db.now().since(t0);
    let s = db.stats().clone();
    RunResult {
        label: label.to_string(),
        tps: txns as f64 / span.as_secs_f64().max(1e-12),
        txn_p50: db.txn_latency().p50(),
        txn_p99: db.txn_latency().p99(),
        commit_p50: db.commit_latency().p50(),
        commit_p99: db.commit_latency().p99(),
        steals: db.backend().stats().steal_writes,
        read_stall: s.read_stall,
        commit_stall: s.commit_stall,
    }
}

fn main() {
    println!("# E7 — synchronous/asynchronous separation (log on PCM vs log on flash)");
    let txns = 2_000u64;
    let db_cfg = DbConfig {
        buffer_frames: 256,
        data_pages: 1024,
        slots_per_page: 16,
        record_size: 100,
        checkpoint_every: 500,
        group_commit: 1,
        ..DbConfig::default()
    };

    section("OLTP (2 000 txns, zipf 0.8, 4 pages/txn, 50% dirty, checkpoint every 500)");
    let mut results = Vec::new();

    // legacy, conservative: no write cache trusted
    let mut ssd_cfg = SsdConfig::modern();
    ssd_cfg.buffer.capacity_pages = 0;
    let be = LegacyBackend::new(ssd_cfg, db_cfg.data_pages, 256);
    results.push(run(
        "legacy (flash, no write cache)",
        Database::new(db_cfg.clone(), be),
        txns,
    ));

    // legacy with a battery-backed write cache (ablation)
    let be = LegacyBackend::new(SsdConfig::modern(), db_cfg.data_pages, 256);
    results.push(run(
        "legacy (flash + battery cache)",
        Database::new(db_cfg.clone(), be),
        txns,
    ));

    // vision: PCM log + extended flash
    let mut flash_cfg = SsdConfig::modern();
    flash_cfg.buffer.capacity_pages = 0;
    let be = VisionBackend::new(flash_cfg, db_cfg.data_pages, 1 << 22);
    results.push(run(
        "vision (PCM log + atomic flash)",
        Database::new(db_cfg.clone(), be),
        txns,
    ));

    let mut tbl = Table::new([
        "backend",
        "txns/s",
        "txn p50",
        "txn p99",
        "commit p50",
        "commit p99",
        "steals",
    ])
    .align(0, Align::Left);
    for r in &results {
        tbl.row([
            r.label.clone(),
            format!("{:.0}", r.tps),
            format!("{}", SimDuration::from_nanos(r.txn_p50)),
            format!("{}", SimDuration::from_nanos(r.txn_p99)),
            format!("{}", SimDuration::from_nanos(r.commit_p50)),
            format!("{}", SimDuration::from_nanos(r.commit_p99)),
            format!("{}", r.steals),
        ]);
    }
    println!("{tbl}");

    section("Where the time goes (stall decomposition)");
    let mut tbl = Table::new(["backend", "read stall", "commit stall"]).align(0, Align::Left);
    for r in &results {
        tbl.row([
            r.label.clone(),
            format!("{}", r.read_stall),
            format!("{}", r.commit_stall),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: legacy commit forces cost hundreds of µs each and dominate; the PCM path cuts the commit force to ~1µs, leaving reads as the async bottleneck — 'synchronous patterns should be directed to PCM, asynchronous patterns to flash-based SSDs'.");

    section("Memory-pressure ablation (buffer pool 32 frames, 1 000 txns)");
    let small = DbConfig {
        buffer_frames: 32,
        checkpoint_every: 0,
        ..db_cfg.clone()
    };
    let mut tbl = Table::new(["backend", "txns/s", "steals", "steal stall"]).align(0, Align::Left);
    let mut ssd_cfg = SsdConfig::modern();
    ssd_cfg.buffer.capacity_pages = 0;
    let be = LegacyBackend::new(ssd_cfg, small.data_pages, 256);
    let mut db = Database::new(small.clone(), be);
    db.load();
    let mut gen = OltpGen::new(OltpConfig::default(), 9);
    let t0 = db.now();
    for _ in 0..1000 {
        let txn = gen.next_txn();
        let acc: Vec<(u64, u16, bool)> =
            txn.accesses.iter().map(|a| (a.page, 0, a.dirty)).collect();
        db.execute(&acc, txn.log_bytes);
    }
    tbl.row([
        "legacy (flash steals)".to_string(),
        format!(
            "{:.0}",
            1000.0 / db.now().since(t0).as_secs_f64().max(1e-12)
        ),
        format!("{}", db.backend().stats().steal_writes),
        format!("{}", db.stats().steal_stall),
    ]);
    let mut flash_cfg = SsdConfig::modern();
    flash_cfg.buffer.capacity_pages = 0;
    let be = VisionBackend::new(flash_cfg, small.data_pages, 1 << 22);
    let mut db = Database::new(small, be);
    db.load();
    let mut gen = OltpGen::new(OltpConfig::default(), 9);
    let t0 = db.now();
    for _ in 0..1000 {
        let txn = gen.next_txn();
        let acc: Vec<(u64, u16, bool)> =
            txn.accesses.iter().map(|a| (a.page, 0, a.dirty)).collect();
        db.execute(&acc, txn.log_bytes);
    }
    tbl.row([
        "vision (PCM staging steals)".to_string(),
        format!(
            "{:.0}",
            1000.0 / db.now().since(t0).as_secs_f64().max(1e-12)
        ),
        format!("{}", db.backend().stats().steal_writes),
        format!("{}", db.stats().steal_stall),
    ]);
    println!("{tbl}");
    note("Buffer steals are the second synchronous pattern P1 names; staging them in PCM removes the flash program from the blocking path.");

    section("Group-commit ablation: how far can software alone close the gap?");
    note("Group commit amortizes the flash log force over N transactions — the classic software mitigation. It trades durability lag (a crash loses up to N-1 commits) and still cannot reach the PCM path.");
    let mut tbl = Table::new(["configuration", "txns/s", "commit p99"]).align(0, Align::Left);
    for group in [1u32, 8, 64] {
        let cfg2 = DbConfig {
            group_commit: group,
            ..db_cfg.clone()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = LegacyBackend::new(ssd_cfg, cfg2.data_pages, 256);
        let r = run(
            &format!("legacy, group commit = {group}"),
            Database::new(cfg2, be),
            1000,
        );
        tbl.row([
            r.label.clone(),
            format!("{:.0}", r.tps),
            format!("{}", SimDuration::from_nanos(r.commit_p99)),
        ]);
    }
    {
        let mut flash_cfg = SsdConfig::modern();
        flash_cfg.buffer.capacity_pages = 0;
        let be = VisionBackend::new(flash_cfg, db_cfg.data_pages, 1 << 22);
        let r = run(
            "vision, no grouping needed",
            Database::new(db_cfg.clone(), be),
            1000,
        );
        tbl.row([
            r.label.clone(),
            format!("{:.0}", r.tps),
            format!("{}", SimDuration::from_nanos(r.commit_p99)),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: grouping buys throughput but keeps multi-hundred-µs commit tails and weakens durability; the PCM path gives both low latency and per-commit durability.");
}
