//! **E10 — §2.4**: PCM does not make the problems disappear.
//!
//! A PCM-based SSD (Onyx-style) removes the FTL mapping, garbage
//! collection and erases — and still has channels, banks, queueing, wear
//! leveling, and a latency/parallelism profile that rewards exactly the
//! same cross-layer thinking. And PCM on the memory bus changes the
//! persistence game entirely — for the synchronous traffic that fits it.

use requiem_bench::{modern_unbuffered, note, precondition, section};
use requiem_pcm::ssd::PcmSsdConfig;
use requiem_pcm::{PcmDimm, PcmSsd, PcmTiming};
use requiem_sim::table::Align;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Histogram, Table};
use requiem_ssd::Ssd;
use requiem_workload::driver::IoMix;
use requiem_workload::pattern::Pattern;

fn main() {
    println!("# E10 — PCM: better, not simple");

    // ------------------------------------------------------------------
    section("Latency ladder (4 KiB transfers, quiet devices)");
    let mut tbl = Table::new(["device / path", "read", "write"]).align(0, Align::Left);

    // flash ssd
    let mut ssd = Ssd::new(modern_unbuffered());
    let t = precondition(&mut ssd, 64);
    let r = requiem_bench::measure(
        &mut ssd,
        Pattern::Sequential,
        64,
        IoMix::read_only(),
        1,
        32,
        1,
        t,
    );
    let mut ssd2 = Ssd::new(modern_unbuffered());
    let w = requiem_bench::measure(
        &mut ssd2,
        Pattern::Sequential,
        4096,
        IoMix::write_only(),
        1,
        32,
        2,
        SimTime::ZERO,
    );
    tbl.row([
        "flash SSD (block interface)".to_string(),
        format!("{}", SimDuration::from_nanos(r.latency.p50())),
        format!("{}", SimDuration::from_nanos(w.latency.p50())),
    ]);

    // pcm ssd
    let mut pssd = PcmSsd::new(PcmSsdConfig::small());
    let mut rh = Histogram::new();
    let mut wh = Histogram::new();
    let mut t = SimTime::ZERO;
    for p in 0..32u64 {
        let d = pssd.write_page(t, p);
        wh.record_duration(d.latency);
        t = d.done;
    }
    for p in 0..32u64 {
        let d = pssd.read_page(t, p);
        rh.record_duration(d.latency);
        t = d.done;
    }
    tbl.row([
        "PCM SSD (block interface)".to_string(),
        format!("{}", SimDuration::from_nanos(rh.p50())),
        format!("{}", SimDuration::from_nanos(wh.p50())),
    ]);

    // pcm dimm
    let mut dimm = PcmDimm::new(1 << 20, PcmTiming::gen1(), 100);
    let t1 = dimm.persist(SimTime::ZERO, 0, &[0u8; 4096]);
    let (t2, _) = dimm.load(t1, 0, 4096);
    tbl.row([
        "PCM DIMM (memory bus, 4 KiB)".to_string(),
        format!("{}", t2.since(t1)),
        format!("{}", t1.since(SimTime::ZERO)),
    ]);
    let t3 = dimm.persist(t2, 8192, &[0u8; 128]);
    tbl.row([
        "PCM DIMM (memory bus, 128 B log record)".to_string(),
        "-".to_string(),
        format!("{}", t3.since(t2)),
    ]);
    println!("{tbl}");
    note("The ladder spans 3 orders of magnitude. Where data lands — and through which interface — matters more than what the cells are made of.");

    // ------------------------------------------------------------------
    section("Parallelism still required: PCM SSD IOPS vs queue depth");
    let mut tbl = Table::new(["queue depth", "read IOPS", "write IOPS"]);
    for qd in [1usize, 4, 16] {
        let mut dev = PcmSsd::new(PcmSsdConfig::small());
        // closed loop over striped pages
        let run = |dev: &mut PcmSsd, write: bool| -> f64 {
            use std::cmp::Reverse;
            let mut heap = std::collections::BinaryHeap::new();
            let total = 2048u64;
            let mut last = SimTime::ZERO;
            let mut issued = 0u64;
            while issued < total {
                let now = if heap.len() >= qd {
                    let Reverse(x) = heap.pop().expect("nonempty");
                    x
                } else {
                    SimTime::ZERO
                };
                let page = issued % dev.total_pages();
                let d = if write {
                    dev.write_page(now, page)
                } else {
                    dev.read_page(now, page)
                };
                heap.push(Reverse(d.done));
                last = last.max(d.done);
                issued += 1;
            }
            total as f64 / last.since(SimTime::ZERO).as_secs_f64().max(1e-12)
        };
        let w = run(&mut dev, true);
        let mut dev = PcmSsd::new(PcmSsdConfig::small());
        let r = run(&mut dev, false);
        tbl.row([format!("{qd}"), format!("{r:.0}"), format!("{w:.0}")]);
    }
    println!("{tbl}");
    note("No erases, no GC — and the device still needs queue depth to reach nominal bandwidth: banks and channels queue exactly like flash's LUNs and channels.");

    // ------------------------------------------------------------------
    section("Wear leveling still required: Start-Gap under a hot page");
    let mut tbl = Table::new(["configuration", "hot-slot writes", "total writes", "skew"])
        .align(0, Align::Left);
    for (label, gap_interval) in [
        ("no wear leveling (gap frozen)", u64::MAX),
        ("start-gap (rotate / 100 writes)", 100u64),
    ] {
        let mut cfg = PcmSsdConfig::small();
        cfg.pages_per_bank = 256;
        if gap_interval != u64::MAX {
            cfg.gap_interval = gap_interval;
        } else {
            cfg.gap_interval = u64::MAX / 2; // effectively never rotates
        }
        let mut dev = PcmSsd::new(cfg);
        let mut t = SimTime::ZERO;
        let n = 50_000u64;
        for _ in 0..n {
            let d = dev.write_page(t, 0);
            t = d.done;
        }
        let hot = dev.max_slot_writes();
        tbl.row([
            label.to_string(),
            format!("{hot}"),
            format!("{n}"),
            format!("{:.2}", hot as f64 / n as f64),
        ]);
    }
    println!("{tbl}");
    note("With 10^8-cycle endurance a frozen hot line dies in hours; Start-Gap spreads the damage for ~1% write overhead — management logic lives on inside the 'simple' device.");
}
