//! **E2 — Myth 1**: "SSDs behave as the non-volatile memory they contain."
//!
//! False: the device interposes a write buffer, an FTL, parallelism, and
//! background work between the host and the chips. This experiment puts
//! chip-datasheet numbers next to measured device-level behaviour, then
//! decomposes the device's internal traffic (`--breakdown`) — the
//! components of the paper's Figure 2 at work.

use requiem_bench::{fmt_ns, measure, modern_unbuffered, note, precondition, section};
use requiem_sim::table::Align;
use requiem_sim::time::SimTime;
use requiem_sim::Table;
use requiem_ssd::{Lpn, Ssd, SsdConfig};
use requiem_workload::driver::IoMix;
use requiem_workload::pattern::Pattern;

fn main() {
    let breakdown = std::env::args().any(|a| a == "--breakdown");
    println!("# E2 — Myth 1: a device is not a chip");

    // ---- chip-level numbers (the datasheet) ----
    let flash = SsdConfig::modern().flash;
    section("Chip level (MLC datasheet values used by the model)");
    let mut tbl = Table::new(["operation", "latency"]).align(0, Align::Left);
    tbl.row([
        "page read (tR)".to_string(),
        format!("{}", flash.timing.read),
    ]);
    tbl.row([
        "page program fast/slow".to_string(),
        format!(
            "{} / {}",
            flash.timing.program_fast, flash.timing.program_slow
        ),
    ]);
    tbl.row([
        "block erase (tBERS)".to_string(),
        format!("{}", flash.timing.erase),
    ]);
    println!("{tbl}");

    // ---- device-level measured ----
    section("Device level (measured end-to-end, queue depth 1)");
    let mut tbl = Table::new(["operation", "device", "latency p50", "vs chip op"])
        .align(0, Align::Left)
        .align(1, Align::Left);

    // read on quiet device
    let mut ssd = Ssd::new(modern_unbuffered());
    let t = precondition(&mut ssd, 256);
    let r = measure(
        &mut ssd,
        Pattern::UniformRandom,
        256,
        IoMix::read_only(),
        1,
        128,
        1,
        t,
    );
    tbl.row([
        "read".to_string(),
        "modern (unbuffered)".to_string(),
        fmt_ns(r.latency.p50()),
        format!(
            "{:.2}x tR",
            r.latency.p50() as f64 / flash.timing.read.as_nanos() as f64
        ),
    ]);

    // write, unbuffered: pays the program
    let mut ssd = Ssd::new(modern_unbuffered());
    let r = measure(
        &mut ssd,
        Pattern::Sequential,
        4096,
        IoMix::write_only(),
        1,
        128,
        2,
        SimTime::ZERO,
    );
    tbl.row([
        "write".to_string(),
        "modern (unbuffered)".to_string(),
        fmt_ns(r.latency.p50()),
        format!(
            "{:.2}x tPROG",
            r.latency.p50() as f64 / flash.timing.program_mean().as_nanos() as f64
        ),
    ]);

    // write, buffered: completes far below any chip op
    let mut ssd = Ssd::new(SsdConfig::modern());
    let r = measure(
        &mut ssd,
        Pattern::Sequential,
        4096,
        IoMix::write_only(),
        1,
        128,
        3,
        SimTime::ZERO,
    );
    tbl.row([
        "write".to_string(),
        "modern (write-back buffer)".to_string(),
        fmt_ns(r.latency.p50()),
        format!(
            "{:.2}x tPROG",
            r.latency.p50() as f64 / flash.timing.program_mean().as_nanos() as f64
        ),
    ]);
    println!("{tbl}");
    note("A buffered device write completes in a fraction of a chip program; an unbuffered one pays the program plus stack overheads. Neither equals the chip.");

    // ---- parallelism: bandwidth is an array property ----
    section("Bandwidth: one chip vs the array (sequential writes, QD 32)");
    let mut tbl = Table::new(["configuration", "MB/s", "speedup"]).align(0, Align::Left);
    let mut base_mbs = 0.0;
    for (label, channels, chips) in [("1 chip", 1u32, 1u32), ("8 channels x 4 chips", 8, 4)] {
        let mut cfg = modern_unbuffered();
        cfg.shape.channels = channels;
        cfg.shape.chips_per_channel = chips;
        let mut ssd = Ssd::new(cfg);
        let span = ssd.capacity().exported_pages;
        let r = measure(
            &mut ssd,
            Pattern::Sequential,
            span,
            IoMix::write_only(),
            32,
            2048,
            4,
            SimTime::ZERO,
        );
        if base_mbs == 0.0 {
            base_mbs = r.mb_per_s;
        }
        tbl.row([
            label.to_string(),
            format!("{:.1}", r.mb_per_s),
            format!("{:.1}x", r.mb_per_s / base_mbs),
        ]);
    }
    println!("{tbl}");
    note("Nominal bandwidth needs the paper's 'tens of flash chips wired in parallel' — no single chip delivers it.");

    if breakdown {
        // ---- Figure 2 at work: who writes to flash? ----
        section("Breakdown (`--breakdown`): device-internal traffic under random churn");
        let mut cfg = modern_unbuffered();
        cfg.shape.channels = 2;
        cfg.shape.chips_per_channel = 2;
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let t = precondition(&mut ssd, pages);
        let _ = measure(
            &mut ssd,
            Pattern::UniformRandom,
            pages,
            IoMix::write_only(),
            4,
            3 * pages,
            5,
            t,
        );
        let m = ssd.metrics();
        let mut tbl =
            Table::new(["flash traffic", "programs", "reads", "erases"]).align(0, Align::Left);
        tbl.row([
            "host (Scheduling & Mapping)".to_string(),
            format!("{}", m.flash_programs.host),
            format!("{}", m.flash_reads.host),
            format!("{}", m.flash_erases.host),
        ]);
        tbl.row([
            "garbage collection".to_string(),
            format!("{}", m.flash_programs.gc),
            format!("{}", m.flash_reads.gc),
            format!("{}", m.flash_erases.gc),
        ]);
        tbl.row([
            "wear leveling".to_string(),
            format!("{}", m.flash_programs.wear_level),
            format!("{}", m.flash_reads.wear_level),
            format!("{}", m.flash_erases.wear_level),
        ]);
        println!("{tbl}");
        println!(
            "write amplification: **{:.2}** (GC moved {} pages across {} runs)\n",
            m.write_amplification(),
            m.gc_pages_moved,
            m.gc_runs
        );
        note("The host issued writes only; the controller's GC and wear leveling generated the rest — traffic no chip datasheet predicts.");
    }

    // sanity for CI-style use
    let mut ssd = Ssd::new(SsdConfig::modern());
    let w = ssd.write(SimTime::ZERO, Lpn(0)).expect("write");
    assert!(w.latency.as_nanos() < flash.timing.program_mean().as_nanos());
}
