//! **Kernel micro-bench driver** — deterministic work units for the
//! perf gate.
//!
//! Each sub-bench runs a fixed, seeded amount of simulation-kernel work
//! and prints one machine-readable line:
//!
//! ```text
//! bench=<name> events=<count> checksum=<value>
//! ```
//!
//! The binary itself never reads a clock: everything in the simulation
//! path is virtual-time only (the determinism lint enforces this), so
//! wall-clock timing lives outside, in `scripts/perf_gate.sh`, which
//! times each sub-bench and composes `BENCH_kernel.json`. The `events`
//! count is the numerator of the events/sec figure; `checksum` pins the
//! work actually done so a broken bench can't pass by doing nothing.
//!
//! Sub-benches:
//!
//! * `queue_churn` — schedule/pop churn through [`EventQueue`]: the
//!   slab-recycled indexed heap on the kernel's innermost loop.
//! * `blame_alloc` / `blame_scratch` — occupant blame decomposition per
//!   wait, as a fresh `Vec` per query vs. the scratch-buffer fast path
//!   ([`Resource::blame_into`]) the scheduler uses.
//! * `probe_recording_clone` / `probe_aggregated` — the headline pair:
//!   a preconditioned device under zipfian overwrite, sampling probe
//!   state every window. The first samples by cloning the recording
//!   bus's event vector (the pre-refactor idiom); the second reads the
//!   aggregated probe's per-resource accumulators. Same simulated work,
//!   same sampled totals — the events/sec ratio is the cost of keeping
//!   (and copying) unbounded event history on an aging run.

use requiem_bench::aging::{device, AgingConfig};
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{EventQueue, Occupant, Probe, Resource};
use requiem_ssd::{FtlKind, GcPolicyKind, Lpn, Ssd};
use requiem_workload::pattern::{AddressPattern, Pattern};

/// Schedule/pop churn: `TOTAL` events through the queue with `PENDING`
/// in flight, deterministic pseudo-jittered offsets.
fn queue_churn() -> (u64, u64) {
    const PENDING: u64 = 64;
    const TOTAL: u64 = 4_000_000;
    let mut q: EventQueue<u64> = EventQueue::with_capacity(PENDING as usize);
    let mut scheduled = 0u64;
    let mut checksum = 0u64;
    let jitter = |i: u64| SimDuration::from_nanos((i.wrapping_mul(2654435761) % 997) + 1);
    while scheduled < PENDING {
        q.schedule(SimTime::ZERO + jitter(scheduled), scheduled);
        scheduled += 1;
    }
    let mut popped = 0u64;
    while let Some((at, payload)) = q.pop() {
        popped += 1;
        checksum = checksum.wrapping_mul(31).wrapping_add(payload);
        if scheduled < TOTAL {
            q.schedule(at + jitter(scheduled), scheduled);
            scheduled += 1;
        }
    }
    (popped, checksum)
}

/// Blame decomposition per wait. `scratch` selects the scratch-buffer
/// fast path; otherwise every query allocates a fresh `Vec` (the
/// pre-refactor idiom).
fn blame(scratch: bool) -> (u64, u64) {
    const QUERIES: u64 = 2_000_000;
    let mut res = Resource::new("bench-chan");
    res.track_occupants(true);
    let mut out = Vec::new();
    let mut checksum = 0u64;
    let mut t = SimTime::ZERO;
    for i in 0..QUERIES {
        let occ = if i % 3 == 0 {
            Occupant::Gc
        } else {
            Occupant::Host
        };
        let g = res.reserve_tagged(t, SimDuration::from_nanos((i % 7) + 1), occ);
        // a waiter that asked 300 ns before the grant started
        let asked = if g.start >= SimTime::ZERO + SimDuration::from_nanos(300) {
            g.start - SimDuration::from_nanos(300)
        } else {
            SimTime::ZERO
        };
        if scratch {
            res.blame_into(asked, g.start, &mut out);
            checksum = checksum.wrapping_add(out.len() as u64);
        } else {
            let v = res.blame(asked, g.start);
            checksum = checksum.wrapping_add(v.len() as u64);
        }
        t = g.end;
    }
    (QUERIES, checksum)
}

/// Preconditioned device under zipfian overwrite, sampling probe state
/// every `SAMPLE_EVERY` host operations. Returns (host ops, checksum of
/// the sampled totals).
fn probe_workload(probe: Probe, sample: impl Fn(&Probe) -> u64) -> (u64, u64) {
    const OVERWRITES: u64 = 24_576;
    const SAMPLE_EVERY: u64 = 64;
    let c = AgingConfig {
        ftl: FtlKind::PageMap,
        gc: GcPolicyKind::Greedy,
        op_ratio: 0.28,
    };
    let mut ssd = Ssd::new(device(&c));
    ssd.attach_probe(probe.clone());
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        let cmd = ssd.write(t, Lpn(lpn)).expect("precondition write");
        t = cmd.done;
    }
    let mut pat = AddressPattern::new(Pattern::Zipfian { theta: 0.9 }, pages, 42);
    let mut checksum = 0u64;
    for i in 0..OVERWRITES {
        let cmd = ssd.write(t, Lpn(pat.next_addr())).expect("overwrite");
        t = cmd.done;
        if (i + 1) % SAMPLE_EVERY == 0 {
            checksum = checksum.wrapping_mul(31).wrapping_add(sample(&probe));
        }
    }
    (pages + OVERWRITES, checksum)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_default();
    let (events, checksum) = match name.as_str() {
        "queue_churn" => queue_churn(),
        "blame_alloc" => blame(false),
        "blame_scratch" => blame(true),
        // pre-refactor sampling idiom: clone the whole recording bus
        "probe_recording_clone" => probe_workload(Probe::recording(), |p| p.events().len() as u64),
        // fast path: fold the aggregated per-resource accumulators
        "probe_aggregated" => probe_workload(Probe::aggregated(), |p| {
            p.resource_summary().iter().map(|s| s.count).sum()
        }),
        _ => {
            eprintln!(
                "usage: bench_kernel <queue_churn|blame_alloc|blame_scratch|\
                 probe_recording_clone|probe_aggregated>"
            );
            std::process::exit(2);
        }
    };
    println!("bench={name} events={events} checksum={checksum}");
}
