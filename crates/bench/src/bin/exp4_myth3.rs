//! **E4 — Myth 3**: "reads are cheaper than writes."
//!
//! True at the chip, not at the device. Three mechanisms, each measured:
//!
//! 1. reads cannot hide behind a cache and stall behind garbage-collection
//!    erases on their LUN (*"wait 3 ms for the completion of an erase"*);
//! 2. read parallelism exists only if earlier writes spread the data
//!    across LUNs — the reader has no control over this;
//! 3. reads are channel-bound, writes are chip-bound, and channel
//!    parallelism is the scarcer resource.

use requiem_bench::{fmt_ns, measure, modern_unbuffered, note, precondition, section};
use requiem_sim::table::Align;
use requiem_sim::time::SimTime;
use requiem_sim::{Probe, Table};
use requiem_ssd::{ArrayShape, ChannelTiming, Lpn, Placement, Ssd};
use requiem_workload::driver::{run_closed_loop, IoMix};
use requiem_workload::pattern::{AddressPattern, Pattern};

fn main() {
    println!("# E4 — Myth 3: reads are not cheaper than writes at the device level");

    // ------------------------------------------------------------------
    section("4a. Read latency under concurrent write/GC traffic");
    // small device so churn triggers GC quickly
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    let mut tbl =
        Table::new(["workload", "read p50", "read p99", "read max"]).align(0, Align::Left);

    // baseline: pure reads
    let mut ssd = Ssd::new(cfg.clone());
    let pages = ssd.capacity().exported_pages;
    let t = precondition(&mut ssd, pages);
    let r = measure(
        &mut ssd,
        Pattern::UniformRandom,
        pages,
        IoMix::read_only(),
        4,
        2048,
        1,
        t,
    );
    tbl.row([
        "pure random reads".to_string(),
        fmt_ns(r.latency.p50()),
        fmt_ns(r.latency.p99()),
        fmt_ns(r.latency.max()),
    ]);

    // mixed: reads share LUNs with a write stream that triggers GC
    let mut ssd = Ssd::new(cfg.clone());
    let probe = Probe::new();
    ssd.attach_probe(probe.clone());
    let t = precondition(&mut ssd, pages);
    // churn first so the device is GC-active, then measure a 50/50 mix
    let _ = measure(
        &mut ssd,
        Pattern::UniformRandom,
        pages,
        IoMix::write_only(),
        4,
        pages,
        2,
        t,
    );
    let t = ssd.drain_time();
    let mix = measure(
        &mut ssd,
        Pattern::UniformRandom,
        pages,
        IoMix::mixed(0.5),
        8,
        4096,
        3,
        t,
    );
    // extract read-side tail from device metrics (reads recorded separately)
    let m = ssd.metrics();
    tbl.row([
        "reads amid writes + GC".to_string(),
        fmt_ns(m.read_latency.p50()),
        fmt_ns(m.read_latency.p99()),
        fmt_ns(m.read_latency.max()),
    ]);
    println!("{tbl}");
    println!(
        "time reads spent waiting for a busy LUN: p99 = {}, max = {} (erase tBERS = 3ms)\n",
        fmt_ns(m.read_lun_wait.p99()),
        fmt_ns(m.read_lun_wait.max()),
    );
    let _ = mix;
    note("Expected shape: p50 barely moves; the tail inflates by an order of magnitude as reads queue behind programs and multi-ms erases.");

    section("4a'. Probe summary (JSON) — where the mixed workload's time went");
    note("gc_stall / merge_stall buckets are exactly the interference the block interface cannot report; cell_erase time is background (never on a command's critical path) yet shows up as the stalls above.");
    println!("```json\n{}\n```", probe.summary().to_json());

    // ------------------------------------------------------------------
    section("4b. Read parallelism depends on where earlier writes landed");
    let mut tbl = Table::new(["data placement", "read IOPS", "speedup"]).align(0, Align::Left);
    let mut base = 0.0;
    for (label, placement, span_mult) in [
        (
            "all data on one LUN (static, congruent LBAs)",
            Placement::StaticByLpn,
            true,
        ),
        (
            "data striped across LUNs (dynamic)",
            Placement::LeastLoaded,
            false,
        ),
    ] {
        let mut cfg = modern_unbuffered();
        cfg.placement = placement;
        let nluns = cfg.total_luns() as u64;
        let mut ssd = Ssd::new(cfg);
        // write 256 pages; under StaticByLpn use congruent addresses so
        // they all land on LUN 0
        let addrs: Vec<u64> = if span_mult {
            (0..256u64).map(|i| i * nluns).collect()
        } else {
            (0..256u64).collect()
        };
        let mut t = SimTime::ZERO;
        for &a in &addrs {
            t = ssd.write(t, Lpn(a)).expect("write").done;
        }
        let t = ssd.drain_time();
        // read them back at queue depth 16
        let mut next = 0usize;
        let mut pat_fn = move || {
            let a = addrs[next % addrs.len()];
            next += 1;
            a
        };
        // drive manually (closed loop over a fixed list)
        let mut outstanding = std::collections::BinaryHeap::new();
        use std::cmp::Reverse;
        let mut lat = requiem_sim::Histogram::new();
        let mut issued = 0u64;
        let total = 1024u64;
        let mut last = t;
        while issued < total {
            let now = if outstanding.len() >= 16 {
                let Reverse(x) = outstanding.pop().expect("nonempty");
                x
            } else {
                t
            };
            let c = ssd.read(now, Lpn(pat_fn())).expect("read");
            lat.record_duration(c.latency);
            outstanding.push(Reverse(c.done));
            last = last.max(c.done);
            issued += 1;
        }
        let iops = total as f64 / last.since(t).as_secs_f64().max(1e-12);
        if base == 0.0 {
            base = iops;
        }
        tbl.row([
            label.to_string(),
            format!("{iops:.0}"),
            format!("{:.1}x", iops / base),
        ]);
    }
    println!("{tbl}");
    note("Same read workload, same device — only the *write-time* placement differs. 'Reads will benefit from parallelism only if the corresponding writes have been directed to different LUNs.'");

    // ------------------------------------------------------------------
    section(
        "4c. Reads are channel-bound, writes are chip-bound (chips-per-channel sweep, 1 channel)",
    );
    let mut tbl = Table::new(["chips on the channel", "read IOPS", "write IOPS"]);
    for chips in [1u32, 2, 4, 8] {
        let mut cfg = modern_unbuffered();
        cfg.shape = ArrayShape {
            channels: 1,
            chips_per_channel: chips,
            luns_per_chip: 1,
        };
        cfg.channel = ChannelTiming::onfi2(); // slow bus: the bound bites
        cfg.placement = Placement::RoundRobin;
        // reads
        let mut ssd = Ssd::new(cfg.clone());
        let t = precondition(&mut ssd, 512);
        let mut pat = AddressPattern::new(Pattern::Sequential, 512, 1);
        let rr = run_closed_loop(&mut ssd, &mut pat, IoMix::read_only(), 16, 512, 1, t);
        // writes
        let mut ssd = Ssd::new(cfg);
        let span = ssd.capacity().exported_pages;
        let mut pat = AddressPattern::new(Pattern::Sequential, span, 2);
        let rw = run_closed_loop(
            &mut ssd,
            &mut pat,
            IoMix::write_only(),
            16,
            512,
            2,
            SimTime::ZERO,
        );
        tbl.row([
            format!("{chips}"),
            format!("{:.0}", rr.iops),
            format!("{:.0}", rw.iops),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: read IOPS flatlines once the shared channel saturates (~1 chip's worth of transfers); write IOPS keeps scaling with chips because programs dominate and overlap.");
}
