//! **E17 — Executor shard sweep**: horizontal scaling over one device,
//! up to the channel-bound knee.
//!
//! E13 scaled one completion-driven executor by deepening its queue.
//! This experiment scales *out* instead: N executor shards, each with
//! its own submission core, keyspace residue class (`page % N`), and
//! buffer-pool partition, all over one shared Figure-1 device. A
//! million-client zipfian mix drives the shards; a knob forces a
//! fraction of transactions to span shards, which routes them through
//! the two-phase ledger on the shared-per-shard group-commit WAL.
//! Four sections:
//!
//! * **17a** — TPS vs shard count at fixed per-shard depth: adding
//!   shards multiplies in-flight work until the single ONFI-2 channel
//!   saturates. At the knee the probe bus shows channel/queue spans
//!   dominating the decomposition — the device, not the executors, is
//!   the wall. Asserted from the probe summary, not eyeballed.
//! * **17b** — per-shard queue depth at a fixed shard count: the two
//!   axes (scale out, scale deep) buy the same parallelism until they
//!   collide on the same channel.
//! * **17c** — the cross-shard knob: raising the two-phase fraction
//!   adds prepare forces and a second synchronous wait to every
//!   distributed commit; throughput pays for coordination.
//! * **17d** — the identity anchor: QD 1 × 1 shard replays the
//!   serialized engine bit-for-bit, so every delta the sweep measures
//!   is caused by sharding, not by a different engine.
//!
//! `--short` selects the CI preset (same phases, fewer transactions).
//! The trailing JSON feeds the determinism diff and `BENCH_exp17.json`.

use requiem_bench::{note, section};
use requiem_db::{
    BlockStackBackend, Database, DbBuilder, DbConfig, ExecConfig, GroupCommitPolicy,
    PersistenceBackend, PrefetchConfig, ShardedDb, ShardedReport, TxnInput,
};
use requiem_sim::probe::{Cause, Layer};
use requiem_sim::table::Align;
use requiem_sim::time::SimDuration;
use requiem_sim::{Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, ChannelTiming, Placement, SsdConfig};
use requiem_workload::sharded::{ShardedOltpConfig, ShardedOltpGen};
use requiem_workload::txn_to_input;

const SEED: u64 = 17;
const DATA_PAGES: u64 = 1024;
const LOG_PAGES: u64 = 512;
/// Pool sized to the whole keyspace: E17 studies *submission* scaling,
/// so the working set stays resident and no steal traffic muddies the
/// channel attribution (E13b already covers memory pressure).
const BUFFER_FRAMES: usize = 1024;
const CLIENTS: u64 = 1 << 20;
const SHARDS: [usize; 4] = [1, 2, 4, 8];
const QDS: [usize; 4] = [1, 2, 4, 8];
const CROSS: f64 = 0.10;

/// The E11/E13 device: four chips behind one shared ONFI-2 channel.
/// Every shard submits into the same channel — the knee this sweep
/// hunts for is that channel running out of idle cycles.
fn figure1_device() -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 4,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

fn builder(shards: usize, cross: f64) -> DbBuilder {
    DbConfig::builder()
        .data_pages(DATA_PAGES)
        .log_pages(LOG_PAGES)
        .buffer_frames(BUFFER_FRAMES)
        .shards(shards)
        .cross_shard_ratio(cross)
}

/// The million-client mix, pre-generated so the run is a pure function
/// of `(seed, config)`.
fn inputs(shards: usize, cross: f64, txns: u64) -> Vec<TxnInput> {
    let mut gen = ShardedOltpGen::new(
        ShardedOltpConfig {
            clients: CLIENTS,
            shards,
            cross_shard_ratio: cross,
            data_pages: DATA_PAGES,
            ..ShardedOltpConfig::default()
        },
        SEED,
    );
    (0..txns).map(|_| txn_to_input(&gen.next_txn())).collect()
}

struct SweepPoint {
    shards: usize,
    qd: usize,
    report: ShardedReport,
    /// Fraction of all probe-attributed time spent queueing for the
    /// flash channel — the channel-bound signature.
    channel_queue_share: f64,
    /// Whether channel/queue is the single largest `(layer, cause)`
    /// bucket in the probe decomposition.
    channel_queue_dominates: bool,
}

/// One closed-loop run: `shards` executors at per-shard depth `qd` on a
/// fresh device, cross-shard fraction `cross`.
fn run_point(shards: usize, qd: usize, cross: f64, txns: u64) -> SweepPoint {
    let mut db: ShardedDb<BlockStackBackend> = builder(shards, cross).build_sharded_stack(
        requiem_block::StackConfig::blk_mq(shards as u32),
        figure1_device(),
    );
    let probe = Probe::new();
    db.shard_mut(0).attach_probe(probe.clone());
    let cfg = ExecConfig {
        concurrency: qd,
        prefetch: PrefetchConfig::off(),
        group: GroupCommitPolicy::batched(qd as u32),
    };
    let report = db.run(&inputs(shards, cross, txns), &cfg);
    let summary = probe.summary();
    let total: u64 = summary
        .by_layer_cause
        .values()
        .map(|s| s.total.as_nanos())
        .sum();
    let chan_queue = summary
        .by_layer_cause
        .get(&(Layer::Channel, Cause::Queue))
        .map(|s| s.total.as_nanos())
        .unwrap_or(0);
    let largest = summary
        .by_layer_cause
        .values()
        .map(|s| s.total.as_nanos())
        .max()
        .unwrap_or(0);
    SweepPoint {
        shards,
        qd,
        report,
        channel_queue_share: chan_queue as f64 / total.max(1) as f64,
        channel_queue_dominates: chan_queue > 0 && chan_queue == largest,
    }
}

fn p999(report: &ShardedReport) -> u64 {
    let mut all = report.read_only_latency.clone();
    all.merge(&report.update_latency);
    all.quantile(0.999)
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\":{},\"qd\":{},\"tps\":{:.1},\"p999_ns\":{},\"channel_stall_share\":{:.3},\"committed\":{},\"cross\":{},\"aborted\":{},\"forces\":{}}}",
                p.shards,
                p.qd,
                p.report.tps,
                p999(&p.report),
                p.channel_queue_share,
                p.report.committed,
                p.report.cross_txns,
                p.report.aborted,
                p.report.forces
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let txns: u64 = if short { 240 } else { 600 };

    println!("# E17 — executor shard sweep over one Figure-1 device");
    note("N executor shards (own core, own keyspace residue, own pool partition) submit into one shared ONFI-2 channel; cross-shard transactions run two-phase over the per-shard WALs.");
    println!(
        "preset: {} ({txns} txns per point)\n",
        if short { "short" } else { "full" }
    );

    // ------------------------------------------------------------------
    section("17a. TPS vs shard count (per-shard QD 4, 10% cross-shard)");
    let points: Vec<SweepPoint> = SHARDS
        .iter()
        .map(|&s| run_point(s, 4, CROSS, txns))
        .collect();
    let mut tbl = Table::new([
        "shards",
        "TPS",
        "speedup",
        "committed",
        "cross",
        "aborted",
        "forces",
        "p99.9",
        "chan-queue share",
    ]);
    let base_tps = points[0].report.tps;
    for p in &points {
        tbl.row([
            format!("{}", p.shards),
            format!("{:.0}", p.report.tps),
            format!("{:.2}x", p.report.tps / base_tps),
            format!("{}", p.report.committed),
            format!("{}", p.report.cross_txns),
            format!("{}", p.report.aborted),
            format!("{}", p.report.forces),
            format!("{}", SimDuration::from_nanos(p999(&p.report))),
            format!("{:.1}%", p.channel_queue_share * 100.0),
        ]);
    }
    println!("{tbl}");
    assert!(
        points[1].report.tps > points[0].report.tps * 1.1,
        "two shards must out-run one by a clear margin ({:.0} vs {:.0})",
        points[1].report.tps,
        points[0].report.tps
    );
    let knee = points.last().unwrap();
    assert!(
        knee.report.tps > points[0].report.tps,
        "the full fleet must still beat one shard ({:.0} vs {:.0})",
        knee.report.tps,
        points[0].report.tps
    );
    assert!(
        knee.channel_queue_share > points[0].channel_queue_share,
        "the channel-queue share must grow toward the knee ({:.3} vs {:.3})",
        knee.channel_queue_share,
        points[0].channel_queue_share
    );
    assert!(
        knee.channel_queue_dominates,
        "at the knee, channel/queue must be the largest span bucket"
    );
    note("Each added shard multiplies the commands in flight; the chips absorb them until the shared channel's command/data cycles become the scarce resource. The probe decomposition at the knee is dominated by channel/queue waits — the block interface would report only 'latency went up'.");

    // ------------------------------------------------------------------
    section("17b. Per-shard queue depth at 4 shards (10% cross-shard)");
    let qd_points: Vec<SweepPoint> = QDS
        .iter()
        .map(|&qd| run_point(4, qd, CROSS, txns))
        .collect();
    let mut tbl = Table::new(["QD/shard", "TPS", "speedup", "p99.9", "chan-queue share"]);
    let qd_base = qd_points[0].report.tps;
    for p in &qd_points {
        tbl.row([
            format!("{}", p.qd),
            format!("{:.0}", p.report.tps),
            format!("{:.2}x", p.report.tps / qd_base),
            format!("{}", SimDuration::from_nanos(p999(&p.report))),
            format!("{:.1}%", p.channel_queue_share * 100.0),
        ]);
    }
    println!("{tbl}");
    assert!(
        qd_points[1].report.tps > qd_points[0].report.tps,
        "deepening the per-shard queue must help at first ({:.0} vs {:.0})",
        qd_points[1].report.tps,
        qd_points[0].report.tps
    );
    note("Scale-out (17a) and scale-deep (17b) are the same lever — more independent commands for the array — and they hit the same channel wall.");

    // ------------------------------------------------------------------
    section("17c. The cross-shard knob: paying for two-phase commit");
    let cross_points: Vec<(f64, SweepPoint)> = [0.0, 0.1, 0.3]
        .iter()
        .map(|&c| (c, run_point(4, 4, c, txns)))
        .collect();
    let mut tbl =
        Table::new(["cross ratio", "TPS", "cross txns", "forces", "p99.9"]).align(0, Align::Left);
    for (c, p) in &cross_points {
        tbl.row([
            format!("{:.0}%", c * 100.0),
            format!("{:.0}", p.report.tps),
            format!("{}", p.report.cross_txns),
            format!("{}", p.report.forces),
            format!("{}", SimDuration::from_nanos(p999(&p.report))),
        ]);
    }
    println!("{tbl}");
    let (_, none) = &cross_points[0];
    let (_, heavy) = &cross_points[2];
    assert_eq!(none.report.cross_txns, 0, "ratio 0 must stay local");
    assert!(heavy.report.cross_txns > 0, "ratio 0.3 must cross shards");
    assert!(
        heavy.report.forces > none.report.forces,
        "two-phase commit must add prepare forces ({} vs {})",
        heavy.report.forces,
        none.report.forces
    );
    note("A distributed commit forces every participant's prepare record before the home shard's decide force — more synchronous log writes per transaction, and a wait on the slowest participant.");

    // ------------------------------------------------------------------
    section("17d. QD 1 x 1 shard vs the serialized engine");
    let ident_inputs = inputs(1, 0.0, 200.min(txns));
    let mut serial: Database<BlockStackBackend> =
        builder(1, 0.0).build_stack(requiem_block::StackConfig::blk_mq(1), figure1_device());
    for t in &ident_inputs {
        serial.execute(&t.accesses, t.log_bytes);
    }
    let mut sharded: ShardedDb<BlockStackBackend> = builder(1, 0.0)
        .build_sharded_stack(requiem_block::StackConfig::blk_mq(1), figure1_device());
    sharded.run(&ident_inputs, &ExecConfig::serialized());
    let shard0 = sharded.shard(0);
    let identical = shard0.now() == serial.now()
        && shard0.txn_latency() == serial.txn_latency()
        && shard0.commit_latency() == serial.commit_latency()
        && shard0.stats() == serial.stats()
        && shard0.wal_backend().stats().log_forces == serial.wal_backend().stats().log_forces
        && shard0.wal_backend().stats().log_bytes == serial.wal_backend().stats().log_bytes
        && shard0.backend().stats().page_reads == serial.backend().stats().page_reads;
    let mut tbl =
        Table::new(["engine", "final clock", "commits", "bit-identical"]).align(0, Align::Left);
    tbl.row([
        "serialized execute()".to_string(),
        format!("{}", serial.now()),
        format!("{}", serial.stats().commits),
        String::new(),
    ]);
    tbl.row([
        "1-shard coordinator QD 1".to_string(),
        format!("{}", shard0.now()),
        format!("{}", shard0.stats().commits),
        format!("{identical}"),
    ]);
    println!("{tbl}");
    assert!(
        identical,
        "one shard at QD 1 must replay the serialized engine bit-for-bit"
    );
    note("The coordinator degenerates to the single executor's loop: same WAL bytes, same device commands, same clock. Sharding is an overlay, not a different engine.");

    // ------------------------------------------------------------------
    section("Sweep summary (JSON)");
    note("Per-shard-count and per-depth rows (TPS, merged p99.9, the channel/queue share of all probe-attributed time), the cross-shard cost rows, and the identity verdict.");
    println!("```json");
    println!(
        "{{\"device\":\"figure1 1ch x 4chip onfi2 via blk-mq stack\",\"preset\":\"{}\",\"txns\":{txns},\"qd1_one_shard_matches_serialized\":{identical},",
        if short { "short" } else { "full" }
    );
    println!("\"shard_sweep\":{},", sweep_json(&points));
    println!("\"qd_sweep\":{},", sweep_json(&qd_points));
    let cross_rows: Vec<String> = cross_points
        .iter()
        .map(|(c, p)| {
            format!(
                "{{\"cross_ratio\":{:.1},\"tps\":{:.1},\"cross\":{},\"aborted\":{},\"forces\":{}}}",
                c, p.report.tps, p.report.cross_txns, p.report.aborted, p.report.forces
            )
        })
        .collect();
    println!("\"cross_sweep\":[{}]}}", cross_rows.join(","));
    println!("```");
}
