//! **E3 — Myth 2**: "random writes are extremely costly and must be
//! avoided."
//!
//! True on pre-2009 devices (block / hybrid FTLs); false on page-mapped
//! devices with a write-back buffer — *"a controller can fully benefit
//! from SSD parallelism when flushing the buffer regardless of the write
//! pattern."* The sustained mode (`--sustained`) quantifies the paper's
//! future-work note: random writes still destroy *locality*, so garbage
//! collection pays later even when latency doesn't.

use requiem_bench::{measure, modern_unbuffered, note, precondition, section};
use requiem_sim::table::Align;
use requiem_sim::Table;
use requiem_ssd::{GcPolicyKind, Ssd, SsdConfig};
use requiem_workload::driver::IoMix;
use requiem_workload::pattern::Pattern;

/// Measure sequential and random write throughput on one device config.
fn seq_vs_random(cfg: SsdConfig, ops: u64, qd: usize, seed: u64) -> (f64, f64) {
    // work within a quarter of the device so legacy FTLs have spare blocks
    let mut ssd = Ssd::new(cfg.clone());
    let span = ssd.capacity().exported_pages / 4;
    let t = precondition(&mut ssd, span);
    let seq = measure(
        &mut ssd,
        Pattern::Sequential,
        span,
        IoMix::write_only(),
        qd,
        ops,
        seed,
        t,
    );
    let mut ssd = Ssd::new(cfg);
    let t = precondition(&mut ssd, span);
    let rnd = measure(
        &mut ssd,
        Pattern::UniformRandom,
        span,
        IoMix::write_only(),
        qd,
        ops,
        seed,
        t,
    );
    (seq.mb_per_s, rnd.mb_per_s)
}

fn main() {
    let sustained = std::env::args().any(|a| a == "--sustained");
    println!("# E3 — Myth 2: random vs sequential writes across device generations");

    section("Throughput (queue depth 4, 2048 writes after preconditioning)");
    let mut tbl = Table::new(["device", "FTL", "seq MB/s", "rnd MB/s", "rnd/seq"])
        .align(0, Align::Left)
        .align(1, Align::Left);
    let devices: Vec<(&str, &str, SsdConfig)> = vec![
        ("circa-2009", "block map", SsdConfig::circa_2009_block()),
        (
            "circa-2009",
            "hybrid (BAST, 8 logs)",
            SsdConfig::circa_2009_hybrid(),
        ),
        ("modern", "page map, no buffer", modern_unbuffered()),
        ("modern", "page map + buffer", SsdConfig::modern()),
        ("modern", "DFTL (4Ki CMT)", SsdConfig::modern_dftl(4096)),
    ];
    for (dev, ftl, cfg) in devices {
        let (seq, rnd) = seq_vs_random(cfg, 2048, 4, 42);
        tbl.row([
            dev.to_string(),
            ftl.to_string(),
            format!("{seq:.1}"),
            format!("{rnd:.1}"),
            format!("{:.2}", rnd / seq),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: rnd/seq collapses (≪ 0.5) on 2009-era FTLs and reaches ~1.0 on the page-mapped buffered device — myth 2 was true, then stopped being true.");

    section("Write-buffer size ablation (random writes, queue depth 4)");
    let mut tbl = Table::new(["buffer pages", "rnd MB/s", "write p50", "write p99"]);
    for buf in [0u32, 16, 64, 256] {
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = buf;
        let mut ssd = Ssd::new(cfg);
        let span = ssd.capacity().exported_pages / 4;
        let t = precondition(&mut ssd, span);
        let r = measure(
            &mut ssd,
            Pattern::UniformRandom,
            span,
            IoMix::write_only(),
            4,
            2048,
            11,
            t,
        );
        tbl.row([
            format!("{buf}"),
            format!("{:.1}", r.mb_per_s),
            format!(
                "{}",
                requiem_sim::time::SimDuration::from_nanos(r.latency.p50())
            ),
            format!(
                "{}",
                requiem_sim::time::SimDuration::from_nanos(r.latency.p99())
            ),
        ]);
    }
    println!("{tbl}");
    note("The buffer hides program latency up to the flash array's drain rate; past saturation extra capacity only defers the stall (p99 converges).");

    section("DFTL mapping-cache sweep (random writes over the whole device)");
    let mut tbl = Table::new([
        "CMT entries",
        "CMT hit ratio",
        "rnd MB/s",
        "translation reads",
    ]);
    for cache in [256usize, 4096, 65536] {
        // CMT far below / near / above the 28Ki-page working set
        let mut cfg = SsdConfig::modern_dftl(cache);
        cfg.buffer.capacity_pages = 0;
        let mut ssd = Ssd::new(cfg);
        let span = ssd.capacity().exported_pages;
        let t = precondition(&mut ssd, span / 2);
        let (h0, m0, _) = ssd.dftl_stats().expect("dftl");
        let tr0 = ssd.metrics().flash_reads.translation;
        let r = measure(
            &mut ssd,
            Pattern::UniformRandom,
            span / 2,
            IoMix::write_only(),
            4,
            4096,
            12,
            t,
        );
        let (h, m, _) = ssd.dftl_stats().expect("dftl");
        let (dh, dm) = (h - h0, m - m0);
        tbl.row([
            format!("{cache}"),
            format!("{:.0}%", 100.0 * dh as f64 / (dh + dm).max(1) as f64),
            format!("{:.1}", r.mb_per_s),
            format!("{}", ssd.metrics().flash_reads.translation - tr0),
        ]);
    }
    println!("{tbl}");
    note("DFTL's deal: trade mapping RAM for translation-page flash traffic. A CMT covering the working set performs like a full page map; an undersized one thrashes — the design axis the paper's ref [10] explores.");

    if sustained {
        section(
            "Sustained churn (`--sustained`): the GC/locality effect the paper left as future work",
        );
        note("Device filled once, then overwritten 4x its capacity; measurements per fill-round. Modern page-mapped device, no buffer, 12.5% OP.");
        for (pattern, name) in [
            (Pattern::Sequential, "sequential"),
            (Pattern::UniformRandom, "random"),
        ] {
            let mut cfg = modern_unbuffered();
            cfg.shape.channels = 4;
            cfg.shape.chips_per_channel = 2;
            let mut ssd = Ssd::new(cfg);
            let pages = ssd.capacity().exported_pages;
            let mut t = precondition(&mut ssd, pages);
            println!("**{name} overwrites**\n");
            let mut tbl = Table::new([
                "round",
                "MB/s",
                "WA (cumulative)",
                "GC runs",
                "GC pages moved",
                "p99 write",
            ]);
            let mut prev_programs = ssd.metrics().flash_programs.total();
            let mut prev_host = ssd.metrics().host_writes;
            for round in 1..=4u32 {
                let r = measure(
                    &mut ssd,
                    pattern.clone(),
                    pages,
                    IoMix::write_only(),
                    4,
                    pages,
                    round as u64,
                    t,
                );
                t = ssd.drain_time();
                let m = ssd.metrics();
                let round_programs = m.flash_programs.total() - prev_programs;
                let round_host = m.host_writes - prev_host;
                prev_programs = m.flash_programs.total();
                prev_host = m.host_writes;
                tbl.row([
                    format!("{round}"),
                    format!("{:.1}", r.mb_per_s),
                    format!("{:.2}", round_programs as f64 / round_host as f64),
                    format!("{}", m.gc_runs),
                    format!("{}", m.gc_pages_moved),
                    format!(
                        "{}",
                        requiem_sim::time::SimDuration::from_nanos(r.latency.p99())
                    ),
                ]);
            }
            println!("{tbl}");
        }
        note("Expected shape: sequential stays at WA≈1 (victims fully dead); random WA climbs round over round as invalid pages scatter — 'pages that are to be reclaimed together tend to be spread over many blocks'.");

        section("GC policy ablation on the random churn (greedy vs cost-benefit)");
        let mut tbl =
            Table::new(["GC policy", "MB/s", "final WA", "GC pages moved"]).align(0, Align::Left);
        for policy in [GcPolicyKind::Greedy, GcPolicyKind::CostBenefit] {
            let mut cfg = modern_unbuffered();
            cfg.shape.channels = 4;
            cfg.shape.chips_per_channel = 2;
            cfg.gc.policy = policy;
            let mut ssd = Ssd::new(cfg);
            let pages = ssd.capacity().exported_pages;
            let t = precondition(&mut ssd, pages);
            let r = measure(
                &mut ssd,
                Pattern::UniformRandom,
                pages,
                IoMix::write_only(),
                4,
                3 * pages,
                7,
                t,
            );
            let m = ssd.metrics();
            tbl.row([
                format!("{policy:?}"),
                format!("{:.1}", r.mb_per_s),
                format!("{:.2}", m.write_amplification()),
                format!("{}", m.gc_pages_moved),
            ]);
        }
        println!("{tbl}");

        section("Over-provisioning ablation (random churn, greedy GC)");
        let mut tbl = Table::new(["OP ratio", "MB/s", "final WA"]);
        for op in [0.07, 0.125, 0.28] {
            let mut cfg = modern_unbuffered();
            cfg.shape.channels = 4;
            cfg.shape.chips_per_channel = 2;
            cfg.op_ratio = op;
            let mut ssd = Ssd::new(cfg);
            let pages = ssd.capacity().exported_pages;
            let t = precondition(&mut ssd, pages);
            let r = measure(
                &mut ssd,
                Pattern::UniformRandom,
                pages,
                IoMix::write_only(),
                4,
                3 * pages,
                8,
                t,
            );
            tbl.row([
                format!("{:.0}%", op * 100.0),
                format!("{:.1}", r.mb_per_s),
                format!("{:.2}", ssd.metrics().write_amplification()),
            ]);
        }
        println!("{tbl}");
        note("More spare area → emptier victims → lower WA: the knob vendors actually turn.");
    }
}
