//! **E1 — Figure 1**: four parallel reads are channel-bound; four parallel
//! writes are chip-bound.
//!
//! Reconstructs the paper's Figure 1: four chips (1 LUN each) on one
//! shared channel. Four reads issued together serialize on the channel's
//! data-out transfers; four writes overlap their (long) programs after
//! short data-in transfers. The ASCII Gantt charts below are the figure;
//! the utilization table quantifies "channel-bound" vs "chip-bound", and a
//! sustained run shows the resulting bandwidth ceilings.

use requiem_bench::{note, section};
use requiem_sim::table::Align;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, ChannelTiming, Lpn, Placement, Ssd, SsdConfig};
use requiem_workload::driver::{run_closed_loop, IoMix};
use requiem_workload::pattern::{AddressPattern, Pattern};

fn figure1_device() -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 4,
            luns_per_chip: 1,
        },
        // ONFI-2-class bus: a page transfer (~100 µs) is comparable to a
        // page read (50 µs) — the regime the paper's figure depicts
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

/// Utilization of channel / mean chips over a window, from busy deltas.
fn window_utils(
    ssd: &Ssd,
    chan_before: &[SimDuration],
    lun_before: &[SimDuration],
    window: SimDuration,
) -> (f64, f64) {
    let chan_after = ssd.channel_busy_time();
    let lun_after = ssd.lun_busy_time();
    let chan: f64 = chan_after
        .iter()
        .zip(chan_before)
        .map(|(a, b)| a.saturating_sub(*b).as_nanos() as f64)
        .sum::<f64>()
        / chan_after.len() as f64
        / window.as_nanos() as f64;
    let chips: f64 = lun_after
        .iter()
        .zip(lun_before)
        .map(|(a, b)| a.saturating_sub(*b).as_nanos() as f64)
        .sum::<f64>()
        / lun_after.len() as f64
        / window.as_nanos() as f64;
    (chan, chips)
}

fn main() {
    println!("# E1 — Figure 1: channel-bound reads vs chip-bound writes");
    note("4 chips (1 LUN each) share one channel. Glyphs: R=page read, P=page program, E=erase (chip lanes); t=data transfer (channel lane).");

    // ---- four parallel writes (chip-bound) ----
    section("Four parallel writes");
    let mut ssd = Ssd::new(figure1_device());
    let wr_probe = Probe::new();
    ssd.attach_probe(wr_probe.clone());
    ssd.enable_trace();
    for lpn in 0..4u64 {
        ssd.write(SimTime::ZERO, Lpn(lpn)).expect("write");
    }
    let wr_makespan = ssd.drain_time();
    let wr_trace = ssd.take_trace().expect("trace");
    println!("```text\n{}```", wr_trace.render(100));
    let wr_chan = ssd.channel_utilization(wr_makespan)[0];
    let wr_chips = ssd.lun_utilization(wr_makespan);
    let wr_chip_mean = wr_chips.iter().sum::<f64>() / wr_chips.len() as f64;

    // ---- four parallel reads (channel-bound) ----
    section("Four parallel reads");
    let mut ssd = Ssd::new(figure1_device());
    // place one page on each chip, quiesce, then read them back together
    let mut t = SimTime::ZERO;
    for lpn in 0..4u64 {
        t = ssd.write(t, Lpn(lpn)).expect("precondition").done;
    }
    let t0 = ssd.drain_time();
    let chan_b = ssd.channel_busy_time();
    let lun_b = ssd.lun_busy_time();
    let rd_probe = Probe::new();
    ssd.attach_probe(rd_probe.clone());
    ssd.enable_trace();
    for lpn in 0..4u64 {
        ssd.read(t0, Lpn(lpn)).expect("read");
    }
    let rd_makespan = ssd.drain_time();
    let mut rd_trace = ssd.take_trace().expect("trace");
    rd_trace.rebase(t0);
    println!("```text\n{}```", rd_trace.render(100));
    let window = rd_makespan.since(t0);
    let (rd_chan, rd_chip_mean) = window_utils(&ssd, &chan_b, &lun_b, window);

    section("Utilization (burst of four)");
    let mut tbl = Table::new([
        "pattern",
        "makespan",
        "channel util",
        "mean chip util",
        "bound by",
    ])
    .align(0, Align::Left)
    .align(4, Align::Left);
    tbl.row([
        "4 parallel reads".to_string(),
        format!("{window}"),
        format!("{:.0}%", rd_chan * 100.0),
        format!("{:.0}%", rd_chip_mean * 100.0),
        if rd_chan > rd_chip_mean {
            "channel"
        } else {
            "chips"
        }
        .to_string(),
    ]);
    tbl.row([
        "4 parallel writes".to_string(),
        format!("{wr_makespan}"),
        format!("{:.0}%", wr_chan * 100.0),
        format!("{:.0}%", wr_chip_mean * 100.0),
        if wr_chan > wr_chip_mean {
            "channel"
        } else {
            "chips"
        }
        .to_string(),
    ]);
    println!("{tbl}");

    // ---- sustained: the bandwidth ceilings the bounds imply ----
    section("Sustained throughput (queue depth 16, 512 ops)");
    let mut tbl = Table::new(["workload", "IOPS", "MB/s", "channel util", "mean chip util"])
        .align(0, Align::Left);
    // reads
    let mut ssd = Ssd::new(figure1_device());
    let mut t = SimTime::ZERO;
    for lpn in 0..512u64 {
        t = ssd.write(t, Lpn(lpn)).expect("precondition").done;
    }
    let t0 = ssd.drain_time();
    let chan_b = ssd.channel_busy_time();
    let lun_b = ssd.lun_busy_time();
    let mut pat = AddressPattern::new(Pattern::Sequential, 512, 1);
    let r = run_closed_loop(&mut ssd, &mut pat, IoMix::read_only(), 16, 512, 1, t0);
    let window = ssd.drain_time().since(t0);
    let (cu, lu) = window_utils(&ssd, &chan_b, &lun_b, window);
    tbl.row([
        "reads".to_string(),
        format!("{:.0}", r.iops),
        format!("{:.1}", r.mb_per_s),
        format!("{:.0}%", cu * 100.0),
        format!("{:.0}%", lu * 100.0),
    ]);
    // writes
    let mut ssd = Ssd::new(figure1_device());
    let chan_b = ssd.channel_busy_time();
    let lun_b = ssd.lun_busy_time();
    let mut pat = AddressPattern::new(Pattern::Sequential, 2048, 2);
    let r = run_closed_loop(
        &mut ssd,
        &mut pat,
        IoMix::write_only(),
        16,
        512,
        2,
        SimTime::ZERO,
    );
    let window = ssd.drain_time().since(SimTime::ZERO);
    let (cu, lu) = window_utils(&ssd, &chan_b, &lun_b, window);
    tbl.row([
        "writes".to_string(),
        format!("{:.0}", r.iops),
        format!("{:.1}", r.mb_per_s),
        format!("{:.0}%", cu * 100.0),
        format!("{:.0}%", lu * 100.0),
    ]);
    println!("{tbl}");
    note("Expected shape (paper, Figure 1): reads saturate the shared channel while chips idle; writes saturate the chips while the channel idles.");

    // ---- machine-readable span decomposition of the two bursts ----
    section("Probe summary (JSON)");
    note("Per-(layer, cause) attributed time for each burst of four — the same channel-vs-chip asymmetry, as data instead of a picture.");
    println!("```json");
    println!(
        "{{\"four_parallel_writes\":{},",
        wr_probe.summary().to_json()
    );
    println!("\"four_parallel_reads\":{}}}", rd_probe.summary().to_json());
    println!("```");
}
