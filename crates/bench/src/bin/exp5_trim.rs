//! **E5 — TRIM**: the first crack in the block interface.
//!
//! §3: the TRIM command was added *"to communicate to a SSD that a range
//! of logical addresses [is] no longer used and could thus be un-mapped by
//! the FTL"* — the memory abstraction amended with a hint because the FTL
//! otherwise copies dead data forever. This experiment runs a file-churn
//! workload (create + delete) with and without TRIM and measures what the
//! hint buys the garbage collector.

use requiem_bench::{measure, modern_unbuffered, note, precondition, section};
use requiem_iface::device::DeviceInterface;
use requiem_iface::nameless::{NamelessConfig, NamelessSsd};
use requiem_sim::table::Align;
use requiem_sim::time::SimTime;
use requiem_sim::Table;
use requiem_ssd::{Lpn, Ssd, SsdConfig};
use requiem_workload::driver::IoMix;
use requiem_workload::pattern::Pattern;

fn churn_cfg() -> SsdConfig {
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    cfg
}

/// Fill the device with "files", delete a third of them (with or without
/// telling the device), then randomly overwrite the surviving files for
/// two drive-fills. If the device is not told, the deleted files' pages
/// remain "valid" to its collector: they shrink the effective spare area
/// and get copied by every GC pass. The generic [`DeviceInterface`] loop
/// runs unchanged against the block FTL (where *telling* is TRIM) and the
/// nameless device (where it is an exact `free` of the page's name).
fn churn<D: DeviceInterface>(dev: &mut D, tell_device: bool) -> (f64, f64, u64, f64) {
    let pages = dev.usable_tags();
    let file_pages = 64u64;
    let files = pages / file_pages; // fill the whole tag space with files
    let mut handles: Vec<Option<D::Handle>> = vec![None; pages as usize];
    let mut t = SimTime::ZERO;
    for tag in 0..files * file_pages {
        let out = dev.update(t, tag, None);
        handles[tag as usize] = Some(out.handle.expect("fill write accepted"));
        t = out.done;
    }
    // delete every 3rd file; these tags are never used again — the host
    // knows they are dead, the device only learns it if told
    for f in 0..files {
        if f % 3 != 0 || !tell_device {
            continue;
        }
        for r in dev.drain_relocations() {
            handles[r.tag as usize] = Some(r.new);
        }
        for p in 0..file_pages {
            let tag = f * file_pages + p;
            let h = handles[tag as usize].take().expect("live file page");
            let (done, status) = dev.discard(t, tag, h);
            assert!(status.is_success(), "discard of a live page accepted");
            t = done;
        }
    }
    // now churn the *surviving* files: random overwrites, 2 drive-fills
    let survivors: Vec<u64> = (0..files)
        .filter(|f| f % 3 != 0)
        .flat_map(|f| (0..file_pages).map(move |p| f * file_pages + p))
        .collect();
    let before = dev.device_metrics();
    let t0 = t;
    let mut x = 42u64;
    for _ in 0..2 * pages {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let tag = survivors[(x % survivors.len() as u64) as usize];
        for r in dev.drain_relocations() {
            if handles[r.tag as usize].is_some() {
                handles[r.tag as usize] = Some(r.new);
            }
        }
        let out = dev.update(t, tag, handles[tag as usize]);
        handles[tag as usize] = Some(out.handle.expect("churn rewrite accepted"));
        t = out.done;
    }
    let d = dev.device_metrics().since(&before);
    let makespan = t.since(t0);
    let mbs = d.host_writes as f64 * 4096.0 / (1024.0 * 1024.0) / makespan.as_secs_f64();
    (
        d.write_amplification(),
        mbs,
        d.gc_pages_moved,
        d.gc_runs as f64,
    )
}

fn main() {
    println!("# E5 — TRIM: telling the device what is dead");
    section("File churn: fill device, delete 1/3 of files, then randomly overwrite the survivors for 2 drive-fills (one generic loop per interface)");
    let mut tbl = Table::new([
        "interface / mode",
        "churn-phase WA",
        "GC pages moved",
        "GC runs",
        "effective MB/s",
    ])
    .align(0, Align::Left);
    let rows: Vec<(String, (f64, f64, u64, f64))> = vec![
        (
            "block FTL, deletes unsaid".to_string(),
            churn(&mut Ssd::new(churn_cfg()), false),
        ),
        (
            "block FTL, TRIM".to_string(),
            churn(&mut Ssd::new(churn_cfg()), true),
        ),
        (
            "nameless, names hoarded".to_string(),
            churn(
                &mut NamelessSsd::new(NamelessConfig::from(&churn_cfg())),
                false,
            ),
        ),
        (
            "nameless, names freed".to_string(),
            churn(
                &mut NamelessSsd::new(NamelessConfig::from(&churn_cfg())),
                true,
            ),
        ),
    ];
    for (label, (wa, mbs, moved, runs)) in rows {
        tbl.row([
            label,
            format!("{wa:.2}"),
            format!("{moved}"),
            format!("{runs:.0}"),
            format!("{mbs:.1}"),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: a device not told about dead pages relocates them forever — on either interface. TRIM (block) and free (nameless) are the same message: death notification. The difference is that the nameless host *must* manage names anyway, so the message is structural, not an optional afterthought.");

    section("Interaction with steady-state overwrite (no deletes): TRIM is no help");
    let mut tbl = Table::new(["mode", "write amplification"]).align(0, Align::Left);
    for use_trim in [false, true] {
        let mut cfg = modern_unbuffered();
        cfg.shape.channels = 2;
        cfg.shape.chips_per_channel = 2;
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let t = precondition(&mut ssd, pages);
        // pure overwrites never have dead-but-unmapped pages, so trimming
        // immediately before each write is a wash
        if use_trim {
            let mut t2 = t;
            for lpn in 0..pages / 2 {
                let c = ssd.trim(t2, Lpn(lpn)).expect("trim");
                t2 = c.done;
                let c = ssd.write(t2, Lpn(lpn)).expect("write");
                t2 = c.done;
            }
        } else {
            let _ = measure(
                &mut ssd,
                Pattern::Sequential,
                pages / 2,
                IoMix::write_only(),
                1,
                pages / 2,
                9,
                t,
            );
        }
        tbl.row([
            if use_trim {
                "trim-then-write"
            } else {
                "plain overwrite"
            }
            .to_string(),
            format!("{:.2}", ssd.metrics().write_amplification()),
        ]);
    }
    println!("{tbl}");
    note("TRIM helps exactly when the host knows something the FTL cannot infer — dead data. It is a communication channel, which is the paper's point.");
}
