//! **E5 — TRIM**: the first crack in the block interface.
//!
//! §3: the TRIM command was added *"to communicate to a SSD that a range
//! of logical addresses [is] no longer used and could thus be un-mapped by
//! the FTL"* — the memory abstraction amended with a hint because the FTL
//! otherwise copies dead data forever. This experiment runs a file-churn
//! workload (create + delete) with and without TRIM and measures what the
//! hint buys the garbage collector.

use requiem_bench::{measure, modern_unbuffered, note, precondition, section};
use requiem_sim::table::Align;
use requiem_sim::Table;
use requiem_ssd::{Lpn, Ssd};
use requiem_workload::driver::IoMix;
use requiem_workload::pattern::Pattern;

/// Fill the device with "files", delete a third of them (with or without
/// TRIM), then randomly overwrite the surviving files for two drive-fills.
/// Without TRIM, the deleted files' pages remain "valid" to the FTL: they
/// shrink its effective spare area and get copied by every GC pass.
fn churn(use_trim: bool) -> (f64, f64, u64, f64) {
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let file_pages = 64u64;
    let files = pages / file_pages; // fill the whole LBA space with files
    let mut t = precondition(&mut ssd, pages);

    // delete every 3rd file; these LBAs are never used again — the host
    // knows they are dead, the FTL only learns it via TRIM
    for f in 0..files {
        if f % 3 != 0 {
            continue;
        }
        let base = f * file_pages;
        if use_trim {
            for p in 0..file_pages {
                let c = ssd.trim(t, Lpn(base + p)).expect("trim");
                t = c.done;
            }
        }
    }
    // now churn the *surviving* files: random overwrites, 2 drive-fills
    let survivors: Vec<u64> = (0..files)
        .filter(|f| f % 3 != 0)
        .flat_map(|f| (0..file_pages).map(move |p| f * file_pages + p))
        .collect();
    let before = ssd.metrics().flash_programs.total();
    let before_host = ssd.metrics().host_writes;
    let before_moved = ssd.metrics().gc_pages_moved;
    let before_runs = ssd.metrics().gc_runs;
    let t0 = t;
    let mut x = 42u64;
    for _ in 0..2 * pages {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lpn = survivors[(x % survivors.len() as u64) as usize];
        let c = ssd.write(t, Lpn(lpn)).expect("write");
        t = c.done;
    }
    let m = ssd.metrics();
    let wa = (m.flash_programs.total() - before) as f64 / (m.host_writes - before_host) as f64;
    let makespan = t.since(t0);
    let mbs =
        (m.host_writes - before_host) as f64 * 4096.0 / (1024.0 * 1024.0) / makespan.as_secs_f64();
    (
        wa,
        mbs,
        m.gc_pages_moved - before_moved,
        (m.gc_runs - before_runs) as f64,
    )
}

fn main() {
    println!("# E5 — TRIM: telling the FTL what is dead");
    section("File churn: fill device, delete 1/3 of files, then randomly overwrite the survivors for 2 drive-fills");
    let mut tbl = Table::new([
        "mode",
        "churn-phase WA",
        "GC pages moved",
        "GC runs",
        "effective MB/s",
    ])
    .align(0, Align::Left);
    for (label, use_trim) in [("without TRIM", false), ("with TRIM", true)] {
        let (wa, mbs, moved, runs) = churn(use_trim);
        tbl.row([
            label.to_string(),
            format!("{wa:.2}"),
            format!("{moved}"),
            format!("{runs:.0}"),
            format!("{mbs:.1}"),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: without TRIM the collector relocates pages whose files were deleted long ago; with TRIM those pages are already invalid, cutting GC copies and write amplification.");

    section("Interaction with steady-state overwrite (no deletes): TRIM is no help");
    let mut tbl = Table::new(["mode", "write amplification"]).align(0, Align::Left);
    for use_trim in [false, true] {
        let mut cfg = modern_unbuffered();
        cfg.shape.channels = 2;
        cfg.shape.chips_per_channel = 2;
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let t = precondition(&mut ssd, pages);
        // pure overwrites never have dead-but-unmapped pages, so trimming
        // immediately before each write is a wash
        if use_trim {
            let mut t2 = t;
            for lpn in 0..pages / 2 {
                let c = ssd.trim(t2, Lpn(lpn)).expect("trim");
                t2 = c.done;
                let c = ssd.write(t2, Lpn(lpn)).expect("write");
                t2 = c.done;
            }
        } else {
            let _ = measure(
                &mut ssd,
                Pattern::Sequential,
                pages / 2,
                IoMix::write_only(),
                1,
                pages / 2,
                9,
                t,
            );
        }
        tbl.row([
            if use_trim {
                "trim-then-write"
            } else {
                "plain overwrite"
            }
            .to_string(),
            format!("{:.2}", ssd.metrics().write_amplification()),
        ]);
    }
    println!("{tbl}");
    note("TRIM helps exactly when the host knows something the FTL cannot infer — dead data. It is a communication channel, which is the paper's point.");
}
