//! **E12 — Fault sweep**: what the typed status channel shows that the
//! block interface hides.
//!
//! The block interface reports failure as, at best, a sense code after
//! the fact; everything the device did to *avoid* failing — read-retry
//! rungs, soft-decision ECC senses, stripe parity rebuilds — is silently
//! folded into latency. This experiment injects a deterministic,
//! seed-replayable raw-bit-error-rate (RBER) elevation and sweeps it
//! across the recovery ladder's engagement thresholds:
//!
//! * tail latency (p99/p999) climbs **before** throughput moves — the
//!   recovery pipeline runs on the critical path of the unlucky read
//!   while the average hides it;
//! * the probe bus attributes the added time to `Cause::Recovery` spans
//!   and counts non-`Ok` completions by status — the cross-layer view
//!   the paper's §3 interfaces make possible;
//! * on a device with no stripe peers the ladder exhausts and reads
//!   complete `unrecoverable` — a *typed* outcome the stack above can
//!   handle (requiem-db rebuilds the page from its WAL), not a panic.
//!
//! Every fault schedule is expanded from a seed at construction, so the
//! whole experiment is bit-replayable: the CI determinism job runs it
//! twice and diffs the output.

use requiem_bench::{note, section};
use requiem_sim::table::Align;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{FaultPlan, Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, Ssd, SsdConfig};
use requiem_workload::driver::{precondition_sequential, run_closed_loop, DriverReport, IoMix};
use requiem_workload::pattern::{AddressPattern, Pattern};

const OPS: u64 = 1024;
const SPAN: u64 = 512;
const SEED: u64 = 12;

/// RBER multipliers swept across the ladder's engagement range. The
/// modern device's fresh-cell RBER is ~1e-7 and its BCH budget tops out
/// near 2.9e-3, so the ladder starts engaging around 1e4× and is fully
/// saturated past 1e5×.
const MULTS: [(&str, f64); 5] = [
    ("1x", 1.0),
    ("1e4x", 1.0e4),
    ("3e4x", 3.0e4),
    ("1e5x", 1.0e5),
    ("3e5x", 3.0e5),
];

fn faulty_device(mult: f64) -> SsdConfig {
    SsdConfig {
        buffer: BufferConfig { capacity_pages: 0 },
        fault: FaultPlan::uniform_rber(mult),
        ..SsdConfig::modern()
    }
}

/// One LUN, one channel: no stripe peers, so stage 3 (parity rebuild)
/// has nothing to read and the ladder can exhaust.
fn peerless_device(mult: f64) -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 1,
            luns_per_chip: 1,
        },
        buffer: BufferConfig { capacity_pages: 0 },
        fault: FaultPlan::uniform_rber(mult),
        ..SsdConfig::modern()
    }
}

struct FaultPoint {
    label: &'static str,
    report: DriverReport,
    p999: u64,
    retries: u64,
    retry_rec: u64,
    escalations: u64,
    rebuilds: u64,
    unrecoverable: u64,
    recovery_time: SimDuration,
    statuses: String,
}

fn run_point(label: &'static str, cfg: SsdConfig, qd: usize) -> FaultPoint {
    let mut ssd = Ssd::new(cfg);
    let t0 = precondition_sequential(&mut ssd, SPAN, SimTime::ZERO);
    let probe = Probe::new();
    ssd.attach_probe(probe.clone());
    let mut pat = AddressPattern::new(Pattern::UniformRandom, SPAN, SEED);
    let report = run_closed_loop(&mut ssd, &mut pat, IoMix::read_only(), qd, OPS, SEED, t0);
    let rec = &ssd.metrics().recovery;
    let p999 = report.latency.quantile(0.999);
    FaultPoint {
        label,
        p999,
        retries: rec.retry_attempts,
        retry_rec: rec.retry_recovered,
        escalations: rec.ecc_escalations,
        rebuilds: rec.parity_rebuilds,
        unrecoverable: rec.unrecoverable,
        recovery_time: rec.recovery_time,
        statuses: statuses_json(&probe),
        report,
    }
}

/// The probe bus's non-`Ok` status counts as a JSON object.
fn statuses_json(probe: &Probe) -> String {
    let s = probe.summary();
    let mut parts: Vec<String> = s
        .statuses
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    parts.sort();
    format!("{{{}}}", parts.join(","))
}

fn point_json(p: &FaultPoint, qd: usize) -> String {
    let s = p.report.latency.summary();
    format!(
        "{{\"rber_mult\":\"{}\",\"qd\":{},\"iops\":{:.1},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"retry_attempts\":{},\"retry_recovered\":{},\"ecc_escalations\":{},\"parity_rebuilds\":{},\"unrecoverable\":{},\"recovery_time_ns\":{},\"statuses\":{}}}",
        p.label,
        qd,
        p.report.iops,
        s.p50,
        s.p99,
        p.p999,
        p.retries,
        p.retry_rec,
        p.escalations,
        p.rebuilds,
        p.unrecoverable,
        p.recovery_time.as_nanos(),
        p.statuses
    )
}

fn main() {
    println!("# E12 — deterministic fault injection across the recovery ladder");
    note("Seeded RBER elevation on the modern device; random reads at fixed queue depth. Every schedule expands from the seed at construction — two runs are bit-identical.");

    // ---- RBER sweep at QD 1: the ladder engages stage by stage ----
    section("RBER sweep, QD 1 (8-LUN device, stripe parity available)");
    let mut sweep = Vec::new();
    let mut tbl = Table::new([
        "RBER",
        "IOPS",
        "p50",
        "p99",
        "p99.9",
        "retries",
        "recovered",
        "escalations",
        "rebuilds",
        "recovery time",
    ])
    .align(0, Align::Left);
    for (label, mult) in MULTS {
        let p = run_point(label, faulty_device(mult), 1);
        let s = p.report.latency.summary();
        tbl.row([
            label.to_string(),
            format!("{:.0}", p.report.iops),
            format!("{}", SimDuration::from_nanos(s.p50)),
            format!("{}", SimDuration::from_nanos(s.p99)),
            format!("{}", SimDuration::from_nanos(p.p999)),
            format!("{}", p.retries),
            format!("{}", p.retry_rec),
            format!("{}", p.escalations),
            format!("{}", p.rebuilds),
            format!("{}", p.recovery_time),
        ]);
        sweep.push(p);
    }
    println!("{tbl}");

    let base = &sweep[0];
    assert_eq!(
        base.retries, 0,
        "multiplier 1.0 must not engage the ladder (zero-fault identity)"
    );
    assert_eq!(base.statuses, "{}", "baseline statuses must be empty");
    assert!(
        sweep.iter().skip(1).any(|p| p.retry_rec > 0),
        "sweep must recover reads through the retry ladder"
    );
    assert!(
        sweep.last().expect("sweep").escalations > 0,
        "top of the sweep must escalate past the retry ladder"
    );
    for w in sweep.windows(2) {
        assert!(
            w[1].report.latency.summary().p99 >= w[0].report.latency.summary().p99,
            "p99 must be monotone in RBER ({} vs {})",
            w[0].label,
            w[1].label
        );
    }
    assert!(
        sweep.last().expect("sweep").report.latency.summary().p99
            > base.report.latency.summary().p99,
        "p99 must rise across the sweep"
    );
    let mean_base = base.report.latency.summary().mean;
    let p999_base = base.p999.max(1);
    let last = sweep.last().expect("sweep");
    note(&format!(
        "The tail moves first: p99.9 grows {:.1}x across the sweep while the mean grows {:.1}x — recovery rungs serialize on the unlucky read's LUN, invisible to averages.",
        last.p999 as f64 / p999_base as f64,
        last.report.latency.summary().mean / mean_base.max(1.0),
    ));

    // ---- queue-depth interaction at a fixed mid-sweep fault level ----
    section("Queue-depth interaction (RBER 1e5x vs clean)");
    note("Recovery rungs occupy the LUN for milliseconds; at depth, innocent commands queue behind them — GC-style interference, but from error handling.");
    let mut tbl = Table::new(["QD", "clean p99", "faulty p99", "faulty p99.9", "blowup"]);
    let mut qd_points = Vec::new();
    for qd in [1usize, 2, 4, 8] {
        let clean = run_point("clean", faulty_device(1.0), qd);
        let faulty = run_point("1e5x", faulty_device(1.0e5), qd);
        let c99 = clean.report.latency.summary().p99;
        let f99 = faulty.report.latency.summary().p99;
        tbl.row([
            format!("{qd}"),
            format!("{}", SimDuration::from_nanos(c99)),
            format!("{}", SimDuration::from_nanos(f99)),
            format!("{}", SimDuration::from_nanos(faulty.p999)),
            format!("{:.1}x", f99 as f64 / c99.max(1) as f64),
        ]);
        qd_points.push((qd, clean, faulty));
    }
    println!("{tbl}");
    for (qd, clean, faulty) in &qd_points {
        assert!(
            faulty.report.latency.summary().p99 > clean.report.latency.summary().p99,
            "fault injection must raise p99 at QD {qd}"
        );
        assert_eq!(clean.statuses, "{}", "clean run at QD {qd} saw recoveries");
    }

    // ---- ladder exhaustion: no stripe peers, nothing left to try ----
    section("Ladder exhaustion (1-LUN device: no stripe parity)");
    note("With no peers to rebuild from, stage 3 has nothing to read; the read completes with a typed `unrecoverable` status instead of a panic — requiem-db's engine answers it by redoing the page from its WAL.");
    let mut tbl = Table::new([
        "RBER",
        "escalations",
        "unrecoverable",
        "statuses (probe bus)",
    ])
    .align(0, Align::Left)
    .align(3, Align::Left);
    let mut exhausted = Vec::new();
    for (label, mult) in [("1e5x", 1.0e5), ("1e7x", 1.0e7)] {
        let p = run_point(label, peerless_device(mult), 1);
        tbl.row([
            label.to_string(),
            format!("{}", p.escalations),
            format!("{}", p.unrecoverable),
            p.statuses.clone(),
        ]);
        exhausted.push(p);
    }
    println!("{tbl}");
    assert!(
        exhausted.last().expect("exhaustion").unrecoverable > 0,
        "peerless device at extreme RBER must exhaust the ladder"
    );
    assert!(
        exhausted
            .last()
            .expect("exhaustion")
            .statuses
            .contains("unrecoverable"),
        "probe bus must count unrecoverable completions"
    );

    // ---- machine-readable output for the determinism CI job ----
    section("Fault sweep (JSON)");
    note("Per-point latency quantiles, recovery-pipeline counters, and the probe bus's non-Ok status counts.");
    println!("```json");
    println!("{{\"device\":\"modern unbuffered\",\"ops\":{OPS},\"span\":{SPAN},\"seed\":{SEED},");
    let rows: Vec<String> = sweep.iter().map(|p| point_json(p, 1)).collect();
    println!("\"rber_sweep_qd1\":[{}],", rows.join(","));
    let rows: Vec<String> = qd_points
        .iter()
        .map(|(qd, _, faulty)| point_json(faulty, *qd))
        .collect();
    println!("\"qd_sweep_1e5x\":[{}],", rows.join(","));
    let rows: Vec<String> = exhausted.iter().map(|p| point_json(p, 1)).collect();
    println!("\"peerless_exhaustion\":[{}]}}", rows.join(","));
    println!("```");
}
