//! **E16 — steady-state aging & GC-debt campaign.**
//!
//! The paper's Myth 2 ("random writes are fine now") is usually tested
//! on a young device — but the FTL tax of random writes arrives *later*,
//! once the device is full and every new write forces the collector to
//! make room. This experiment preconditions the device to 100 % mapped,
//! destroys locality with zipfian overwrites until write amplification
//! plateaus, then runs mixed traffic on the aged device, across
//! {page-mapped, hybrid} FTL × {greedy, cost-benefit} GC × {7 %, 28 %}
//! over-provisioning (see [`requiem_bench::aging`] for the harness).
//!
//! Sections:
//!
//! * **16a** — steady-state WA per corner: the plateau each corner
//!   converges to, and how over-provisioning buys it down.
//! * **16b** — GC debt: how much of the post-fill OP cushion sustained
//!   overwrite burns (the free-block deficit the collector owes back),
//!   peak and end-of-run.
//! * **16c** — the aged tail: p99/p99.9 of the mixed phase, where
//!   demand reads queue behind steady-state collection.
//! * Trailing JSON (the full trajectories) feeds `BENCH_exp16.json`
//!   and the determinism CI diff (short preset).
//!
//! `--short` selects the CI preset (same phases, ~1/8 the ops).

use requiem_bench::aging::{run_campaign, run_json, AgingPreset, AgingRun};
use requiem_bench::{note, section};
use requiem_sim::table::Align;
use requiem_sim::time::SimDuration;
use requiem_sim::Table;

fn fmt_ns(ns: u64) -> String {
    format!("{}", SimDuration::from_nanos(ns))
}

fn steady_state_table(runs: &[AgingRun]) -> Table {
    let mut t = Table::new([
        "config",
        "exported",
        "final WA",
        "plateau WA",
        "outcome",
        "GC runs",
        "merges",
    ])
    .align(0, Align::Left);
    for r in runs {
        let outcome = match (r.insolvent_at, r.plateau_wa) {
            (Some(at), _) => format!("insolvent@{at}"),
            (None, Some(_)) => "steady".to_string(),
            (None, None) => "no plateau".to_string(),
        };
        t.row([
            r.config.label(),
            r.exported_pages.to_string(),
            format!("{:.2}", r.final_wa),
            match r.plateau_wa {
                Some(v) => format!("{v:.2}"),
                None => "—".to_string(),
            },
            outcome,
            r.gc_runs.to_string(),
            r.merges.to_string(),
        ]);
    }
    t
}

fn debt_table(runs: &[AgingRun]) -> Table {
    let mut t = Table::new(["config", "peak debt", "end debt", "end free", "min free"])
        .align(0, Align::Left);
    for r in runs {
        let end = r.points.last().expect("trajectory non-empty");
        let min_free = r.points.iter().map(|p| p.free_blocks).min().unwrap_or(0);
        t.row([
            r.config.label(),
            r.peak_gc_debt.to_string(),
            end.gc_debt.to_string(),
            end.free_blocks.to_string(),
            min_free.to_string(),
        ]);
    }
    t
}

fn tail_table(runs: &[AgingRun]) -> Table {
    let mut t = Table::new(["config", "aged p99", "aged p99.9", "aged IOPS"]).align(0, Align::Left);
    for r in runs {
        // worst window of the mixed phase: the aged-device tail
        let mixed: Vec<_> = r.points.iter().filter(|p| p.phase == "mixed").collect();
        if mixed.is_empty() {
            let why = "insolvent before mixed phase".to_string();
            t.row([r.config.label(), "—".to_string(), "—".to_string(), why]);
            continue;
        }
        let p99 = mixed.iter().map(|p| p.p99_ns).max().unwrap_or(0);
        let p999 = mixed.iter().map(|p| p.p999_ns).max().unwrap_or(0);
        let iops = mixed.iter().map(|p| p.iops).fold(f64::INFINITY, f64::min);
        t.row([
            r.config.label(),
            fmt_ns(p99),
            fmt_ns(p999),
            format!("{iops:.0}"),
        ]);
    }
    t
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let preset = if short {
        AgingPreset::short()
    } else {
        AgingPreset::full()
    };
    println!(
        "# E16 — steady-state aging & GC debt ({} preset)",
        if short { "short" } else { "full" }
    );
    note("fill → zipfian overwrite (θ=0.9) → mixed 50/50; windowed WA, free-block debt, tail latency");

    let runs = run_campaign(&preset);

    section("16a — steady-state write amplification");
    note("WA measured after the fill; plateau = mean of the last 4 overwrite windows when flat within ±25%");
    print!("{}", steady_state_table(&runs));

    section("16b — GC debt (free-block deficit vs the post-fill pool)");
    print!("{}", debt_table(&runs));

    section("16c — the aged tail (mixed phase)");
    print!("{}", tail_table(&runs));

    section("Trajectories (JSON)");
    println!("```json");
    println!(
        "{{\"_regenerate\":\"cargo run --release -p requiem-bench --bin exp16_aging (deterministic; paste the trailing JSON block)\","
    );
    println!(
        "\"preset\":\"{}\",\"window\":{},",
        if short { "short" } else { "full" },
        preset.window
    );
    print!("\"runs\":[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            print!(",");
        }
        println!();
        print!("{}", run_json(r));
    }
    println!("]}}");
    println!("```");
}
