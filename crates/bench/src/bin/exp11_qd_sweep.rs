//! **E11 — Queue-depth sweep**: what batched submission and out-of-order
//! completion buy, and where they stop buying.
//!
//! The queue-pair engine keeps QD commands in flight against the
//! Figure-1 device (four chips, one shared channel). Sweeping QD for
//! pure reads and pure writes reproduces the paper's asymmetry as a
//! *throughput ceiling*: reads saturate as soon as the shared channel is
//! full (low QD — each read occupies the channel for a whole page
//! transfer), while writes keep scaling until all four chips' program
//! latencies are covered (higher QD — the channel is released after a
//! short data-in burst). The probe bus decomposes where the time went;
//! its JSON is emitted for the determinism CI job to diff.
//!
//! At QD 1 the queue pair degenerates to the serialized path and must
//! reproduce it bit-for-bit — asserted here, not just claimed.

use requiem_bench::{note, section};
use requiem_sim::table::Align;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, ChannelTiming, Placement, Ssd, SsdConfig};
use requiem_workload::driver::{
    precondition_sequential, run_closed_loop, run_closed_loop_serialized, DriverReport, IoMix,
};
use requiem_workload::pattern::{AddressPattern, Pattern};

const OPS: u64 = 512;
const SPAN: u64 = 512;
const SEED: u64 = 11;
const QDS: [usize; 5] = [1, 2, 4, 8, 16];

fn figure1_device() -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 4,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

struct SweepPoint {
    qd: usize,
    report: DriverReport,
    chan_util: f64,
    chip_util: f64,
}

/// One closed-loop run at `qd`, with busy-time deltas over the measured
/// window so utilization excludes the preconditioning phase.
fn run_point(mix: IoMix, qd: usize, probe: Option<&Probe>) -> SweepPoint {
    let mut ssd = Ssd::new(figure1_device());
    let t0 = if mix.read_fraction > 0.5 {
        precondition_sequential(&mut ssd, SPAN, SimTime::ZERO)
    } else {
        SimTime::ZERO
    };
    if let Some(p) = probe {
        ssd.attach_probe(p.clone());
    }
    let chan_b = ssd.channel_busy_time();
    let lun_b = ssd.lun_busy_time();
    let mut pat = AddressPattern::new(Pattern::Sequential, SPAN, SEED);
    let report = run_closed_loop(&mut ssd, &mut pat, mix, qd, OPS, SEED, t0);
    let window = ssd.drain_time().since(t0).as_nanos().max(1) as f64;
    let chan_util = ssd
        .channel_busy_time()
        .iter()
        .zip(&chan_b)
        .map(|(a, b)| a.saturating_sub(*b).as_nanos() as f64)
        .sum::<f64>()
        / ssd.channel_busy_time().len() as f64
        / window;
    let chip_util = ssd
        .lun_busy_time()
        .iter()
        .zip(&lun_b)
        .map(|(a, b)| a.saturating_sub(*b).as_nanos() as f64)
        .sum::<f64>()
        / ssd.lun_busy_time().len() as f64
        / window;
    SweepPoint {
        qd,
        report,
        chan_util,
        chip_util,
    }
}

/// Smallest QD reaching ≥95 % of the sweep's best IOPS.
fn saturation_qd(points: &[SweepPoint]) -> usize {
    let best = points.iter().map(|p| p.report.iops).fold(0.0, f64::max);
    points
        .iter()
        .find(|p| p.report.iops >= 0.95 * best)
        .map(|p| p.qd)
        .expect("non-empty sweep")
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let s = p.report.latency.summary();
            format!(
                "{{\"qd\":{},\"iops\":{:.1},\"mb_per_s\":{:.2},\"p50_ns\":{},\"p99_ns\":{},\"channel_util\":{:.3},\"chip_util\":{:.3}}}",
                p.qd, p.report.iops, p.report.mb_per_s, s.p50, s.p99, p.chan_util, p.chip_util
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Histogram fingerprint for the QD-1 bit-identity check.
fn fingerprint(r: &DriverReport) -> (u64, u64, u64, u64, u64) {
    let s = r.latency.summary();
    (
        r.latency.count(),
        s.p50,
        s.p99,
        s.max,
        r.makespan.as_nanos(),
    )
}

fn main() {
    println!("# E11 — queue-depth sweep on the queue-pair engine");
    note("Figure-1 device: 4 chips, 1 shared ONFI-2 channel. Closed loop keeps QD tagged commands in flight; completions reap out of submission order.");

    let mut tables = Vec::new();
    let mut probes = Vec::new();
    let mut sweeps: Vec<(&str, Vec<SweepPoint>)> = Vec::new();
    for (name, mix) in [
        ("reads", IoMix::read_only()),
        ("writes", IoMix::write_only()),
    ] {
        let mut tbl = Table::new([
            "QD",
            "IOPS",
            "MB/s",
            "p50",
            "p99",
            "channel util",
            "chip util",
        ]);
        let probe = Probe::new();
        let points: Vec<SweepPoint> = QDS
            .iter()
            .map(|&qd| {
                // attach the probe bus only at the deepest point — the
                // span decomposition of the saturated regime
                let p = if qd == 16 { Some(&probe) } else { None };
                run_point(mix, qd, p)
            })
            .collect();
        for p in &points {
            let s = p.report.latency.summary();
            tbl.row([
                format!("{}", p.qd),
                format!("{:.0}", p.report.iops),
                format!("{:.1}", p.report.mb_per_s),
                format!("{}", SimDuration::from_nanos(s.p50)),
                format!("{}", SimDuration::from_nanos(s.p99)),
                format!("{:.0}%", p.chan_util * 100.0),
                format!("{:.0}%", p.chip_util * 100.0),
            ]);
        }
        tables.push((name, tbl));
        probes.push((name, probe));
        sweeps.push((name, points));
    }
    for (name, tbl) in &tables {
        section(&format!("Sequential {name}, QD sweep"));
        println!("{tbl}");
    }

    let read_sat = saturation_qd(&sweeps[0].1);
    let write_sat = saturation_qd(&sweeps[1].1);
    section("Saturation");
    let mut tbl = Table::new(["workload", "saturation QD", "bound resource"]).align(0, Align::Left);
    let rd16 = sweeps[0].1.last().expect("read sweep");
    let wr16 = sweeps[1].1.last().expect("write sweep");
    tbl.row([
        "reads".to_string(),
        format!("{read_sat}"),
        if rd16.chan_util > rd16.chip_util {
            "channel"
        } else {
            "chips"
        }
        .to_string(),
    ]);
    tbl.row([
        "writes".to_string(),
        format!("{write_sat}"),
        if wr16.chan_util > wr16.chip_util {
            "channel"
        } else {
            "chips"
        }
        .to_string(),
    ]);
    println!("{tbl}");
    assert!(
        read_sat < write_sat,
        "reads must saturate at lower QD than writes (read sat {read_sat}, write sat {write_sat})"
    );
    assert!(
        rd16.chan_util > rd16.chip_util && wr16.chip_util > wr16.chan_util,
        "saturated reads must be channel-bound and writes chip-bound"
    );
    note("Reads fill the one shared channel after a couple of outstanding transfers; writes keep scaling until every chip's program latency is covered — Figure 1 as a throughput ceiling.");

    // ---- QD=1 must reproduce the serialized path bit-for-bit ----
    section("QD 1: queue pair vs serialized reference");
    let mut identical = true;
    let mut tbl =
        Table::new(["mix", "serialized", "queue pair", "bit-identical"]).align(0, Align::Left);
    for (label, mix) in [
        ("reads", IoMix::read_only()),
        ("writes", IoMix::write_only()),
    ] {
        let mut a = Ssd::new(figure1_device());
        let ta = precondition_sequential(&mut a, SPAN, SimTime::ZERO);
        let mut pa = AddressPattern::new(Pattern::Sequential, SPAN, SEED);
        let ra = run_closed_loop_serialized(&mut a, &mut pa, mix, 1, OPS, SEED, ta);
        let mut b = Ssd::new(figure1_device());
        let tb = precondition_sequential(&mut b, SPAN, SimTime::ZERO);
        let mut pb = AddressPattern::new(Pattern::Sequential, SPAN, SEED);
        let rb = run_closed_loop(&mut b, &mut pb, mix, 1, OPS, SEED, tb);
        let same = fingerprint(&ra) == fingerprint(&rb) && a.drain_time() == b.drain_time();
        identical &= same;
        tbl.row([
            label.to_string(),
            format!("{:.0} IOPS", ra.iops),
            format!("{:.0} IOPS", rb.iops),
            format!("{same}"),
        ]);
    }
    println!("{tbl}");
    assert!(identical, "QD=1 queue pair must match the serialized path");

    // ---- machine-readable output for the determinism CI job ----
    section("Sweep + probe summary (JSON)");
    note("Per-QD throughput/latency/utilization, plus the probe bus's per-(layer, cause) decomposition of the QD-16 runs.");
    println!("```json");
    println!(
        "{{\"device\":\"figure1 1ch x 4chip onfi2\",\"ops\":{OPS},\"read_saturation_qd\":{read_sat},\"write_saturation_qd\":{write_sat},\"qd1_matches_serialized\":{identical},"
    );
    println!("\"reads\":{},", sweep_json(&sweeps[0].1));
    println!("\"writes\":{},", sweep_json(&sweeps[1].1));
    println!("\"probe_reads_qd16\":{},", probes[0].1.summary().to_json());
    println!(
        "\"probe_writes_qd16\":{}}}",
        probes[1].1.summary().to_json()
    );
    println!("```");
}
