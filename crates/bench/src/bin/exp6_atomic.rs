//! **E6 — Atomic writes** (the paper's ref [17], Ouyang et al. HPCA'11):
//! a device primitive beats a host-side workaround.
//!
//! Torn-page safety through the block interface requires a double-write
//! journal — every page written twice with a barrier between the copies.
//! An FTL that already writes out of place can promise multi-page
//! atomicity natively at ~1× the I/O, and a nameless device gets it for
//! free (old names stay valid until the host swaps its index). One
//! generic harness drives all three through
//! [`DeviceInterface::commit_batch`] — the interface is the only
//! variable.

use requiem_bench::{modern_unbuffered, note, section};
use requiem_iface::atomic::ExtendedSsd;
use requiem_iface::device::DeviceInterface;
use requiem_iface::nameless::{NamelessConfig, NamelessSsd};
use requiem_sim::table::Align;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::Table;
use requiem_ssd::Ssd;

/// One all-or-nothing batch commit on a fresh device: (latency, flash
/// programs paid).
fn one_commit<D: DeviceInterface>(dev: &mut D, batch: u64) -> (SimDuration, u64) {
    let tags: Vec<u64> = (0..batch).collect();
    let prev: Vec<Option<D::Handle>> = vec![None; batch as usize];
    let c = dev.commit_batch(SimTime::ZERO, &tags, &prev);
    assert!(c.status.is_success(), "commit accepted on a fresh device");
    (
        c.done.since(SimTime::ZERO),
        dev.device_metrics().flash_programs,
    )
}

/// Sustained checkpoint traffic: `checkpoints` batches of `batch` pages
/// cycling over a `working`-tag working set, handles tracked like a real
/// buffer manager would.
fn sustained<D: DeviceInterface>(
    dev: &mut D,
    checkpoints: u64,
    batch: u64,
    working: u64,
) -> (SimDuration, u64, f64) {
    let mut handles: Vec<Option<D::Handle>> = vec![None; working as usize];
    let mut t = SimTime::ZERO;
    for ck in 0..checkpoints {
        let tags: Vec<u64> = (0..batch).map(|i| (ck * batch + i) % working).collect();
        let prev: Vec<Option<D::Handle>> = tags.iter().map(|&tg| handles[tg as usize]).collect();
        let c = dev.commit_batch(t, &tags, &prev);
        assert!(c.status.is_success(), "sustained commit accepted");
        for (&tg, h) in tags.iter().zip(c.handles) {
            handles[tg as usize] = Some(h);
        }
        for r in dev.drain_relocations() {
            if (r.tag as usize) < handles.len() {
                handles[r.tag as usize] = Some(r.new);
            }
        }
        t = c.done;
    }
    let m = dev.device_metrics();
    (
        t.since(SimTime::ZERO),
        m.flash_programs,
        m.write_amplification(),
    )
}

fn main() {
    println!("# E6 — atomic commits: native primitive vs host-side workaround");
    section("Batch commit cost (fresh device per row; identical generic harness per interface)");
    let mut tbl = Table::new([
        "batch pages",
        "interface",
        "commit latency",
        "flash programs",
        "I/O vs batch",
    ])
    .align(1, Align::Left);
    for batch in [1u64, 4, 16, 64] {
        {
            let mut dev = Ssd::new(modern_unbuffered());
            let (lat, programs) = one_commit(&mut dev, batch);
            tbl.row([
                format!("{batch}"),
                format!("{} (double-write journal)", dev.label()),
                format!("{lat}"),
                format!("{programs}"),
                format!("{:.2}x", programs as f64 / batch as f64),
            ]);
        }
        {
            let mut dev = ExtendedSsd::new(Ssd::new(modern_unbuffered()));
            let (lat, programs) = one_commit(&mut dev, batch);
            tbl.row([
                format!("{batch}"),
                format!("{} (atomic write)", dev.label()),
                format!("{lat}"),
                format!("{programs}"),
                format!("{:.2}x", programs as f64 / batch as f64),
            ]);
        }
        {
            let mut dev = NamelessSsd::new(NamelessConfig::from(&modern_unbuffered()));
            let (lat, programs) = one_commit(&mut dev, batch);
            tbl.row([
                format!("{batch}"),
                format!("{} (out-of-place)", dev.label()),
                format!("{lat}"),
                format!("{programs}"),
                format!("{:.2}x", programs as f64 / batch as f64),
            ]);
        }
    }
    println!("{tbl}");
    note("Expected shape: the journal pays exactly 2x the programs and roughly 2x the latency (two serialized phases); the atomic primitive pays 1x; the nameless device pays 1x by construction — old names stay valid until the host's index swap, so atomicity needs no extra I/O at all.");

    section(
        "Sustained checkpoint traffic (64-page batches, 32 checkpoints, 2048-page working set)",
    );
    let mut tbl = Table::new([
        "interface",
        "makespan",
        "flash programs",
        "write amplification",
    ])
    .align(0, Align::Left);
    {
        let mut dev = Ssd::new(modern_unbuffered());
        let (makespan, programs, wa) = sustained(&mut dev, 32, 64, 2048);
        tbl.row([
            "block FTL + double-write journal".to_string(),
            format!("{makespan}"),
            format!("{programs}"),
            format!("{wa:.2}"),
        ]);
    }
    {
        let mut dev = ExtendedSsd::new(Ssd::new(modern_unbuffered()));
        let (makespan, programs, wa) = sustained(&mut dev, 32, 64, 2048);
        tbl.row([
            "extended block, device atomic write".to_string(),
            format!("{makespan}"),
            format!("{programs}"),
            format!("{wa:.2}"),
        ]);
    }
    {
        let mut dev = NamelessSsd::new(NamelessConfig::from(&modern_unbuffered()));
        let (makespan, programs, wa) = sustained(&mut dev, 32, 64, 2048);
        tbl.row([
            "nameless, host index swap".to_string(),
            format!("{makespan}"),
            format!("{programs}"),
            format!("{wa:.2}"),
        ]);
    }
    println!("{tbl}");
    note("The journal's extra writes also age the flash twice as fast — the cost compounds through GC and wear.");
}
