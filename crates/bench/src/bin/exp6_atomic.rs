//! **E6 — Atomic writes** (the paper's ref [17], Ouyang et al. HPCA'11):
//! a device primitive beats a host-side workaround.
//!
//! Torn-page safety through the block interface requires a double-write
//! journal — every page written twice with a barrier between the copies.
//! An FTL that already writes out of place can promise multi-page
//! atomicity natively at ~1× the I/O. This experiment sweeps the batch
//! size and measures both.

use requiem_bench::{modern_unbuffered, note, section};
use requiem_iface::atomic::{double_write_journal, ExtendedSsd};
use requiem_sim::table::Align;
use requiem_sim::time::SimTime;
use requiem_sim::Table;
use requiem_ssd::{Lpn, Ssd};

fn main() {
    println!("# E6 — atomic writes vs double-write journaling");
    section("Batch commit cost (fresh device per row; batch at LPN 0.., journal area beyond)");
    let mut tbl = Table::new([
        "batch pages",
        "atomic latency",
        "journal latency",
        "latency ratio",
        "atomic programs",
        "journal programs",
    ]);
    for batch in [1usize, 4, 16, 64] {
        let lpns: Vec<Lpn> = (0..batch as u64).map(Lpn).collect();

        let mut dev = ExtendedSsd::new(Ssd::new(modern_unbuffered()));
        let a = dev.write_atomic(SimTime::ZERO, &lpns).expect("atomic");
        let a_programs = dev.inner().metrics().flash_programs.total();

        let mut ssd = Ssd::new(modern_unbuffered());
        let j = double_write_journal(&mut ssd, SimTime::ZERO, &lpns, Lpn(4096)).expect("journal");
        let j_programs = ssd.metrics().flash_programs.total();

        tbl.row([
            format!("{batch}"),
            format!("{}", a.latency),
            format!("{}", j.latency),
            format!(
                "{:.2}x",
                j.latency.as_nanos() as f64 / a.latency.as_nanos() as f64
            ),
            format!("{a_programs}"),
            format!("{j_programs}"),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: the journal pays exactly 2x the programs and roughly 2x the latency (two serialized phases); the atomic primitive pays 1x — 'the block device interface provides too much abstraction'.");

    section("Sustained checkpoint traffic (64-page batches, 32 checkpoints)");
    let mut tbl = Table::new([
        "method",
        "makespan",
        "flash programs",
        "write amplification",
    ])
    .align(0, Align::Left);
    // atomic
    let mut dev = ExtendedSsd::new(Ssd::new(modern_unbuffered()));
    let mut t = SimTime::ZERO;
    for ck in 0..32u64 {
        let lpns: Vec<Lpn> = (0..64u64).map(|i| Lpn((ck * 64 + i) % 2048)).collect();
        let c = dev.write_atomic(t, &lpns).expect("atomic");
        t = c.done;
    }
    tbl.row([
        "device atomic write".to_string(),
        format!("{}", t.since(SimTime::ZERO)),
        format!("{}", dev.inner().metrics().flash_programs.total()),
        format!("{:.2}", dev.inner().metrics().write_amplification()),
    ]);
    // journal
    let mut ssd = Ssd::new(modern_unbuffered());
    let mut t = SimTime::ZERO;
    for ck in 0..32u64 {
        let lpns: Vec<Lpn> = (0..64u64).map(|i| Lpn((ck * 64 + i) % 2048)).collect();
        let c = double_write_journal(&mut ssd, t, &lpns, Lpn(4096)).expect("journal");
        t = c.done;
    }
    tbl.row([
        "double-write journal".to_string(),
        format!("{}", t.since(SimTime::ZERO)),
        format!("{}", ssd.metrics().flash_programs.total()),
        format!("{:.2}", ssd.metrics().write_amplification()),
    ]);
    println!("{tbl}");
    note("The journal's extra writes also age the flash twice as fast — the cost compounds through GC and wear.");
}
