//! **E14 — Cooperating logs vs stacked logs**: the §2 pathology and the
//! §3 cure, measured end to end at the transaction interface.
//!
//! §2 of the paper names the stacked-log pathology: a log-structured
//! storage manager (WAL + page heap) running on a log-structured FTL
//! means **two garbage collectors that cannot see each other**. The FTL
//! copies WAL segments the manager already truncated, journal pages the
//! manager already replayed, and heap versions the manager already
//! superseded — because the block interface gives it no way to know.
//! §3's nameless interface dissolves the stack: the device chooses
//! placement, the manager holds [`PhysName`](requiem_iface::PhysName)
//! handles, GC migrations surface as `Migrated` upcalls that patch the
//! page table in RAM, checkpoints go down as native atomic batches
//! (no double-write journal), and every dead page or truncated WAL
//! segment is freed by exact name the moment it dies.
//!
//! The same seeded OLTP trace runs through both
//! [`StorageManager`] implementations on the same flash geometry:
//!
//! * **14a** — end-to-end write amplification (flash programs per
//!   *logical* page image) and the collector's copy traffic. Asserted:
//!   the cooperating-logs manager beats the stacked block manager.
//! * **14b** — where the time went: the probe bus decomposes both runs
//!   and blames every span a command spent stalled behind GC.
//! * **14c** — throughput across DB concurrency: the same sweep as E13,
//!   once per manager.
//! * **14d** — the identity anchor: QD-1 on the block manager replays
//!   today's serialized `execute()` bit-for-bit, so every difference in
//!   14a–c is *caused* by the interface, not by an engine fork.
//!
//! The JSON at the end feeds the determinism CI job.

use requiem_bench::{note, section};
use requiem_db::{
    CoopLogBackend, Database, DbBuilder, DbConfig, ExecConfig, ExecReport, GroupCommitPolicy,
    LegacyBackend, PersistenceBackend, PrefetchConfig, StorageManager,
};
use requiem_iface::nameless::NamelessConfig;
use requiem_sim::table::Align;
use requiem_sim::time::SimDuration;
use requiem_sim::{Cause, Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, ChannelTiming, Placement, SsdConfig};
use requiem_workload::oltp::{OltpConfig, OltpGen};
use requiem_workload::{oltp_inputs, run_oltp_closed_loop};

const SEED: u64 = 14;
const TXNS: u64 = 2400;
const DATA_PAGES: u64 = 1200;
const LOG_PAGES: u64 = 600;
const BUFFER_FRAMES: usize = 384;
const CHECKPOINT_EVERY: u64 = 300;
const QDS: [usize; 4] = [1, 2, 4, 8];

/// Two chips behind one ONFI-2 channel, no device buffer, and a data +
/// WAL footprint sized so the live set presses on the over-provisioning:
/// the regime where the FTL's collector actually has to copy, i.e. where
/// the stacked-log tax is paid.
fn pressured_device() -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 2,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

/// Both managers share this builder: only the backend constructor
/// differs, so 14a–c compare interfaces, not configurations.
fn builder() -> DbBuilder {
    DbConfig::builder()
        .data_pages(DATA_PAGES)
        .log_pages(LOG_PAGES)
        .buffer_frames(BUFFER_FRAMES)
        .checkpoint_every(CHECKPOINT_EVERY)
}

fn oltp(read_only_fraction: f64) -> OltpGen {
    OltpGen::new(
        OltpConfig {
            data_pages: DATA_PAGES,
            read_only_fraction,
            // near-uniform churn: hot-skewed updates die in the block
            // they were written to (free victims for any collector);
            // uniform updates age blocks into the live/dead mix that
            // makes a collector actually copy
            theta: 0.1,
            ..OltpConfig::default()
        },
        SEED,
    )
}

fn block_db() -> Database<LegacyBackend> {
    builder().build_legacy(pressured_device())
}

fn coop_db() -> Database<CoopLogBackend> {
    builder().build_coop(NamelessConfig::from(&pressured_device()))
}

/// Device+manager counters at one instant; runs report deltas over the
/// traced window so the identical initial load drops out of both sides.
#[derive(Clone, Copy)]
struct Snapshot {
    logical: u64,
    host_writes: u64,
    programs: u64,
    gc_runs: u64,
    gc_moved: u64,
    relocations: u64,
    log_trims: u64,
}

fn snapshot<M: StorageManager>(db: &Database<M>) -> Snapshot {
    let b = db.backend();
    let w = db.wal_backend().stats();
    Snapshot {
        // page images from the backend plus segment images from the WAL
        // port: the same logical-write total the fused interface counted
        logical: b.stats().logical_writes + w.logical_writes,
        host_writes: b.device_host_writes(),
        programs: b.device_programs(),
        gc_runs: b.device_gc_runs(),
        gc_moved: b.device_gc_moved(),
        relocations: b.relocations_patched(),
        log_trims: w.log_trims,
    }
}

struct ManagerRun {
    label: &'static str,
    report: ExecReport,
    logical: u64,
    host_writes: u64,
    programs: u64,
    gc_runs: u64,
    gc_moved: u64,
    relocations: u64,
    log_trims: u64,
    gc_stall_spans: u64,
    gc_stall: SimDuration,
    probe_json: String,
}

impl ManagerRun {
    /// Flash programs per logical page image: the paper's end-to-end
    /// write amplification, with the journal's extra copies and both
    /// collectors' traffic in the numerator.
    fn e2e_wa(&self) -> f64 {
        self.programs as f64 / self.logical.max(1) as f64
    }

    /// Programs per accepted host write: the device's own view, blind to
    /// interface-imposed copies above it.
    fn device_wa(&self) -> f64 {
        self.programs as f64 / self.host_writes.max(1) as f64
    }
}

/// One traced OLTP run: probe attached after load, counters reported as
/// deltas over the traced window.
fn run_traced<M: StorageManager>(
    label: &'static str,
    mut db: Database<M>,
    qd: usize,
    read_only_fraction: f64,
) -> ManagerRun {
    let probe = Probe::new();
    db.attach_probe(probe.clone());
    let before = snapshot(&db);
    let cfg = ExecConfig {
        concurrency: qd,
        prefetch: PrefetchConfig::off(),
        group: GroupCommitPolicy::batched(qd as u32),
    };
    let report = run_oltp_closed_loop(&mut db, &mut oltp(read_only_fraction), TXNS, &cfg);
    let after = snapshot(&db);
    let summary = probe.summary();
    let (mut spans, mut stall) = (0u64, 0u64);
    for ((_, cause), stat) in &summary.by_layer_cause {
        if *cause == Cause::GcStall {
            spans += stat.count;
            stall += stat.total.as_nanos();
        }
    }
    ManagerRun {
        label,
        report,
        logical: after.logical - before.logical,
        host_writes: after.host_writes - before.host_writes,
        programs: after.programs - before.programs,
        gc_runs: after.gc_runs - before.gc_runs,
        gc_moved: after.gc_moved - before.gc_moved,
        relocations: after.relocations - before.relocations,
        log_trims: after.log_trims - before.log_trims,
        gc_stall_spans: spans,
        gc_stall: SimDuration::from_nanos(stall),
        probe_json: summary.to_json(),
    }
}

fn main() {
    println!("# E14 — Cooperating logs: one collector instead of two");
    note("Same seeded OLTP trace, same flash geometry (1ch x 2chip onfi2, no buffer), two storage managers: the block-backed heap (WAL + journal + in-place pages over LBAs) and the cooperating-logs manager (nameless writes, Migrated upcalls patching PhysName handles, native atomic checkpoints, exact-name frees).");

    // ------------------------------------------------------------------
    section("14a. End-to-end write amplification (QD 8, 80% update mix)");
    let legacy = run_traced("block heap+WAL", block_db(), 8, 0.2);
    let coop = run_traced("cooperating logs", coop_db(), 8, 0.2);
    let mut tbl = Table::new([
        "manager",
        "TPS",
        "logical",
        "host writes",
        "programs",
        "e2e WA",
        "dev WA",
        "GC runs",
        "GC moved",
        "upcalls patched",
        "WAL trims",
    ])
    .align(0, Align::Left);
    for r in [&legacy, &coop] {
        tbl.row([
            r.label.to_string(),
            format!("{:.0}", r.report.tps),
            format!("{}", r.logical),
            format!("{}", r.host_writes),
            format!("{}", r.programs),
            format!("{:.2}", r.e2e_wa()),
            format!("{:.2}", r.device_wa()),
            format!("{}", r.gc_runs),
            format!("{}", r.gc_moved),
            format!("{}", r.relocations),
            format!("{}", r.log_trims),
        ]);
    }
    println!("{tbl}");
    assert!(
        (legacy.logical as i64 - coop.logical as i64).abs() * 20 < legacy.logical as i64,
        "the logical workload must be trace-determined and (near-)identical \
         across managers: {} vs {}",
        legacy.logical,
        coop.logical
    );
    assert!(
        coop.e2e_wa() < legacy.e2e_wa(),
        "cooperating logs must beat the stacked block manager on end-to-end \
         write amplification ({:.2} vs {:.2})",
        coop.e2e_wa(),
        legacy.e2e_wa()
    );
    assert!(
        legacy.gc_moved > 0,
        "the pressured device must make the block manager's FTL copy \
         (gc_moved = 0 means the experiment is not exercising the pathology)"
    );
    assert_eq!(
        legacy.relocations, 0,
        "the block interface cannot report a relocation"
    );
    assert!(
        coop.log_trims > 0,
        "checkpoint truncation must free WAL segments by exact name"
    );
    note("Same trace, same geometry. The block manager pays three times: the journal doubles every checkpoint page, the FTL's collector copies dead WAL and journal pages it cannot know are dead, and every copy is itself a program. The cooperating manager's numerator is just host writes plus the one collector's residual moves — and each of those moves is an upcall patch, not a host copy.");

    // ------------------------------------------------------------------
    section("14b. GC stall blame (probe bus, same runs)");
    let mut tbl = Table::new([
        "manager",
        "GC stall spans",
        "GC stall total",
        "stall/txn",
        "txn p99",
        "txn p99.9",
    ])
    .align(0, Align::Left);
    for r in [&legacy, &coop] {
        let mut all = r.report.read_only_latency.clone();
        all.merge(&r.report.update_latency);
        tbl.row([
            r.label.to_string(),
            format!("{}", r.gc_stall_spans),
            format!("{}", r.gc_stall),
            format!("{}", SimDuration::from_nanos(r.gc_stall.as_nanos() / TXNS)),
            format!("{}", SimDuration::from_nanos(all.p99())),
            format!("{}", SimDuration::from_nanos(all.quantile(0.999))),
        ]);
    }
    println!("{tbl}");
    assert!(
        coop.gc_stall < legacy.gc_stall,
        "one cooperating collector must stall foreground commands less than \
         two blind ones ({} vs {})",
        coop.gc_stall,
        legacy.gc_stall
    );
    assert!(
        coop.relocations > 0,
        "the traced run must exercise the upcall path end-to-end: device GC \
         moved pages and the page table was patched"
    );
    note("Every span a command spent waiting on a resource held by garbage collection, attributed on the probe bus. The block manager's collector works through dead-but-unTRIMmable WAL and journal pages, so foreground commands stall behind copies that exist only because the interface hid the liveness information.");

    // ------------------------------------------------------------------
    section("14c. Throughput vs DB concurrency (50/50 mix), both managers");
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new();
    let mut tbl = Table::new(["QD", "block TPS", "coop TPS", "coop/block"]);
    for &qd in &QDS {
        let b = run_traced("block", block_db(), qd, 0.5);
        let c = run_traced("coop", coop_db(), qd, 0.5);
        tbl.row([
            format!("{qd}"),
            format!("{:.0}", b.report.tps),
            format!("{:.0}", c.report.tps),
            format!("{:.2}x", c.report.tps / b.report.tps),
        ]);
        sweep.push((qd, b.report.tps, c.report.tps));
    }
    println!("{tbl}");
    note("Same executor, same trace, same geometry — the managers differ only in what crosses the interface. At this mix the foreground curves track each other: the journal's 2x checkpoint copies and the second collector's work ride the background class, so the stacked-log tax is paid in wear (14a: 1.36x the programs for the same trace) and in tail stalls (14b), not in this mix's throughput. The block interface hides the tax from the benchmark that only watches TPS.");

    // ------------------------------------------------------------------
    section("14d. Identity anchor: block manager at QD 1 == serialized execute()");
    let inputs = oltp_inputs(&mut oltp(0.5), 200);
    let mut serial = block_db();
    for t in &inputs {
        serial.execute(&t.accesses, t.log_bytes);
    }
    let mut conc = block_db();
    conc.run_concurrent(&inputs, &ExecConfig::serialized());
    let identical = conc.now() == serial.now()
        && conc.txn_latency() == serial.txn_latency()
        && conc.commit_latency() == serial.commit_latency()
        && conc.stats() == serial.stats()
        && conc.wal_backend().stats().log_forces == serial.wal_backend().stats().log_forces
        && conc.wal_backend().stats().log_bytes == serial.wal_backend().stats().log_bytes
        && conc.wal_backend().stats().log_trims == serial.wal_backend().stats().log_trims
        && conc.backend().stats().page_reads == serial.backend().stats().page_reads;
    let mut tbl = Table::new([
        "engine",
        "final clock",
        "commits",
        "WAL trims",
        "bit-identical",
    ])
    .align(0, Align::Left);
    tbl.row([
        "serialized execute()".to_string(),
        format!("{}", serial.now()),
        format!("{}", serial.stats().commits),
        format!("{}", serial.wal_backend().stats().log_trims),
        String::new(),
    ]);
    tbl.row([
        "run_concurrent QD 1".to_string(),
        format!("{}", conc.now()),
        format!("{}", conc.stats().commits),
        format!("{}", conc.wal_backend().stats().log_trims),
        format!("{identical}"),
    ]);
    println!("{tbl}");
    assert!(
        identical,
        "QD-1 on the block manager must replay the serialized engine bit-for-bit \
         (including the new checkpoint truncation path)"
    );
    note("The refactor's anchor: the block manager under the concurrent executor at QD 1 — checkpoint truncation included — is indistinguishable from the pre-refactor serialized engine. Everything 14a–c measured is caused by the interface, not by an engine fork.");

    // ------------------------------------------------------------------
    section("Summary (JSON)");
    note("Headline numbers plus both probes' per-(layer, cause) decomposition — the GC share lives under the GcStall cause.");
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(qd, b, c)| format!("{{\"qd\":{qd},\"block_tps\":{b:.1},\"coop_tps\":{c:.1}}}"))
        .collect();
    println!("```json");
    println!(
        "{{\"device\":\"1ch x 2chip onfi2, data {DATA_PAGES} + wal {LOG_PAGES}\",\"txns\":{TXNS},"
    );
    println!(
        "\"e2e_wa\":{{\"block\":{:.4},\"coop\":{:.4}}},\"device_wa\":{{\"block\":{:.4},\"coop\":{:.4}}},",
        legacy.e2e_wa(),
        coop.e2e_wa(),
        legacy.device_wa(),
        coop.device_wa()
    );
    let p999 = |r: &ManagerRun| {
        let mut all = r.report.read_only_latency.clone();
        all.merge(&r.report.update_latency);
        all.quantile(0.999)
    };
    println!(
        "\"qd8_heavy\":{{\"block_tps\":{:.1},\"coop_tps\":{:.1},\"block_p999_ns\":{},\"coop_p999_ns\":{}}},",
        legacy.report.tps,
        coop.report.tps,
        p999(&legacy),
        p999(&coop)
    );
    println!(
        "\"gc\":{{\"block_moved\":{},\"coop_moved\":{},\"block_stall_ns\":{},\"coop_stall_ns\":{},\"coop_upcalls_patched\":{}}},",
        legacy.gc_moved,
        coop.gc_moved,
        legacy.gc_stall.as_nanos(),
        coop.gc_stall.as_nanos(),
        coop.relocations
    );
    println!("\"sweep\":[{}],", sweep_json.join(","));
    println!("\"qd1_matches_serialized\":{identical},");
    println!("\"probe_block\":{},", legacy.probe_json);
    println!("\"probe_coop\":{}}}", coop.probe_json);
    println!("```");
}
