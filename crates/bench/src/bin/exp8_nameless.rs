//! **E8 — Principle P2**: the communication abstraction and nameless
//! writes.
//!
//! Three quantities the block interface hides:
//!
//! 1. **Mapping RAM** — a page-mapped FTL burns 8 B of controller RAM per
//!    page; DFTL trades RAM for flash traffic; a nameless device needs
//!    none (the host's own index carries the names).
//! 2. **Double log-structuring** — a log-structured host (LFS, LSM, or a
//!    log-structured database file) on top of a log-structured FTL cleans
//!    twice: host cleaning traffic is also device traffic, multiplying
//!    write amplification. (*"the management of log-structured files …
//!    is today handled both at the database level and within the FTL"*.)
//! 3. **Migration upcalls** — the price of namelessness, measured.

use requiem_bench::{modern_unbuffered, note, precondition, section};
use requiem_iface::device::{tag_churn, ChurnReport};
use requiem_iface::nameless::{NamelessConfig, NamelessSsd};
use requiem_sim::table::Align;
use requiem_sim::time::SimTime;
use requiem_sim::Table;
use requiem_ssd::{Lpn, Ssd, SsdConfig};

/// Host-side LFS over a block device at 75% live utilization, with greedy
/// host cleaning. Returns (host device-writes per user write, device WA).
fn run_lfs(cfg: &SsdConfig, use_trim: bool, seg_pages: u64) -> (f64, f64) {
    let mut ssd = Ssd::new(cfg.clone());
    let pages = ssd.capacity().exported_pages;
    let segments = pages / seg_pages;
    let live_target = (pages as f64 * 0.75) as u64;
    let mut seg_live = vec![0u64; segments as usize];
    let mut loc: std::collections::HashMap<u64, (u64, u64)> = Default::default();
    let mut where_is: std::collections::HashMap<(u64, u64), u64> = Default::default();
    let mut free_segs: std::collections::VecDeque<u64> = (0..segments).collect();
    let mut cur_seg = free_segs.pop_front().expect("segments");
    let mut cur_slot = 0u64;
    let mut t = SimTime::ZERO;
    let mut host_dev_writes = 0u64;
    let mut user = 0u64;
    let user_writes = 2 * pages;
    let append = |ssd: &mut Ssd,
                  t: &mut SimTime,
                  cur_seg: &mut u64,
                  cur_slot: &mut u64,
                  free_segs: &mut std::collections::VecDeque<u64>,
                  seg_live: &mut Vec<u64>,
                  loc: &mut std::collections::HashMap<u64, (u64, u64)>,
                  where_is: &mut std::collections::HashMap<(u64, u64), u64>,
                  host_dev_writes: &mut u64,
                  id: u64| {
        if let Some(prev) = loc.remove(&id) {
            seg_live[prev.0 as usize] -= 1;
            where_is.remove(&prev);
        }
        let lpn = *cur_seg * seg_pages + *cur_slot;
        let c = ssd.write(*t, Lpn(lpn)).expect("lfs write");
        *t = c.done;
        *host_dev_writes += 1;
        loc.insert(id, (*cur_seg, *cur_slot));
        where_is.insert((*cur_seg, *cur_slot), id);
        seg_live[*cur_seg as usize] += 1;
        *cur_slot += 1;
        if *cur_slot == seg_pages {
            *cur_seg = free_segs.pop_front().expect("host log out of segments");
            *cur_slot = 0;
        }
    };
    for id in 0..live_target {
        append(
            &mut ssd,
            &mut t,
            &mut cur_seg,
            &mut cur_slot,
            &mut free_segs,
            &mut seg_live,
            &mut loc,
            &mut where_is,
            &mut host_dev_writes,
            id,
        );
    }
    let fill_writes = host_dev_writes;
    let mut x = 3u64;
    while user < user_writes {
        while free_segs.len() < 4 {
            let victim = (0..segments)
                .filter(|&s| s != cur_seg && !free_segs.contains(&s))
                .min_by_key(|&s| seg_live[s as usize])
                .expect("victim");
            for slot in 0..seg_pages {
                if let Some(&id) = where_is.get(&(victim, slot)) {
                    let lpn = victim * seg_pages + slot;
                    let c = ssd.read(t, Lpn(lpn)).expect("lfs clean read");
                    t = c.done;
                    append(
                        &mut ssd,
                        &mut t,
                        &mut cur_seg,
                        &mut cur_slot,
                        &mut free_segs,
                        &mut seg_live,
                        &mut loc,
                        &mut where_is,
                        &mut host_dev_writes,
                        id,
                    );
                }
            }
            if use_trim {
                // coordinated layers: tell the FTL the segment is dead
                for slot in 0..seg_pages {
                    let c = ssd.trim(t, Lpn(victim * seg_pages + slot)).expect("trim");
                    t = c.done;
                }
            }
            seg_live[victim as usize] = 0;
            free_segs.push_back(victim);
        }
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        append(
            &mut ssd,
            &mut t,
            &mut cur_seg,
            &mut cur_slot,
            &mut free_segs,
            &mut seg_live,
            &mut loc,
            &mut where_is,
            &mut host_dev_writes,
            x % live_target,
        );
        user += 1;
    }
    let m = ssd.metrics();
    let host_per_user = (host_dev_writes - fill_writes) as f64 / user_writes as f64;
    (host_per_user, m.write_amplification())
}

fn main() {
    println!("# E8 — nameless writes and the double-log-structuring penalty");

    // ------------------------------------------------------------------
    section("Mapping-table controller RAM (computed from configuration)");
    let mut tbl = Table::new(["scheme", "mapping RAM", "per exported GiB"]).align(0, Align::Left);
    let base = SsdConfig::modern();
    let exported_gib = (base.total_luns() as u64 * base.flash.geometry.total_pages()) as f64
        * base.flash.geometry.page_size as f64
        / (1u64 << 30) as f64;
    for (name, cfg_bytes) in [
        ("page map", SsdConfig::modern().mapping_table_bytes()),
        (
            "block map",
            SsdConfig {
                ftl: requiem_ssd::FtlKind::BlockMap,
                ..SsdConfig::modern()
            }
            .mapping_table_bytes(),
        ),
        (
            "DFTL (64Ki CMT)",
            SsdConfig::modern_dftl(65536).mapping_table_bytes(),
        ),
        ("nameless", 0),
    ] {
        tbl.row([
            name.to_string(),
            format!("{} KiB", cfg_bytes / 1024),
            format!("{:.0} KiB/GiB", cfg_bytes as f64 / 1024.0 / exported_gib),
        ]);
    }
    println!("{tbl}");
    note("A real 512 GiB page-mapped drive needs ~512 MiB of mapping DRAM; the nameless interface moves naming into the index the database already maintains.");

    section("The other page-map cost DFTL attacks: the power-loss boot scan");
    let mut tbl = Table::new([
        "per-LUN blocks",
        "raw capacity",
        "pages scanned",
        "boot scan time",
    ]);
    for blocks in [64u32, 128, 256] {
        let mut cfg = modern_unbuffered();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 1;
        cfg.flash.geometry = requiem_flash::Geometry::new(2, blocks, 16, 4096);
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let mut t = SimTime::ZERO;
        for lpn in 0..pages {
            t = ssd.write(t, Lpn(lpn)).expect("fill").done;
        }
        let r = ssd.power_loss_rebuild(ssd.drain_time()).expect("rebuild");
        let raw = ssd.capacity().raw_pages * 4096 / (1 << 20);
        tbl.row([
            format!("{blocks}"),
            format!("{raw} MiB"),
            format!("{}", r.pages_scanned),
            format!("{}", r.duration),
        ]);
    }
    println!("{tbl}");
    note("The scan reads every programmed page's OOB area (LUN-parallel). Scaled to a 2012-era 256 GiB drive this is tens of seconds of boot time — the second reason (after RAM) vendors could not afford page maps, and another asymmetry the block interface cannot express.");

    // ------------------------------------------------------------------
    section("Random-overwrite churn: the same generic loop through each interface");
    note("One host loop (fill live set, rewrite random tags for 2 drive-fills, apply relocation upcalls) drives every device via the DeviceInterface trait — the interface is the only variable.");
    let mut tbl = Table::new([
        "device",
        "MB/s",
        "WA",
        "GC pages moved",
        "mapping RAM",
        "upcalls",
    ])
    .align(0, Align::Left);
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;

    fn churn_row(tbl: &mut Table, label: &str, r: ChurnReport) {
        tbl.row([
            label.to_string(),
            format!("{:.1}", r.throughput_mbs),
            format!("{:.2}", r.delta.write_amplification()),
            format!("{}", r.delta.gc_pages_moved),
            format!("{} KiB", r.delta.mapping_ram_bytes / 1024),
            if r.delta.upcalls_delivered == 0 {
                "-".to_string()
            } else {
                format!(
                    "{} ({:.3}/write)",
                    r.delta.upcalls_delivered,
                    r.delta.upcalls_delivered as f64 / r.rewrites as f64
                )
            },
        ]);
    }

    {
        let mut dev = Ssd::new(cfg.clone());
        let r = tag_churn(&mut dev, 1.0, 2, 5);
        churn_row(&mut tbl, "page-mapped FTL", r);
    }
    {
        let mut dev = NamelessSsd::new(NamelessConfig::from(&cfg));
        let r = tag_churn(&mut dev, 1.0, 2, 5);
        churn_row(&mut tbl, "nameless", r);
    }
    println!("{tbl}");
    note("Same flash, same GC machinery: throughput and WA match — the mapping table bought nothing this workload needed. The upcall rate is the entire protocol cost.");

    // ------------------------------------------------------------------
    section("Double log-structuring: host-side LFS over the FTL vs writing in place");
    note("Host LFS at 75% utilization: every user write appends to the host log; host cleaning copies live pages (each copy = device read + device write). The FTL underneath cleans too.");
    let mut tbl = Table::new([
        "design",
        "host writes to device / user write",
        "device WA",
        "end-to-end writes / user write",
    ])
    .align(0, Align::Left);

    // (a) in-place updates straight to the page-mapped FTL
    {
        let mut ssd = Ssd::new(cfg.clone());
        let pages = ssd.capacity().exported_pages;
        let t = precondition(&mut ssd, pages);
        let user_writes = 2 * pages;
        let mut x = 3u64;
        let mut t = t;
        for _ in 0..user_writes {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t = ssd.write(t, Lpn(x % pages)).expect("write").done;
        }
        let m = ssd.metrics();
        let host_per_user = (m.host_writes - pages) as f64 / user_writes as f64;
        let dev_wa = m.write_amplification();
        tbl.row([
            "in-place onto page FTL".to_string(),
            format!("{host_per_user:.2}"),
            format!("{dev_wa:.2}"),
            format!("{:.2}", host_per_user * dev_wa),
        ]);
    }
    // (b) host LFS, segments aligned to flash blocks, layers coordinated
    // via TRIM: the FTL's cleaner goes idle — one log, one cleaner
    {
        let (host_per_user, dev_wa) = run_lfs(&cfg, true, 64);
        tbl.row([
            "host LFS, block-aligned segments, TRIM".to_string(),
            format!("{host_per_user:.2}"),
            format!("{dev_wa:.2}"),
            format!("{:.2}", host_per_user * dev_wa),
        ]);
    }
    // (c) host LFS, aligned but no TRIM: sequential segment reuse still
    // lets the FTL infer death — alignment is an accidental protocol
    {
        let (host_per_user, dev_wa) = run_lfs(&cfg, false, 64);
        tbl.row([
            "host LFS, block-aligned segments, no TRIM".to_string(),
            format!("{host_per_user:.2}"),
            format!("{dev_wa:.2}"),
            format!("{:.2}", host_per_user * dev_wa),
        ]);
    }
    // (d) host LFS with segments misaligned to flash blocks and no TRIM:
    // the two cleaners thrash each other — the multiplicative penalty
    {
        let (host_per_user, dev_wa) = run_lfs(&cfg, false, 24);
        tbl.row([
            "host LFS, misaligned segments, no TRIM".to_string(),
            format!("{host_per_user:.2}"),
            format!("{dev_wa:.2}"),
            format!("{:.2}", host_per_user * dev_wa),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: uncoordinated layers multiply — the host cleaner's traffic is amplified again by the FTL's cleaner. Coordination (TRIM, or one shared log via the communication abstraction) collapses the product: 'the management of log-structured files is today handled both at the database level and within the FTL'.");
}
