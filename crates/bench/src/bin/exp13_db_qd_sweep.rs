//! **E13 — Database queue-depth sweep**: the paper's Figure-1
//! parallelism, measured at the *transaction* interface.
//!
//! E11 showed the queue-pair engine extracting device parallelism from
//! raw page commands. This experiment asks whether that parallelism
//! survives the trip up the host stack: an OLTP mix runs through the
//! completion-driven executor ([`requiem_db::Database::run_concurrent`])
//! over the full block stack (`BlockStackBackend` → `IoStack` →
//! queue pair → Figure-1 device), sweeping the number of in-flight
//! transactions. Four sections:
//!
//! * **13a** — txn throughput vs DB concurrency: monotone scaling 1 → 8
//!   (≥ 2× at the knee) as demand reads from independent transactions
//!   overlap on the four chips, with the shared group-commit force
//!   amortizing log writes. Asserted, not just claimed.
//! * **13b** — Myth 3 at the storage-manager interface: raising the
//!   write fraction drags the *read* tail up as demand reads queue
//!   behind steal writes and the GC the write stream provokes.
//! * **13c** — sequential-scan readahead: the prefetcher turns a page
//!   miss into a batch of successor reads; wins/losses are attributed
//!   on the probe bus, and per-class histograms combine via
//!   [`Histogram::merge`] without re-recording a single sample.
//! * **13d** — the QD-1 identity: concurrency 1 + prefetch off +
//!   immediate forces replays the serialized engine bit-for-bit.
//!
//! The probe JSON at the end feeds the determinism CI job.

use requiem_bench::{note, section};
use requiem_db::{
    BlockStackBackend, Database, DbBuilder, DbConfig, ExecConfig, ExecReport, GroupCommitPolicy,
    LegacyBackend, PersistenceBackend, PrefetchConfig,
};
use requiem_sim::table::Align;
use requiem_sim::time::SimDuration;
use requiem_sim::{Histogram, Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, ChannelTiming, Placement, SsdConfig};
use requiem_workload::oltp::{OltpConfig, OltpGen};
use requiem_workload::{oltp_inputs, run_oltp_closed_loop};

const SEED: u64 = 13;
const TXNS: u64 = 600;
const DATA_PAGES: u64 = 1024;
const LOG_PAGES: u64 = 512;
const BUFFER_FRAMES: usize = 512;
const QDS: [usize; 5] = [1, 2, 4, 8, 16];

/// The E11 device: four chips behind one shared ONFI-2 channel, no
/// device-side buffer — every unit of parallelism the DB extracts must
/// come from keeping independent commands in flight.
fn figure1_device() -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 4,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

/// Every section shares this builder: the knobs that must agree (pages,
/// frames, WAL medium) are stated once.
fn builder() -> DbBuilder {
    DbConfig::builder()
        .data_pages(DATA_PAGES)
        .log_pages(LOG_PAGES)
        .buffer_frames(BUFFER_FRAMES)
}

fn stack_db() -> Database<BlockStackBackend> {
    builder().build_stack(requiem_block::StackConfig::blk_mq(1), figure1_device())
}

fn oltp(read_only_fraction: f64) -> OltpGen {
    OltpGen::new(
        OltpConfig {
            data_pages: DATA_PAGES,
            read_only_fraction,
            ..OltpConfig::default()
        },
        SEED,
    )
}

struct SweepPoint {
    qd: usize,
    report: ExecReport,
    read_stall: SimDuration,
    commit_stall: SimDuration,
    page_reads: u64,
}

impl SweepPoint {
    /// Mean stall per demand page read — the Myth-3 interference metric:
    /// the probes are identical across write mixes, only the stall grows.
    fn mean_stall_per_read(&self) -> SimDuration {
        let reads = self.page_reads.max(1);
        SimDuration::from_nanos(self.read_stall.as_nanos() / reads)
    }
}

/// One closed-loop OLTP run at DB concurrency `qd` on a fresh device.
fn run_point(qd: usize, read_only_fraction: f64, probe: Option<&Probe>) -> SweepPoint {
    let mut db = stack_db();
    if let Some(p) = probe {
        db.attach_probe(p.clone());
    }
    let cfg = ExecConfig {
        concurrency: qd,
        prefetch: PrefetchConfig::off(),
        group: GroupCommitPolicy::batched(qd as u32),
    };
    let loaded_reads = db.backend().stats().page_reads;
    let report = run_oltp_closed_loop(&mut db, &mut oltp(read_only_fraction), TXNS, &cfg);
    SweepPoint {
        qd,
        report,
        read_stall: db.stats().read_stall,
        commit_stall: db.stats().commit_stall,
        page_reads: db.backend().stats().page_reads - loaded_reads,
    }
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let ro = p.report.read_only_latency.summary();
            let up = p.report.update_latency.summary();
            format!(
                "{{\"qd\":{},\"tps\":{:.1},\"forces\":{},\"mean_group\":{:.2},\"coalesced\":{},\"ro_p50_ns\":{},\"ro_p99_ns\":{},\"ro_p999_ns\":{},\"upd_p50_ns\":{},\"upd_p99_ns\":{},\"upd_p999_ns\":{}}}",
                p.qd,
                p.report.tps,
                p.report.forces,
                p.report.mean_group,
                p.report.coalesced,
                ro.p50,
                ro.p99,
                p.report.read_only_latency.quantile(0.999),
                up.p50,
                up.p99,
                p.report.update_latency.quantile(0.999)
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Sequential full-scan transactions: each reads `pages_per_txn`
/// consecutive pages, wrapping over the data region — the shape
/// readahead exists for.
fn scan_inputs(count: u64, pages_per_txn: u64) -> Vec<requiem_db::TxnInput> {
    (0..count)
        .map(|i| requiem_db::TxnInput {
            accesses: (0..pages_per_txn)
                .map(|j| {
                    let page = (i * pages_per_txn + j) % DATA_PAGES;
                    (page, (page % 16) as u16, false)
                })
                .collect(),
            log_bytes: 0,
        })
        .collect()
}

fn main() {
    println!("# E13 — DB queue-depth sweep over the completion-driven executor");
    note("Figure-1 device (4 chips, 1 shared ONFI-2 channel) behind the full block stack. DB concurrency = transactions kept in flight at the storage-manager interface.");

    // ------------------------------------------------------------------
    section("13a. OLTP throughput vs DB concurrency (50/50 mix, zipf 0.8)");
    let probe = Probe::new();
    let points: Vec<SweepPoint> = QDS
        .iter()
        .map(|&qd| {
            // probe the deepest point: the saturated regime's span mix
            let p = if qd == 16 { Some(&probe) } else { None };
            run_point(qd, 0.5, p)
        })
        .collect();
    let mut tbl = Table::new([
        "QD",
        "TPS",
        "speedup",
        "forces",
        "txns/force",
        "coalesced",
        "ro p99",
        "upd p99",
    ]);
    let base_tps = points[0].report.tps;
    for p in &points {
        tbl.row([
            format!("{}", p.qd),
            format!("{:.0}", p.report.tps),
            format!("{:.2}x", p.report.tps / base_tps),
            format!("{}", p.report.forces),
            format!("{:.1}", p.report.mean_group),
            format!("{}", p.report.coalesced),
            format!(
                "{}",
                SimDuration::from_nanos(p.report.read_only_latency.p99())
            ),
            format!("{}", SimDuration::from_nanos(p.report.update_latency.p99())),
        ]);
    }
    println!("{tbl}");
    for w in points.windows(2) {
        if w[1].qd <= 8 {
            assert!(
                w[1].report.tps > w[0].report.tps,
                "throughput must improve monotonically up to QD 8 (QD {} {:.0} vs QD {} {:.0})",
                w[0].qd,
                w[0].report.tps,
                w[1].qd,
                w[1].report.tps
            );
        }
    }
    let knee = points
        .iter()
        .find(|p| p.qd == 8)
        .map(|p| p.report.tps / base_tps)
        .unwrap_or(0.0);
    assert!(
        knee >= 2.0,
        "QD 8 must be at least 2x QD 1 (got {knee:.2}x)"
    );
    note("Independent transactions' demand reads overlap on the four chips while the shared force amortizes log writes — the same curve as E11's device-level sweep, measured in transactions.");

    // ------------------------------------------------------------------
    section("13b. Myth 3 at the storage-manager interface: write mix vs read stalls");
    let mut tbl = Table::new([
        "write mix",
        "TPS",
        "page reads",
        "mean stall/read",
        "txn p99",
        "commit stall",
    ])
    .align(0, Align::Left);
    let mut mix_points = Vec::new();
    for (label, ro_fraction) in [
        ("10% writes", 0.9),
        ("50% writes", 0.5),
        ("90% writes", 0.1),
    ] {
        let p = run_point(8, ro_fraction, None);
        tbl.row([
            label.to_string(),
            format!("{:.0}", p.report.tps),
            format!("{}", p.page_reads),
            format!("{}", p.mean_stall_per_read()),
            {
                // all txns, both classes, without re-recording a sample
                let mut all = p.report.read_only_latency.clone();
                all.merge(&p.report.update_latency);
                format!("{}", SimDuration::from_nanos(all.p99()))
            },
            format!("{}", p.commit_stall),
        ]);
        mix_points.push((label, p));
    }
    println!("{tbl}");
    let light = &mix_points[0].1;
    let heavy = &mix_points[2].1;
    assert!(
        heavy.mean_stall_per_read() > light.mean_stall_per_read(),
        "demand reads must stall longer per read as the write mix grows \
         (reads queue behind steals, programs, and the GC the writes provoke): \
         {} vs {}",
        heavy.mean_stall_per_read(),
        light.mean_stall_per_read()
    );
    note("The demand reads are the same zipfian probes in every row — only the surrounding write traffic changes. Their per-read stall inflates anyway: reads queue behind programs, steals, and multi-ms GC erases. That interference crosses the block interface silently; only the device knows why.");

    // ------------------------------------------------------------------
    section("13c. Sequential scan: readahead wins, merged histograms");
    let inputs = scan_inputs(200, 8);
    let mut rows = Vec::new();
    let mut merged_all = Histogram::new();
    let mut prefetch_json = String::new();
    for (label, prefetch) in [
        ("prefetch off", PrefetchConfig::off()),
        ("sequential K=4", PrefetchConfig::sequential(4)),
    ] {
        let mut db = stack_db();
        // one scanning transaction stream: without readahead every miss
        // is a full blocking read — the shape prefetching exists for
        let cfg = ExecConfig {
            concurrency: 1,
            prefetch,
            group: GroupCommitPolicy::immediate(),
        };
        let report = db.run_concurrent(&inputs, &cfg);
        // per-class histograms combine without re-recording samples
        let mut merged = report.read_only_latency.clone();
        merged.merge(&report.update_latency);
        assert_eq!(
            merged.count(),
            report.read_only_latency.count() + report.update_latency.count(),
            "merge must preserve every sample"
        );
        if label.starts_with("sequential") {
            merged_all = merged.clone();
            prefetch_json = format!(
                "{{\"issued\":{},\"wins\":{},\"losses\":{}}}",
                report.prefetch.issued, report.prefetch.wins, report.prefetch.losses
            );
        }
        rows.push((label, report, merged));
    }
    let mut tbl = Table::new([
        "readahead",
        "TPS",
        "issued",
        "wins",
        "losses",
        "all-txn p50",
        "all-txn p99",
    ])
    .align(0, Align::Left);
    for (label, report, merged) in &rows {
        tbl.row([
            label.to_string(),
            format!("{:.0}", report.tps),
            format!("{}", report.prefetch.issued),
            format!("{}", report.prefetch.wins),
            format!("{}", report.prefetch.losses),
            format!("{}", SimDuration::from_nanos(merged.p50())),
            format!("{}", SimDuration::from_nanos(merged.p99())),
        ]);
    }
    println!("{tbl}");
    let (_, off_report, _) = &rows[0];
    let (_, ra_report, _) = &rows[1];
    assert!(
        ra_report.prefetch.wins > 0,
        "sequential scan must produce readahead wins"
    );
    assert!(
        ra_report.tps > off_report.tps,
        "readahead must improve scan throughput ({:.0} vs {:.0})",
        ra_report.tps,
        off_report.tps
    );
    note("A miss submits the demand page and its successors as one batch; by the time the scan reaches page k+1 its read is already in flight (a *win*, attributed on the probe bus as prefetch-win/-loss statuses).");

    // ------------------------------------------------------------------
    section("13d. QD 1: completion-driven executor vs serialized engine");
    let inputs = oltp_inputs(&mut oltp(0.5), 200);
    let mut serial: Database<LegacyBackend> = builder().build_legacy(figure1_device());
    for t in &inputs {
        serial.execute(&t.accesses, t.log_bytes);
    }
    let mut conc: Database<LegacyBackend> = builder().build_legacy(figure1_device());
    conc.run_concurrent(&inputs, &ExecConfig::serialized());
    let identical = conc.now() == serial.now()
        && conc.txn_latency() == serial.txn_latency()
        && conc.commit_latency() == serial.commit_latency()
        && conc.stats() == serial.stats()
        && conc.wal_backend().stats().log_forces == serial.wal_backend().stats().log_forces
        && conc.wal_backend().stats().log_bytes == serial.wal_backend().stats().log_bytes
        && conc.backend().stats().page_reads == serial.backend().stats().page_reads;
    let mut tbl =
        Table::new(["engine", "final clock", "commits", "bit-identical"]).align(0, Align::Left);
    tbl.row([
        "serialized execute()".to_string(),
        format!("{}", serial.now()),
        format!("{}", serial.stats().commits),
        String::new(),
    ]);
    tbl.row([
        "run_concurrent QD 1".to_string(),
        format!("{}", conc.now()),
        format!("{}", conc.stats().commits),
        format!("{identical}"),
    ]);
    println!("{tbl}");
    assert!(
        identical,
        "concurrency 1 + prefetch off + immediate forces must replay the serialized engine bit-for-bit"
    );
    note("Every difference the sweep measured is therefore *caused* by overlap: same engine state, same device commands, different submission discipline.");

    // ------------------------------------------------------------------
    section("Sweep + probe summary (JSON)");
    note("Per-QD throughput/latency, the readahead outcome, and the probe bus's per-(layer, cause) decomposition of the QD-16 run — the group-wait vs shared-force split lives under wal/queue and wal/transfer.");
    println!("```json");
    println!(
        "{{\"device\":\"figure1 1ch x 4chip onfi2 via blk-mq stack\",\"txns\":{TXNS},\"knee_speedup_qd8\":{knee:.2},\"qd1_matches_serialized\":{identical},"
    );
    println!("\"sweep\":{},", sweep_json(&points));
    println!("\"prefetch_seq_k4\":{prefetch_json},");
    println!("\"merged_scan_p99_ns\":{},", merged_all.p99());
    println!("\"probe_qd16\":{}}}", probe.summary().to_json());
    println!("```");
}
