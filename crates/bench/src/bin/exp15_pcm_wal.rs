//! **E15 — The WAL medium split**: byte-granular PCM commit records vs
//! flash group commit, measured at the commit-latency CDF.
//!
//! §3's principle P1: synchronous patterns (the commit force) belong on
//! byte-addressable PCM on the memory bus; asynchronous patterns (page
//! streaming) belong on flash. The [`WalBackend`] split makes the WAL
//! medium a configuration knob, so the same engine, trace, and flash
//! data path can carry its commit records four ways:
//!
//! * **flash immediate** — every commit forces a 4 KiB segment write:
//!   today's conservative path.
//! * **flash batched** — group commit amortizes the segment write over
//!   up to QD commits: latency traded for throughput.
//! * **flash deadline** — an oversized group bounded by a 150 µs
//!   deadline: the tail-control variant.
//! * **pcm immediate** — the commit record persists byte-granularly on
//!   the DIMM ([`PcmWal`]); no batching needed, truncation free.
//!
//! Sections:
//!
//! * **15a** — TPS and commit-latency quantiles per policy × QD, and
//!   the **amortization crossover**: the first QD where flash group
//!   commit's throughput catches what PCM delivers with *no* queueing
//!   at QD 1. Batching can buy back the bandwidth, but only by paying
//!   queue depth and group-wait latency for it.
//! * **15b** — the commit CDF at QD 1: the medium gap no policy hides.
//! * **15c** — Start-Gap wear on the DIMM: the hot log head spreads
//!   across physical lines; the wear table is the endurance cost of
//!   putting the hottest bytes in the system on PCM.
//! * **15d** — probe decomposition: the force span class splits into
//!   `wal/transfer` (flash) vs `wal/pcm_persist` (PCM) on the bus.
//!
//! The JSON at the end feeds the determinism CI job.

use requiem_bench::{note, section};
use requiem_db::{
    Database, DbConfig, ExecReport, GroupCommitPolicy, LegacyBackend, PcmWalConfig, WalConfig,
};
use requiem_pcm::PcmTiming;
use requiem_sim::table::Align;
use requiem_sim::time::SimDuration;
use requiem_sim::{Cause, Histogram, Probe, Table};
use requiem_ssd::{ArrayShape, BufferConfig, ChannelTiming, Placement, SsdConfig};
use requiem_workload::oltp::{OltpConfig, OltpGen};
use requiem_workload::run_oltp_closed_loop;

const SEED: u64 = 15;
const TXNS: u64 = 600;
const DATA_PAGES: u64 = 1024;
const LOG_PAGES: u64 = 512;
const BUFFER_FRAMES: usize = 512;
const QDS: [usize; 5] = [1, 2, 4, 8, 16];
/// The deadline variant's tail bound.
const DEADLINE: SimDuration = SimDuration::from_micros(150);

/// Four chips behind one shared ONFI-2 channel, no device buffer — the
/// E13 device, so flash group commit has real parallelism to amortize
/// into.
fn device() -> SsdConfig {
    SsdConfig {
        shape: ArrayShape {
            channels: 1,
            chips_per_channel: 4,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

/// A 64 KiB log region: small enough that the circular log laps it many
/// times in one run, so Start-Gap has real churn to level.
fn pcm_wal() -> WalConfig {
    WalConfig::Pcm(PcmWalConfig {
        bytes: 64 * 1024,
        timing: PcmTiming::gen1(),
        gap_interval: 100,
    })
}

/// Commit-heavy mix: 80% updates, every transaction carries log bytes.
fn oltp() -> OltpGen {
    OltpGen::new(
        OltpConfig {
            data_pages: DATA_PAGES,
            read_only_fraction: 0.2,
            ..OltpConfig::default()
        },
        SEED,
    )
}

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    FlashImmediate,
    FlashBatched,
    FlashDeadline,
    PcmImmediate,
}

impl Policy {
    const ALL: [Policy; 4] = [
        Policy::FlashImmediate,
        Policy::FlashBatched,
        Policy::FlashDeadline,
        Policy::PcmImmediate,
    ];

    fn label(self) -> &'static str {
        match self {
            Policy::FlashImmediate => "flash immediate",
            Policy::FlashBatched => "flash batched",
            Policy::FlashDeadline => "flash deadline",
            Policy::PcmImmediate => "pcm immediate",
        }
    }

    fn key(self) -> &'static str {
        match self {
            Policy::FlashImmediate => "flash_immediate",
            Policy::FlashBatched => "flash_batched",
            Policy::FlashDeadline => "flash_deadline",
            Policy::PcmImmediate => "pcm_immediate",
        }
    }

    fn group(self, qd: usize) -> GroupCommitPolicy {
        match self {
            Policy::FlashImmediate | Policy::PcmImmediate => GroupCommitPolicy::immediate(),
            Policy::FlashBatched => GroupCommitPolicy::batched(qd as u32),
            // oversized group, bounded by the deadline (the executor
            // still forces an undersized group when the loop idles)
            Policy::FlashDeadline => GroupCommitPolicy {
                max_txns: 2 * qd.max(1) as u32,
                max_bytes: 0,
                max_wait: DEADLINE,
            },
        }
    }

    fn wal(self) -> WalConfig {
        match self {
            Policy::PcmImmediate => pcm_wal(),
            _ => WalConfig::Flash,
        }
    }
}

struct Run {
    policy: Policy,
    qd: usize,
    report: ExecReport,
    commit_latency: Histogram,
    db: Database<LegacyBackend>,
}

/// One closed-loop run of the trace under (policy, qd) on a fresh
/// device; optionally traced on the probe bus.
fn run(policy: Policy, qd: usize, probe: Option<&Probe>) -> Run {
    let b = DbConfig::builder()
        .data_pages(DATA_PAGES)
        .log_pages(LOG_PAGES)
        .buffer_frames(BUFFER_FRAMES)
        .group(policy.group(qd))
        .concurrency(qd)
        .wal(policy.wal());
    let mut db = b.build_legacy(device());
    if let Some(p) = probe {
        db.attach_probe(p.clone());
    }
    let report = run_oltp_closed_loop(&mut db, &mut oltp(), TXNS, &b.exec_config());
    let commit_latency = db.commit_latency().clone();
    Run {
        policy,
        qd,
        report,
        commit_latency,
        db,
    }
}

fn ns(v: u64) -> String {
    format!("{}", SimDuration::from_nanos(v))
}

fn main() {
    println!("# E15 — WAL medium split: PCM commit records vs flash group commit");
    note("Same engine, same seeded 80%-update OLTP trace, same flash data path (1ch x 4chip onfi2). Only the WAL medium and the group-commit policy vary: the synchronous path either batches onto flash segments or persists byte-granularly on the DIMM.");

    // ------------------------------------------------------------------
    section("15a. TPS and commit latency per policy x QD; the amortization crossover");
    let mut runs: Vec<Run> = Vec::new();
    for &qd in &QDS {
        for p in Policy::ALL {
            runs.push(run(p, qd, None));
        }
    }
    let mut tbl = Table::new([
        "QD",
        "policy",
        "TPS",
        "forces",
        "commit p50",
        "commit p99",
        "commit p99.9",
    ])
    .align(1, Align::Left);
    for r in &runs {
        tbl.row([
            format!("{}", r.qd),
            r.policy.label().to_string(),
            format!("{:.0}", r.report.tps),
            format!("{}", r.report.forces),
            ns(r.commit_latency.p50()),
            ns(r.commit_latency.p99()),
            ns(r.commit_latency.quantile(0.999)),
        ]);
    }
    println!("{tbl}");
    let get = |p: Policy, qd: usize| -> &Run {
        runs.iter()
            .find(|r| r.policy == p && r.qd == qd)
            .unwrap_or_else(|| unreachable!("run matrix covers every (policy, qd)"))
    };
    let pcm_qd1_tps = get(Policy::PcmImmediate, 1).report.tps;
    // the amortization crossover: the first QD where batching's
    // throughput gain outweighs the group-wait latency it charges —
    // i.e. where group commit starts earning its keep against the
    // immediate force at the same depth
    let crossover_qd = QDS
        .iter()
        .copied()
        .find(|&qd| {
            get(Policy::FlashBatched, qd).report.tps > get(Policy::FlashImmediate, qd).report.tps
        })
        .unwrap_or_else(|| panic!("batched group commit never out-ran the immediate force"));
    assert!(
        crossover_qd > 1,
        "at QD 1 a batch of one is an immediate force: the crossover must \
         cost at least one doubling of queue depth"
    );
    assert!(
        pcm_qd1_tps > get(Policy::FlashImmediate, 1).report.tps,
        "at QD 1 the PCM WAL must out-run the flash force it replaces"
    );
    let deepest = QDS[QDS.len() - 1];
    let batched_best = get(Policy::FlashBatched, deepest).report.tps;
    assert!(
        batched_best < pcm_qd1_tps,
        "the headline: flash group commit at QD {deepest} ({batched_best:.0} TPS) \
         must still trail the un-batched PCM WAL at QD 1 ({pcm_qd1_tps:.0} TPS)"
    );
    println!(
        "amortization crossover: batching starts paying at QD {crossover_qd}; \
         yet flash batched at QD {deepest} ({batched_best:.0} TPS) never catches \
         pcm-immediate@QD1 ({pcm_qd1_tps:.0} TPS)\n"
    );
    note("Group commit starts earning its keep one doubling of queue depth in — and then never catches the DIMM: sixteen transactions' worth of batching and parallelism still trails what byte-granular persistence delivers with no batching at all. Amortization shrinks the force's *bandwidth* cost; it cannot shrink the *latency* every commit still waits, and the closed loop pays that wait in throughput too.");

    // ------------------------------------------------------------------
    section("15b. Commit-latency CDF at QD 1 (no batching to hide behind)");
    let mut tbl = Table::new([
        "quantile",
        "flash immediate",
        "flash deadline",
        "pcm immediate",
    ])
    .align(0, Align::Left);
    for (label, q) in [
        ("p10", 0.10),
        ("p25", 0.25),
        ("p50", 0.50),
        ("p75", 0.75),
        ("p90", 0.90),
        ("p99", 0.99),
        ("p99.9", 0.999),
    ] {
        tbl.row([
            label.to_string(),
            ns(get(Policy::FlashImmediate, 1).commit_latency.quantile(q)),
            ns(get(Policy::FlashDeadline, 1).commit_latency.quantile(q)),
            ns(get(Policy::PcmImmediate, 1).commit_latency.quantile(q)),
        ]);
    }
    println!("{tbl}");
    let flash_p50 = get(Policy::FlashImmediate, 1).commit_latency.p50();
    let pcm_p50 = get(Policy::PcmImmediate, 1).commit_latency.p50();
    assert!(
        flash_p50 > 10 * pcm_p50,
        "the P1 medium gap must dominate the QD-1 CDF ({} vs {})",
        ns(flash_p50),
        ns(pcm_p50)
    );
    note("The whole CDF shifts by the medium gap: a byte-granular persist on the DIMM vs a 4 KiB segment program behind the ONFI channel. No policy knob recovers two orders of magnitude.");

    // ------------------------------------------------------------------
    section("15c. Start-Gap wear on the DIMM (QD 16 pcm run)");
    let wear = get(Policy::PcmImmediate, 16)
        .db
        .wal_backend()
        .wear()
        .unwrap_or_else(|| panic!("the pcm WAL must surface a wear snapshot"));
    let mut tbl = Table::new(["metric", "value"]).align(0, Align::Left);
    tbl.row(["logical lines".to_string(), format!("{}", wear.lines)]);
    tbl.row([
        "total line writes".to_string(),
        format!("{}", wear.total_line_writes),
    ]);
    tbl.row(["gap moves".to_string(), format!("{}", wear.gap_moves)]);
    tbl.row([
        "hottest line writes".to_string(),
        format!("{}", wear.max_line_writes),
    ]);
    tbl.row([
        "mean line writes".to_string(),
        format!("{:.2}", wear.mean_line_writes),
    ]);
    tbl.row(["max/mean skew".to_string(), format!("{:.2}", wear.skew())]);
    tbl.row([
        "gap overhead".to_string(),
        format!("{:.4}", wear.gap_overhead_ratio),
    ]);
    println!("{tbl}");
    // per-line wear, bucketed: how many physical lines absorbed how many
    // writes (the full vector is lines+1 slots long)
    let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &w in &wear.per_line_writes {
        *buckets.entry(w).or_insert(0) += 1;
    }
    let mut tbl = Table::new(["writes/line", "physical lines"]);
    for (w, n) in &buckets {
        tbl.row([format!("{w}"), format!("{n}")]);
    }
    println!("{tbl}");
    assert!(wear.total_line_writes > 0, "the wear table must be nonzero");
    assert!(
        wear.gap_moves > 0,
        "the circular log head must have driven Start-Gap rotations"
    );
    assert!(
        wear.skew() < 3.0,
        "Start-Gap must keep the hot log head spread across lines (skew {:.2})",
        wear.skew()
    );
    note("The commit stream is the hottest write traffic in the system, and it now lands on a medium with finite endurance. Start-Gap's slow rotation keeps max/mean wear bounded without a mapping table — the device-side discipline that makes P1 sustainable.");

    // ------------------------------------------------------------------
    section("15d. Probe decomposition: wal/transfer vs wal/pcm_persist (QD 8)");
    let flash_probe = Probe::new();
    run(Policy::FlashBatched, 8, Some(&flash_probe));
    let pcm_probe = Probe::new();
    run(Policy::PcmImmediate, 8, Some(&pcm_probe));
    let force_spans = |p: &Probe, cause: Cause| -> (u64, u64) {
        let s = p.summary();
        s.by_layer_cause
            .iter()
            .filter(|((layer, c), _)| *layer == requiem_sim::Layer::Wal && *c == cause)
            .map(|(_, stat)| (stat.count, stat.total.as_nanos()))
            .fold((0, 0), |(ac, at), (c, t)| (ac + c, at + t))
    };
    let (ft_n, ft_ns) = force_spans(&flash_probe, Cause::Transfer);
    let (fp_n, _) = force_spans(&flash_probe, Cause::PcmPersist);
    let (pt_n, _) = force_spans(&pcm_probe, Cause::Transfer);
    let (pp_n, pp_ns) = force_spans(&pcm_probe, Cause::PcmPersist);
    let mut tbl = Table::new([
        "run",
        "wal/transfer spans",
        "wal/pcm_persist spans",
        "force time",
    ])
    .align(0, Align::Left);
    tbl.row([
        "flash batched".to_string(),
        format!("{ft_n}"),
        format!("{fp_n}"),
        ns(ft_ns),
    ]);
    tbl.row([
        "pcm immediate".to_string(),
        format!("{pt_n}"),
        format!("{pp_n}"),
        ns(pp_ns),
    ]);
    println!("{tbl}");
    assert!(ft_n > 0 && fp_n == 0, "flash forces blame wal/transfer");
    assert!(pp_n > 0 && pt_n == 0, "pcm forces blame wal/pcm_persist");
    note("The same engine span ('log-force') carries a typed cause from the WAL backend, so the probe bus tells a flash segment transfer from a DIMM persist without either layer knowing about the other.");

    // ------------------------------------------------------------------
    section("Summary (JSON)");
    note("Per-(policy, QD) throughput and commit quantiles, the crossover, the wear table, and both traced probes.");
    let sweep_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"qd\":{},\"policy\":\"{}\",\"tps\":{:.1},\"forces\":{},\"commit_p50_ns\":{},\"commit_p99_ns\":{},\"commit_p999_ns\":{}}}",
                r.qd,
                r.policy.key(),
                r.report.tps,
                r.report.forces,
                r.commit_latency.p50(),
                r.commit_latency.p99(),
                r.commit_latency.quantile(0.999)
            )
        })
        .collect();
    let wear_buckets: Vec<String> = buckets
        .iter()
        .map(|(w, n)| format!("{{\"writes\":{w},\"lines\":{n}}}"))
        .collect();
    println!("```json");
    println!(
        "{{\"device\":\"1ch x 4chip onfi2, data {DATA_PAGES} + wal {LOG_PAGES}, pcm log 64KiB\",\"txns\":{TXNS},\"crossover_qd\":{crossover_qd},\"pcm_qd1_tps\":{pcm_qd1_tps:.1},\"flash_batched_qd{deepest}_tps\":{batched_best:.1},"
    );
    println!("\"sweep\":{},", format_args!("[{}]", sweep_json.join(",")));
    println!(
        "\"wear\":{{\"lines\":{},\"total_line_writes\":{},\"gap_moves\":{},\"max_line_writes\":{},\"mean_line_writes\":{:.4},\"skew\":{:.4},\"per_line_buckets\":[{}]}},",
        wear.lines,
        wear.total_line_writes,
        wear.gap_moves,
        wear.max_line_writes,
        wear.mean_line_writes,
        wear.skew(),
        wear_buckets.join(",")
    );
    println!("\"probe_flash_qd8\":{},", flash_probe.summary().to_json());
    println!("\"probe_pcm_qd8\":{}}}", pcm_probe.summary().to_json());
    println!("```");
}
