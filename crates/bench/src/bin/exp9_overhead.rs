//! **E9 — §2.2 + Principle P3**: the block layer's CPU overhead was
//! invisible on disks and is structural on SSDs.
//!
//! Three measurements:
//! 1. software share of end-to-end latency, per device generation;
//! 2. interrupt vs polling completions (the low-latency-networking
//!    technique P3 imports);
//! 3. single-queue lock contention vs per-core queues (blk-mq), scaling
//!    over cores — the change the paper notes was "under implementation".

use requiem_bench::{note, section};
use requiem_block::{
    BackendOp, CompletionMode, CpuCosts, Disk, DiskConfig, IoRequest, IoStack, NullDevice,
    QueueMode, StackConfig,
};
use requiem_sim::table::Align;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::Table;
use requiem_ssd::{BufferConfig, Ssd, SsdConfig};

fn main() {
    println!("# E9 — block-layer overhead: disk-era invisibility, SSD-era tax");

    // ------------------------------------------------------------------
    section("Software share of end-to-end latency (single core, legacy single-queue path)");
    let mut tbl = Table::new([
        "device",
        "op",
        "device time p50",
        "end-to-end p50",
        "software share",
    ])
    .align(0, Align::Left)
    .align(1, Align::Left);

    // disk, random reads
    let mut stack = IoStack::new(StackConfig::legacy(1), Disk::new(DiskConfig::hdd_7200()));
    let mut t = SimTime::ZERO;
    let mut s = 99u64;
    for _ in 0..64 {
        s = (s.wrapping_mul(999983)) % (1 << 20);
        t = stack.submit(t, 0, IoRequest::read(s)).done;
    }
    tbl.row([
        "hdd-7200".to_string(),
        "random read".to_string(),
        format!(
            "{}",
            SimDuration::from_nanos(stack.latency().p50()) - stack.config().cpu.per_io_interrupt()
        ),
        format!("{}", SimDuration::from_nanos(stack.latency().p50())),
        format!("{:.2}%", stack.software_share() * 100.0),
    ]);

    // ssd, reads (unbuffered) and buffered writes
    for (label, op, buffered) in [
        ("flash-ssd", BackendOp::Read, false),
        ("flash-ssd (buffered)", BackendOp::Write, true),
    ] {
        let mut cfg = SsdConfig::modern();
        if !buffered {
            cfg.buffer = BufferConfig { capacity_pages: 0 };
        }
        let mut stack = IoStack::new(StackConfig::legacy(1), Ssd::new(cfg));
        // precondition some pages for reads
        let mut t = SimTime::ZERO;
        for lpn in 0..64u64 {
            t = stack
                .backend_mut()
                .write(t, requiem_ssd::Lpn(lpn))
                .expect("precondition")
                .done;
        }
        let mut last = stack.backend().drain_time();
        for lpn in 0..64u64 {
            last = stack.submit(last, 0, IoRequest::new(op, lpn)).done;
        }
        tbl.row([
            label.to_string(),
            format!("{op:?}").to_lowercase(),
            "-".to_string(),
            format!("{}", SimDuration::from_nanos(stack.latency().p50())),
            format!("{:.1}%", stack.software_share() * 100.0),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: on a 10ms disk the multi-µs software path is noise (<0.1%); on a 10µs buffered SSD write it is most of the latency — 'SSDs are no longer the bottleneck in terms of latency'.");

    // ------------------------------------------------------------------
    section("Disk-era vs streamlined path costs (per-I/O CPU time)");
    let mut tbl =
        Table::new(["path", "interrupt completions", "polling completions"]).align(0, Align::Left);
    for (name, c) in [
        ("disk-era (2.6-like)", CpuCosts::disk_era()),
        ("streamlined (blk-mq-like)", CpuCosts::streamlined()),
    ] {
        tbl.row([
            name.to_string(),
            format!("{}", c.per_io_interrupt()),
            format!("{}", c.per_io_polling()),
        ]);
    }
    println!("{tbl}");

    // ------------------------------------------------------------------
    section("Interrupt vs polling on a fast device (buffered writes, streamlined path)");
    let mut tbl = Table::new([
        "completion mode",
        "p50 latency",
        "IOPS (1 core)",
        "CPU per IO",
    ])
    .align(0, Align::Left);
    for mode in [CompletionMode::Interrupt, CompletionMode::Polling] {
        let cfg = StackConfig {
            completion: mode,
            ..StackConfig::blk_mq(1)
        };
        let mut stack = IoStack::new(cfg, Ssd::new(SsdConfig::modern()));
        let r = stack.run_per_core_loop(256, BackendOp::Write, |_, i| i % 2048, SimTime::ZERO);
        let cpu = match mode {
            CompletionMode::Interrupt => stack.config().cpu.per_io_interrupt(),
            CompletionMode::Polling => {
                stack.config().cpu.per_io_polling() + SimDuration::from_nanos(stack.latency().p50())
            }
        };
        tbl.row([
            format!("{mode:?}"),
            format!("{}", SimDuration::from_nanos(r.latency.p50())),
            format!("{:.0}", r.iops),
            format!("{cpu}"),
        ]);
    }
    println!("{tbl}");
    note("Polling removes the IRQ + context switch from the latency path and burns a core instead — the trade the networking community made first.");

    // ------------------------------------------------------------------
    section("Single queue vs per-core queues over cores (5µs null device, disk-era lock costs)");
    let mut tbl = Table::new(["cores", "single-queue IOPS", "multi-queue IOPS", "MQ/SQ"]);
    for cores in [1u32, 2, 4, 8, 16] {
        let dev = || NullDevice {
            latency: SimDuration::from_micros(5),
            pages: 1 << 20,
        };
        let mk = |mode| StackConfig {
            queue_mode: mode,
            completion: CompletionMode::Interrupt,
            cores,
            cpu: CpuCosts::disk_era(),
        };
        let mut sq = IoStack::new(mk(QueueMode::Single), dev());
        let r_sq = sq.run_per_core_loop(
            256,
            BackendOp::Write,
            |c, i| (c as u64) * 4096 + i,
            SimTime::ZERO,
        );
        let mut mq = IoStack::new(mk(QueueMode::PerCore), dev());
        let r_mq = mq.run_per_core_loop(
            256,
            BackendOp::Write,
            |c, i| (c as u64) * 4096 + i,
            SimTime::ZERO,
        );
        tbl.row([
            format!("{cores}"),
            format!("{:.0}", r_sq.iops),
            format!("{:.0}", r_mq.iops),
            format!("{:.2}x", r_mq.iops / r_sq.iops),
        ]);
    }
    println!("{tbl}");
    note("Expected shape: identical at 1 core; the shared queue's lock saturates around 1/lock-hold-time IOPS while per-core queues keep scaling — the blk-mq result.");
}
