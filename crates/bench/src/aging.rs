//! **E16 core** — steady-state aging & GC-debt campaign.
//!
//! Every other experiment in this workspace runs on a *young* device, so
//! the garbage-collection tax it measures is a lower bound (the paper's
//! Myth 2 is about what happens *later*). This module preconditions a
//! device to full and then drives it through a seeded multi-phase
//! workload long enough for write amplification to plateau:
//!
//! 1. **fill** — sequential write of every exported page (device maps
//!    100 % of its LBA space; free blocks sink to the GC threshold),
//! 2. **overwrite** — zipfian random overwrites (θ = 0.9), the
//!    locality-destroying phase that provokes steady-state GC,
//! 3. **mixed** — a 50/50 read/write OLTP-ish phase on the aged device,
//!    where reads queue behind the GC the write stream provokes.
//!
//! The campaign sweeps {page-mapped, hybrid} FTL × {greedy,
//! cost-benefit} GC × {7 %, 28 %} over-provisioning and samples, every
//! window of operations: windowed and cumulative write amplification,
//! the free-block pool, **GC debt** (the per-LUN free-block deficit
//! relative to the freshly-preconditioned pool, summed — the share of
//! the OP cushion the collector has burned and not won back), and the
//! window's p99/p99.9 latency.
//!
//! Everything is virtual-time deterministic: the binary's stdout is
//! double-run diffed in CI (short preset) and the full trajectory is
//! checked in as `BENCH_exp16.json`.

use requiem_sim::time::SimTime;
use requiem_sim::{Histogram, IoRequest, SimRng};
use requiem_ssd::{
    ArrayShape, BufferConfig, ChannelTiming, FtlKind, GcPolicyKind, Placement, QueuePair, Ssd,
    SsdConfig,
};
use requiem_workload::driver::IoMix;
use requiem_workload::pattern::{AddressPattern, Pattern};

/// Base seed: every per-chunk RNG derives from this plus the chunk index.
pub const SEED: u64 = 16;

/// Campaign scale: the short preset exists so CI can double-run the
/// binary in seconds; the full preset is what `BENCH_exp16.json` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgingPreset {
    /// Operations per sampling window.
    pub window: u64,
    /// Windows of zipfian overwrite after the fill.
    pub overwrite_windows: u64,
    /// Windows of mixed read/write traffic after the overwrites.
    pub mixed_windows: u64,
    /// Closed-loop queue depth.
    pub queue_depth: usize,
}

impl AgingPreset {
    /// Full campaign (the checked-in trajectory).
    pub fn full() -> Self {
        AgingPreset {
            window: 4096,
            overwrite_windows: 24,
            mixed_windows: 12,
            queue_depth: 8,
        }
    }

    /// CI preset: same shape, small enough to double-run in seconds.
    pub fn short() -> Self {
        AgingPreset {
            window: 512,
            overwrite_windows: 6,
            mixed_windows: 4,
            queue_depth: 4,
        }
    }
}

/// One corner of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingConfig {
    /// FTL mapping scheme.
    pub ftl: FtlKind,
    /// GC victim-selection policy.
    pub gc: GcPolicyKind,
    /// Over-provisioning ratio.
    pub op_ratio: f64,
}

impl AgingConfig {
    /// Stable label, used in tables and JSON.
    pub fn label(&self) -> String {
        let ftl = match self.ftl {
            FtlKind::PageMap => "page",
            FtlKind::Hybrid { .. } => "hybrid",
            _ => "other",
        };
        let gc = match self.gc {
            GcPolicyKind::Greedy => "greedy",
            GcPolicyKind::CostBenefit => "costben",
        };
        format!("{ftl}/{gc}/op{:.0}%", self.op_ratio * 100.0)
    }
}

/// The eight-corner sweep matrix, in deterministic order.
pub fn matrix() -> Vec<AgingConfig> {
    let mut out = Vec::new();
    for ftl in [FtlKind::PageMap, FtlKind::Hybrid { log_blocks: 8 }] {
        for gc in [GcPolicyKind::Greedy, GcPolicyKind::CostBenefit] {
            for op_ratio in [0.07, 0.28] {
                out.push(AgingConfig {
                    ftl: ftl.clone(),
                    gc,
                    op_ratio,
                });
            }
        }
    }
    out
}

/// The aging device: 2 channels × 2 chips of small-block flash so the
/// fill phase is cheap and GC pressure arrives within the run. No write
/// buffer — every host write reaches flash and is counted.
pub fn device(c: &AgingConfig) -> SsdConfig {
    let mut cfg = SsdConfig {
        shape: ArrayShape {
            channels: 2,
            chips_per_channel: 2,
            luns_per_chip: 1,
        },
        channel: ChannelTiming::onfi2(),
        placement: Placement::RoundRobin,
        buffer: BufferConfig { capacity_pages: 0 },
        ftl: c.ftl.clone(),
        op_ratio: c.op_ratio,
        ..SsdConfig::modern()
    };
    // 128 small blocks per LUN (2 planes × 64): the same ratio that lets
    // the BAST hybrid's 8 log blocks fit inside a 7 % OP share, while
    // keeping the fill phase cheap.
    cfg.flash.geometry = requiem_flash::Geometry::new(2, 64, 16, 4096);
    cfg.gc.policy = c.gc;
    cfg
}

/// One sampled point of an aging trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingPoint {
    /// Phase name ("overwrite" or "mixed"); the fill is not sampled.
    pub phase: &'static str,
    /// Host operations completed since the fill ended.
    pub ops: u64,
    /// Write amplification over this window alone.
    pub wa_window: f64,
    /// Cumulative write amplification since the fill ended.
    pub wa_cum: f64,
    /// Free blocks across all LUNs at the window edge.
    pub free_blocks: u32,
    /// GC debt: Σ per LUN of max(0, post-fill free − free now) — the
    /// consumed share of the OP cushion the collector owes back.
    pub gc_debt: u32,
    /// GC invocations during this window.
    pub gc_runs: u64,
    /// Full + switch merges during this window (hybrid's reclaim path).
    pub merges: u64,
    /// Window p99 latency (ns).
    pub p99_ns: u64,
    /// Window p99.9 latency (ns).
    pub p999_ns: u64,
    /// Window throughput (virtual-time IOPS).
    pub iops: f64,
}

/// A full trajectory for one matrix corner.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingRun {
    /// The corner.
    pub config: AgingConfig,
    /// Exported pages (the working-set span).
    pub exported_pages: u64,
    /// Sampled trajectory, fill excluded.
    pub points: Vec<AgingPoint>,
    /// Cumulative WA at the end of the run (fill excluded).
    pub final_wa: f64,
    /// If the device went insolvent (a write found no usable space —
    /// the hybrid merge-storm failure mode on thin OP), the aged-phase
    /// operation count at which it happened.
    pub insolvent_at: Option<u64>,
    /// Steady-state plateau WA (mean over the plateau tail), if reached.
    pub plateau_wa: Option<f64>,
    /// Peak GC debt observed at any window edge.
    pub peak_gc_debt: u32,
    /// Total GC runs over the aged phases.
    pub gc_runs: u64,
    /// Total merges over the aged phases.
    pub merges: u64,
}

/// Counters snapshotted at window edges to form deltas.
#[derive(Debug, Clone, Copy, Default)]
struct Snap {
    host_writes: u64,
    programs: u64,
    gc_runs: u64,
    merges: u64,
}

fn snap(ssd: &Ssd) -> Snap {
    let m = ssd.metrics();
    Snap {
        host_writes: m.host_writes,
        programs: m.flash_programs.total(),
        gc_runs: m.gc_runs,
        merges: m.merges_full + m.merges_switch,
    }
}

/// Free-block total and GC debt. Debt is the per-LUN free-block deficit
/// relative to the freshly-preconditioned pool (`baseline`), summed: how
/// much of its OP cushion the device has burned and the collector has
/// not yet won back. A steady-state collector holds debt flat; a losing
/// one (the hybrid merge storm) rides it to insolvency.
fn debt(ssd: &Ssd, baseline: &[u32]) -> (u32, u32) {
    let per_lun = ssd.free_blocks_per_lun();
    let free: u32 = per_lun.iter().sum();
    let debt = per_lun
        .iter()
        .zip(baseline)
        .map(|(&f, &b)| b.saturating_sub(f))
        .sum::<u32>();
    (free, debt)
}

/// One chunk of the closed loop: up to `ops` operations at `queue_depth`
/// in flight, continuing the clock from `start`.
///
/// Unlike [`requiem_workload::driver::run_closed_loop`], an I/O failure
/// is not a panic but a first-class outcome: a hybrid FTL on thin
/// over-provisioning can genuinely run a LUN out of usable space under
/// sustained random overwrite (the merge-storm insolvency this
/// experiment exists to measure). On failure the chunk reports how many
/// operations it completed before the device went insolvent.
struct Chunk {
    latency: Histogram,
    end: SimTime,
    completed: u64,
    insolvent: bool,
}

fn run_chunk(
    ssd: &mut Ssd,
    pattern: &mut AddressPattern,
    mix: IoMix,
    queue_depth: usize,
    ops: u64,
    seed: u64,
    start: SimTime,
) -> Chunk {
    let mut rng = SimRng::from_seed(seed).derive("driver-mix");
    let mut latency = Histogram::new();
    let mut qp = QueuePair::new(queue_depth);
    let mut in_flight = 0usize;
    let mut issued = 0u64;
    let mut last_done = start;
    let mut insolvent = false;

    while issued < ops {
        let now = if in_flight >= queue_depth {
            let c = qp.pop().expect("completions outstanding");
            latency.record_duration(c.latency());
            last_done = last_done.max(c.done);
            in_flight -= 1;
            c.done
        } else {
            start
        };
        let lba = pattern.next_addr();
        let req = if rng.chance(mix.read_fraction) {
            IoRequest::read(lba)
        } else {
            IoRequest::write(lba)
        };
        if qp.submit(ssd, now, req).is_err() {
            insolvent = true;
            break;
        }
        in_flight += 1;
        issued += 1;
    }
    while let Some(c) = qp.pop() {
        latency.record_duration(c.latency());
        last_done = last_done.max(c.done);
    }
    Chunk {
        latency,
        end: last_done,
        completed: issued,
        insolvent,
    }
}

/// Detect a WA plateau: the run reached steady state when the last
/// `tail` overwrite-phase windows all sit within ±`band` (relative) of
/// their mean. Returns that mean.
pub fn plateau(points: &[AgingPoint], tail: usize, band: f64) -> Option<f64> {
    let over: Vec<&AgingPoint> = points.iter().filter(|p| p.phase == "overwrite").collect();
    if over.len() < tail || tail == 0 {
        return None;
    }
    let last = &over[over.len() - tail..];
    let mean = last.iter().map(|p| p.wa_window).sum::<f64>() / tail as f64;
    if mean <= 0.0 {
        return None;
    }
    let ok = last
        .iter()
        .all(|p| ((p.wa_window - mean) / mean).abs() <= band);
    ok.then_some(mean)
}

/// Run one matrix corner to completion.
pub fn run_corner(c: &AgingConfig, preset: &AgingPreset) -> AgingRun {
    let mut ssd = Ssd::new(device(c));
    let pages = ssd.capacity().exported_pages;

    // Phase 1: sequential fill — precondition the device to 100 % mapped.
    // Not sampled: WA during the fill is 1.0 by construction.
    let fill = run_chunk(
        &mut ssd,
        &mut AddressPattern::new(Pattern::Sequential, pages, SEED),
        IoMix::write_only(),
        preset.queue_depth,
        pages,
        SEED,
        SimTime::ZERO,
    );
    assert!(!fill.insolvent, "sequential fill must fit the LBA space");
    let mut t = fill.end;
    // debt reference: the free pool of the freshly-preconditioned device
    let baseline_free = ssd.free_blocks_per_lun();

    // Aged phases share one zipfian overwrite stream and one mixed
    // stream; each window is a chunked closed loop continuing the clock.
    let mut over_pat = AddressPattern::new(Pattern::Zipfian { theta: 0.9 }, pages, SEED ^ 0xA5);
    let mut mixed_pat = AddressPattern::new(Pattern::Zipfian { theta: 0.99 }, pages, SEED ^ 0x5A);

    let base = snap(&ssd);
    let mut prev = base;
    let mut points = Vec::new();
    let mut ops_done = 0u64;
    let mut peak_debt = 0u32;

    let mut insolvent_at = None;
    let phases: [(&'static str, u64); 2] = [
        ("overwrite", preset.overwrite_windows),
        ("mixed", preset.mixed_windows),
    ];
    'campaign: for (phase, windows) in phases {
        for w in 0..windows {
            let (pattern, mix) = match phase {
                "overwrite" => (&mut over_pat, IoMix::write_only()),
                _ => (&mut mixed_pat, IoMix::mixed(0.5)),
            };
            let chunk = run_chunk(
                &mut ssd,
                pattern,
                mix,
                preset.queue_depth,
                preset.window,
                SEED.wrapping_add(w * 31).wrapping_add(ops_done),
                t,
            );
            let makespan = chunk.end.since(t);
            t = chunk.end;
            ops_done += chunk.completed;

            let cur = snap(&ssd);
            let dw = cur.host_writes - prev.host_writes;
            let dp = cur.programs - prev.programs;
            let cw = cur.host_writes - base.host_writes;
            let cp = cur.programs - base.programs;
            let (free, gc_debt) = debt(&ssd, &baseline_free);
            peak_debt = peak_debt.max(gc_debt);
            points.push(AgingPoint {
                phase,
                ops: ops_done,
                wa_window: if dw == 0 { 0.0 } else { dp as f64 / dw as f64 },
                wa_cum: if cw == 0 { 0.0 } else { cp as f64 / cw as f64 },
                free_blocks: free,
                gc_debt,
                gc_runs: cur.gc_runs - prev.gc_runs,
                merges: cur.merges - prev.merges,
                p99_ns: chunk.latency.p99(),
                p999_ns: chunk.latency.quantile(0.999),
                iops: chunk.completed as f64 / makespan.as_secs_f64().max(1e-12),
            });
            prev = cur;
            if chunk.insolvent {
                insolvent_at = Some(ops_done);
                break 'campaign;
            }
        }
    }

    let end = snap(&ssd);
    let cw = end.host_writes - base.host_writes;
    let cp = end.programs - base.programs;
    AgingRun {
        config: c.clone(),
        exported_pages: pages,
        final_wa: if cw == 0 { 0.0 } else { cp as f64 / cw as f64 },
        insolvent_at,
        plateau_wa: plateau(&points, 4, 0.25),
        peak_gc_debt: peak_debt,
        gc_runs: end.gc_runs - base.gc_runs,
        merges: end.merges - base.merges,
        points,
    }
}

/// Run the whole campaign in matrix order.
pub fn run_campaign(preset: &AgingPreset) -> Vec<AgingRun> {
    matrix().iter().map(|c| run_corner(c, preset)).collect()
}

/// Hand-rolled JSON for one run (byte-stable across runs and platforms:
/// floats printed with fixed precision).
pub fn run_json(r: &AgingRun) -> String {
    let mut pts = String::new();
    for (i, p) in r.points.iter().enumerate() {
        if i > 0 {
            pts.push(',');
        }
        pts.push_str(&format!(
            "{{\"phase\":\"{}\",\"ops\":{},\"wa_window\":{:.3},\"wa_cum\":{:.3},\
             \"free_blocks\":{},\"gc_debt\":{},\"gc_runs\":{},\"merges\":{},\
             \"p99_ns\":{},\"p999_ns\":{},\"iops\":{:.0}}}",
            p.phase,
            p.ops,
            p.wa_window,
            p.wa_cum,
            p.free_blocks,
            p.gc_debt,
            p.gc_runs,
            p.merges,
            p.p99_ns,
            p.p999_ns,
            p.iops
        ));
    }
    let plateau = match r.plateau_wa {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    };
    let insolvent = match r.insolvent_at {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"config\":\"{}\",\"exported_pages\":{},\"final_wa\":{:.3},\
         \"plateau_wa\":{plateau},\"insolvent_at\":{insolvent},\
         \"peak_gc_debt\":{},\"gc_runs\":{},\"merges\":{},\
         \"trajectory\":[{pts}]}}",
        r.config.label(),
        r.exported_pages,
        r.final_wa,
        r.peak_gc_debt,
        r.gc_runs,
        r.merges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_the_eight_corner_sweep() {
        let m = matrix();
        assert_eq!(m.len(), 8);
        let labels: Vec<String> = m.iter().map(AgingConfig::label).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup, "matrix labels must be unique");
        assert_eq!(labels[0], "page/greedy/op7%");
        assert_eq!(labels[7], "hybrid/costben/op28%");
    }

    #[test]
    fn plateau_accepts_flat_tails_and_rejects_ramps() {
        let mk = |wa: &[f64]| -> Vec<AgingPoint> {
            wa.iter()
                .map(|&w| AgingPoint {
                    phase: "overwrite",
                    ops: 0,
                    wa_window: w,
                    wa_cum: w,
                    free_blocks: 0,
                    gc_debt: 0,
                    gc_runs: 0,
                    merges: 0,
                    p99_ns: 0,
                    p999_ns: 0,
                    iops: 0.0,
                })
                .collect()
        };
        let flat = mk(&[1.0, 2.0, 3.0, 3.1, 2.9, 3.0]);
        assert!(plateau(&flat, 4, 0.25).is_some());
        let ramp = mk(&[1.0, 1.5, 2.0, 3.0, 4.5, 7.0]);
        assert!(plateau(&ramp, 4, 0.25).is_none());
    }
}
