//! Shared helpers for the experiment binaries.
//!
//! Each `expN_*` binary regenerates one figure or quantitative claim of
//! the paper (see `DESIGN.md` §3 for the index) and prints GitHub-
//! flavoured markdown so `EXPERIMENTS.md` can be refreshed by copy-paste.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;

use requiem_sim::time::SimTime;
use requiem_ssd::{BufferConfig, Lpn, Ssd, SsdConfig};
use requiem_workload::driver::{run_closed_loop, DriverReport, IoMix};
use requiem_workload::pattern::{AddressPattern, Pattern};

/// Print a section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

/// Print a sub-note line.
pub fn note(text: &str) {
    println!("_{text}_\n");
}

/// The modern device without its write buffer (for experiments isolating
/// the flash path).
pub fn modern_unbuffered() -> SsdConfig {
    SsdConfig {
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

/// Sequentially fill the first `pages` LPNs; returns the drain time so a
/// following measurement starts on a quiet device.
pub fn precondition(ssd: &mut Ssd, pages: u64) -> SimTime {
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        let c = ssd.write(t, Lpn(lpn)).expect("precondition write");
        t = c.done;
    }
    ssd.drain_time().max(t)
}

/// Run a simple measurement: `ops` operations of `mix` with `pattern`
/// over `span` pages at queue depth `qd`, starting at `start`.
#[allow(clippy::too_many_arguments)] // experiment helper mirrors the driver signature
pub fn measure(
    ssd: &mut Ssd,
    pattern: Pattern,
    span: u64,
    mix: IoMix,
    qd: usize,
    ops: u64,
    seed: u64,
    start: SimTime,
) -> DriverReport {
    let mut pat = AddressPattern::new(pattern, span, seed);
    run_closed_loop(ssd, &mut pat, mix, qd, ops, seed, start)
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    requiem_sim::time::SimDuration::from_nanos(ns).to_string()
}

/// Format a ratio as `N.NNx`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precondition_and_measure_smoke() {
        let mut ssd = Ssd::new(modern_unbuffered());
        let t = precondition(&mut ssd, 64);
        let r = measure(
            &mut ssd,
            Pattern::Sequential,
            64,
            IoMix::read_only(),
            2,
            64,
            1,
            t,
        );
        assert_eq!(r.ops, 64);
        assert!(r.iops > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ratio(2.0), "2.00x");
    }
}
