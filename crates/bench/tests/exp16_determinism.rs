//! Seeded double-run determinism of the E16 aging harness: the same
//! preset must produce identical trajectories — point-for-point and
//! byte-for-byte in the JSON — on a fresh device each time. CI
//! additionally double-run-diffs the full binary (`--short` preset);
//! this test pins the core harness at unit-test speed.

use requiem_bench::aging::{matrix, run_corner, run_json, AgingPreset};

/// Tiny preset: full pipeline (fill → overwrite → mixed, windowed
/// sampling), test-sized.
fn tiny() -> AgingPreset {
    AgingPreset {
        window: 128,
        overwrite_windows: 3,
        mixed_windows: 2,
        queue_depth: 2,
    }
}

#[test]
fn aging_trajectories_are_deterministic() {
    // one page-mapped and one hybrid corner: the two reclaim mechanisms
    let m = matrix();
    for c in [&m[0], &m[5]] {
        let a = run_corner(c, &tiny());
        let b = run_corner(c, &tiny());
        assert_eq!(a.points, b.points, "trajectory diverged for {:?}", c);
        assert_eq!(
            run_json(&a),
            run_json(&b),
            "JSON encoding diverged for {:?}",
            c
        );
        assert!(
            !a.points.is_empty(),
            "campaign must sample at least one window"
        );
    }
}

#[test]
fn aging_fill_reaches_full_mapping_before_sampling() {
    // the first sampled window must already see an aged device: WA > 1
    // under zipfian overwrite on a 100 % mapped page-mapped device
    let m = matrix();
    let run = run_corner(&m[0], &tiny());
    let first = &run.points[0];
    assert_eq!(first.phase, "overwrite");
    assert!(
        first.wa_window >= 1.0,
        "overwrite on a full device must relocate ({} < 1)",
        first.wa_window
    );
}
