//! Criterion: simulated block-layer submission cost across stack
//! configurations and backends.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use requiem_block::{Disk, DiskConfig, IoRequest, IoStack, NullDevice, StackConfig};
use requiem_sim::time::{SimDuration, SimTime};
use requiem_ssd::{Ssd, SsdConfig};

fn bench_stack_submit(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocklayer/submit");
    g.throughput(Throughput::Elements(1));
    g.bench_function("null_device", |b| {
        let mut stack = IoStack::new(
            StackConfig::blk_mq(1),
            NullDevice {
                latency: SimDuration::from_micros(5),
                pages: 1 << 20,
            },
        );
        let mut t = SimTime::ZERO;
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 1) % (1 << 20);
            let done = stack.submit(t, 0, IoRequest::write(lba));
            t = done.done;
            done.latency
        });
    });
    g.bench_function("ssd_backend", |b| {
        let mut stack = IoStack::new(StackConfig::blk_mq(1), Ssd::new(SsdConfig::modern()));
        let mut t = SimTime::ZERO;
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 1) % 2048;
            let done = stack.submit(t, 0, IoRequest::write(lba));
            t = done.done;
            done.latency
        });
    });
    g.bench_function("disk_backend", |b| {
        let mut stack = IoStack::new(StackConfig::legacy(1), Disk::new(DiskConfig::hdd_7200()));
        let mut t = SimTime::ZERO;
        let mut lba = 7u64;
        b.iter(|| {
            lba = lba.wrapping_mul(999983) % (1 << 20);
            let done = stack.submit(t, 0, IoRequest::read(lba));
            t = done.done;
            done.latency
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_stack_submit
}
criterion_main!(benches);
