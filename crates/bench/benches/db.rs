//! Criterion: simulated transaction execution rate of the storage engine
//! on the legacy and vision backends.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use requiem_db::backend::{LegacyBackend, VisionBackend};
use requiem_db::engine::{Database, DbConfig};
use requiem_ssd::SsdConfig;
use requiem_workload::oltp::{OltpConfig, OltpGen};

fn db_cfg() -> DbConfig {
    DbConfig {
        buffer_frames: 256,
        data_pages: 1024,
        slots_per_page: 16,
        record_size: 100,
        checkpoint_every: 0,
        group_commit: 1,
        ..DbConfig::default()
    }
}

fn bench_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("db/txn_execute");
    g.throughput(Throughput::Elements(1));
    g.bench_function("legacy_backend", |b| {
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = LegacyBackend::new(ssd_cfg, 1024, 256);
        let mut db = Database::new(db_cfg(), be);
        db.load();
        let mut gen = OltpGen::new(OltpConfig::default(), 1);
        b.iter(|| {
            let txn = gen.next_txn();
            let acc: Vec<(u64, u16, bool)> =
                txn.accesses.iter().map(|a| (a.page, 0, a.dirty)).collect();
            db.execute(&acc, txn.log_bytes)
        });
    });
    g.bench_function("vision_backend", |b| {
        let mut flash_cfg = SsdConfig::modern();
        flash_cfg.buffer.capacity_pages = 0;
        let be = VisionBackend::new(flash_cfg, 1024, 1 << 22);
        let mut db = Database::new(db_cfg(), be);
        db.load();
        let mut gen = OltpGen::new(OltpConfig::default(), 1);
        b.iter(|| {
            let txn = gen.next_txn();
            let acc: Vec<(u64, u16, bool)> =
                txn.accesses.iter().map(|a| (a.page, 0, a.dirty)).collect();
            db.execute(&acc, txn.log_bytes)
        });
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    use requiem_db::btree::BTree;
    use requiem_db::page::{PageId, Rid};
    let mut g = c.benchmark_group("db/btree");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert", |b| {
        let mut t = BTree::new(PageId(0));
        let mut k = 1u64;
        b.iter(|| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.insert(
                k,
                Rid {
                    page: PageId(k % 1024),
                    slot: 0,
                },
            )
        });
    });
    g.bench_function("get_100k", |b| {
        let mut t = BTree::new(PageId(0));
        for k in 0..100_000u64 {
            t.insert(
                k,
                Rid {
                    page: PageId(k % 1024),
                    slot: 0,
                },
            );
        }
        let mut k = 1u64;
        b.iter(|| {
            k = k.wrapping_mul(48271) % 100_000;
            t.get(k)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_txn, bench_btree
}
criterion_main!(benches);
