//! Criterion microbenchmarks of the simulator core: how many simulated
//! I/Os per second of *host* CPU the framework sustains. These guard the
//! experiment harness against performance regressions (a slow simulator
//! caps experiment scale).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use requiem_sim::time::SimTime;
use requiem_sim::{EventQueue, Histogram, Resource};
use requiem_ssd::{BufferConfig, Lpn, Ssd, SsdConfig};

fn bench_resource(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/resource");
    g.throughput(Throughput::Elements(1));
    g.bench_function("reserve", |b| {
        let mut r = Resource::new("x");
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            r.reserve(SimTime::from_nanos(t), requiem_sim::time::MICROSECOND)
        });
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/histogram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        });
    });
    g.bench_function("p99", |b| {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i % 3_000_000);
        }
        b.iter(|| h.p99());
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/event_queue");
    g.throughput(Throughput::Elements(64));
    g.bench_function("schedule_pop_64", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..64u64 {
                    q.schedule(SimTime::from_nanos(i * 7 % 64), i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_ssd_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssd/simulated_io_rate");
    g.throughput(Throughput::Elements(1));
    g.bench_function("buffered_write", |b| {
        let mut ssd = Ssd::new(SsdConfig::modern());
        let span = ssd.capacity().exported_pages;
        let mut t = SimTime::ZERO;
        let mut lpn = 0u64;
        b.iter(|| {
            lpn = (lpn + 1) % span;
            let c = ssd.write(t, Lpn(lpn)).expect("write");
            t = c.done;
            c.latency
        });
    });
    g.bench_function("unbuffered_read", |b| {
        let mut cfg = SsdConfig::modern();
        cfg.buffer = BufferConfig { capacity_pages: 0 };
        let mut ssd = Ssd::new(cfg);
        let mut t = SimTime::ZERO;
        for lpn in 0..1024u64 {
            t = ssd.write(t, Lpn(lpn)).expect("precondition").done;
        }
        let mut lpn = 0u64;
        b.iter(|| {
            lpn = (lpn + 1) % 1024;
            let c = ssd.read(t, Lpn(lpn)).expect("read");
            t = c.done;
            c.latency
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_resource, bench_histogram, bench_event_queue, bench_ssd_io
}
criterion_main!(benches);
