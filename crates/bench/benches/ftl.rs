//! Criterion: per-FTL host-side cost of one simulated write, and the
//! mapping structures in isolation. Quantifies the ablation axis "mapping
//! granularity" from DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use requiem_sim::time::SimTime;
use requiem_ssd::mapping::dftl::DftlMap;
use requiem_ssd::mapping::page::PageMap;
use requiem_ssd::{BufferConfig, FtlKind, Lpn, LunId, PhysPage, Ssd, SsdConfig};

fn cfg_with(ftl: FtlKind) -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.ftl = ftl;
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg
}

fn bench_ftl_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl/simulated_write");
    g.throughput(Throughput::Elements(1));
    for (name, ftl) in [
        ("page_map", FtlKind::PageMap),
        (
            "dftl_4k",
            FtlKind::Dftl {
                cached_entries: 4096,
            },
        ),
        ("block_map", FtlKind::BlockMap),
        ("hybrid_8", FtlKind::Hybrid { log_blocks: 8 }),
    ] {
        g.bench_function(name, |b| {
            let mut ssd = Ssd::new(cfg_with(ftl.clone()));
            let span = ssd.capacity().exported_pages / 2;
            let mut t = SimTime::ZERO;
            let mut x = 9u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let c = ssd.write(t, Lpn(x % span)).expect("write");
                t = c.done;
                c.latency
            });
        });
    }
    g.finish();
}

fn bench_mapping_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl/mapping_lookup");
    g.throughput(Throughput::Elements(1));
    let pp = |i: u64| PhysPage {
        lun: LunId((i % 8) as u32),
        addr: requiem_flash::PageAddr {
            plane: 0,
            block: (i % 64) as u32,
            page: (i % 16) as u32,
        },
    };
    g.bench_function("page_map", |b| {
        let mut m = PageMap::new(1 << 16);
        for i in 0..(1 << 16) {
            m.update(Lpn(i), pp(i));
        }
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.lookup(Lpn(x % (1 << 16)))
        });
    });
    g.bench_function("dftl_hit", |b| {
        let mut m = DftlMap::new(1 << 16, 1 << 16, 4096, 8);
        let mut ios = Vec::new();
        for i in 0..(1 << 16) {
            m.update(Lpn(i), pp(i), &mut ios);
        }
        let mut x = 1u64;
        b.iter(|| {
            ios.clear();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.lookup(Lpn(x % (1 << 16)), &mut ios)
        });
    });
    g.bench_function("dftl_thrash", |b| {
        // CMT far smaller than the working set: every lookup misses
        let mut m = DftlMap::new(1 << 16, 64, 4096, 8);
        let mut ios = Vec::new();
        let mut x = 1u64;
        b.iter(|| {
            ios.clear();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.lookup(Lpn(x % (1 << 16)), &mut ios)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_ftl_write, bench_mapping_structures
}
criterion_main!(benches);
