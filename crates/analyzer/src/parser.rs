//! A tolerant recursive-descent parser over the [`crate::lexer`] token
//! stream.
//!
//! The build environment vendors no `syn`, so the semantic rules parse
//! Rust themselves. This parser produces exactly the item tree those
//! rules need — functions (with parameter/return types and a statement
//! tree), impl/trait context, `use` declarations, type definitions, and
//! every call expression — and deliberately nothing more. It is a
//! *scanner-grade* parser: tolerant of anything it does not model
//! (it skips unknown constructs token by token), never panics on
//! arbitrary input, and prefers under-reporting structure to
//! mis-reporting it, because every lint built on top is deny-by-default.
//!
//! What the rules get:
//!
//! * [`ParsedFile::fns`] — a flat list of every `fn` in the file, each
//!   carrying its enclosing impl/trait type, parameter names and type
//!   idents, return-type idents, and a [`Block`] statement tree.
//! * [`ParsedFile::uses`] — flattened `use` trees (each leaf a full
//!   segment path plus the local binding name it introduces).
//! * [`ParsedFile::types`] — struct/enum/trait/union names defined here
//!   (the symbol table attributes them to the crate).
//! * [`Call`] — every `callee(...)` / `recv.method(...)` /
//!   `Path::to::func(...)` in a body, with receiver chain, argument
//!   ranges, and the index of the matching `)` so rules can see what
//!   the result flows into.
//!
//! Expressions are *ranges with extracted calls*, not trees: control
//! flow that appears in expression position (`let x = if … {…} else
//! {…}`) is analyzed linearly. The statement tree does model `if` /
//! `else`, `match` arms, loops, `let`/`let…else`, and `return`, which is
//! what the path-sensitive rules (PRB03, CLK01) branch on.

use crate::lexer::{Tok, TokKind};

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function in the file, at any nesting depth, in source order.
    pub fns: Vec<FnDef>,
    /// Flattened `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Types (struct/enum/trait/union) defined in this file.
    pub types: Vec<TypeDef>,
}

/// One type definition site.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// The type's name.
    pub name: String,
    /// Source line.
    pub line: u32,
}

/// One flattened `use` leaf: `use a::b::{c, d as e};` yields two.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Full segment path (`["a", "b", "c"]`).
    pub segs: Vec<String>,
    /// Local name the declaration binds (`c`, `e`, or `*` for a glob).
    pub alias: String,
    /// Source line.
    pub line: u32,
}

/// One function definition (or trait-method declaration).
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// True when declared with a `self` receiver.
    pub has_self: bool,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (for test-mask lookups).
    pub fn_tok: usize,
    /// Named parameters (receiver excluded).
    pub params: Vec<Param>,
    /// Identifiers appearing in the return type, in order (empty = unit).
    pub ret: Vec<String>,
    /// Body statement tree (`None` for trait declarations).
    pub body: Option<Block>,
}

/// One named parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (empty for pattern parameters).
    pub name: String,
    /// Identifiers appearing in the parameter type, in order.
    pub ty: Vec<String>,
}

/// A `{ … }` block as a statement tree.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order; a trailing expression arrives as an
    /// [`ExprStmt`] with `semi == false`.
    pub stmts: Vec<Stmt>,
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat [: ty] [= expr] [else { … }];`
    Let(LetStmt),
    /// An expression statement (with or without `;`).
    Expr(ExprStmt),
    /// `return [expr];`
    Return(ReturnStmt),
    /// `if cond { … } [else …]` in statement position.
    If(IfStmt),
    /// `match expr { arms }` in statement position.
    Match(MatchStmt),
    /// `loop` / `while [let]` / `for … in …` with a body.
    Loop(LoopStmt),
    /// A bare `{ … }` block statement.
    Block(Block),
    /// `break [label/expr];`
    Break(u32),
    /// `continue [label];`
    Continue(u32),
    /// A nested item (functions are also flattened into
    /// [`ParsedFile::fns`]).
    Item,
}

/// `let` statement.
#[derive(Debug)]
pub struct LetStmt {
    /// Names the pattern binds (lowercase idents; constructors excluded).
    pub names: Vec<String>,
    /// True when the pattern is exactly `_`.
    pub wild: bool,
    /// True when the pattern discards a component: a `_` or
    /// `_`-prefixed binding inside it, or a `..` rest pattern.
    pub discards: bool,
    /// Identifiers in the ascribed type, if any.
    pub ty: Vec<String>,
    /// Initializer expression.
    pub init: Option<ExprInfo>,
    /// `let … else { … }` diverging block.
    pub els: Option<Block>,
    /// Source line.
    pub line: u32,
}

/// Expression statement.
#[derive(Debug)]
pub struct ExprStmt {
    /// The expression.
    pub expr: ExprInfo,
    /// True when terminated by `;` (false for a tail expression).
    pub semi: bool,
}

/// `return` statement.
#[derive(Debug)]
pub struct ReturnStmt {
    /// Returned expression, if any.
    pub expr: Option<ExprInfo>,
    /// Source line.
    pub line: u32,
}

/// `if` statement (conditions of `if let` include the `let pat =` part).
#[derive(Debug)]
pub struct IfStmt {
    /// Condition expression.
    pub cond: ExprInfo,
    /// Then-block.
    pub then: Block,
    /// `else` branch: a nested [`Stmt::If`] or [`Stmt::Block`].
    pub els: Option<Box<Stmt>>,
}

/// `match` statement.
#[derive(Debug)]
pub struct MatchStmt {
    /// Scrutinee expression.
    pub scrutinee: ExprInfo,
    /// Arms in order.
    pub arms: Vec<Arm>,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Pattern (plus guard) token range `[lo, hi)`.
    pub pat: (usize, usize),
    /// Names the pattern binds (lowercase idents; constructors excluded).
    pub names: Vec<String>,
    /// Arm body.
    pub body: ArmBody,
}

/// A match-arm body.
#[derive(Debug)]
pub enum ArmBody {
    /// `pat => { … }`
    Block(Block),
    /// `pat => expr`
    Expr(ExprInfo),
}

/// `loop` / `while` / `for` statement.
#[derive(Debug)]
pub struct LoopStmt {
    /// Loop header expression (`while` condition / `for` iterator), if
    /// any.
    pub header: Option<ExprInfo>,
    /// Loop body.
    pub body: Block,
}

/// An expression as a token range with its extracted calls.
#[derive(Debug)]
pub struct ExprInfo {
    /// Start token index (inclusive).
    pub lo: usize,
    /// End token index (exclusive).
    pub hi: usize,
    /// Source line of the first token.
    pub line: u32,
    /// Calls found anywhere in `[lo, hi)`, in source order.
    pub calls: Vec<Call>,
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee path segments: `["a","b","f"]` for `a::b::f(…)`, `["m"]`
    /// for `.m(…)` or `m(…)`.
    pub path: Vec<String>,
    /// True for a `.method(…)` call.
    pub method: bool,
    /// Receiver ident chain for method calls (`self.probe.span(…)` →
    /// `["self","probe"]`); empty when the receiver is computed.
    pub recv: Vec<String>,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Token index of the matching `)`.
    pub rparen: usize,
    /// Source line of the callee.
    pub line: u32,
    /// Top-level argument token ranges `[lo, hi)`.
    pub args: Vec<(usize, usize)>,
}

impl Call {
    /// The callee rendered as `a::b::f`.
    pub fn path_str(&self) -> String {
        self.path.join("::")
    }

    /// Last path segment — the function/method name itself.
    pub fn name(&self) -> &str {
        self.path.last().map(|s| s.as_str()).unwrap_or("")
    }
}

/// Keywords that may directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "impl", "dyn", "where", "break",
];

/// Parse a lexed file.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut p = Parser { toks, pos: 0 };
    p.items(&mut out, None, toks.len());
    out
}

struct Parser<'t> {
    toks: &'t [Tok],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn at(&self, i: usize) -> Option<&'t Tok> {
        self.toks.get(i)
    }

    fn cur(&self) -> Option<&'t Tok> {
        self.at(self.pos)
    }

    fn is(&self, i: usize, c: char) -> bool {
        self.at(i).map(|t| t.is_punct(c)).unwrap_or(false)
    }

    fn is_kw(&self, i: usize, s: &str) -> bool {
        self.at(i).map(|t| t.is_ident(s)).unwrap_or(false)
    }

    fn line(&self, i: usize) -> u32 {
        self.at(i).map(|t| t.line).unwrap_or(0)
    }

    /// Skip one `#[…]` / `#![…]` attribute if present.
    fn skip_attr(&mut self) -> bool {
        if !self.is(self.pos, '#') {
            return false;
        }
        let mut j = self.pos + 1;
        if self.is(j, '!') {
            j += 1;
        }
        if !self.is(j, '[') {
            self.pos += 1; // stray `#`: consume to guarantee progress
            return true;
        }
        let mut depth = 0i32;
        while j < self.toks.len() {
            if self.is(j, '[') {
                depth += 1;
            } else if self.is(j, ']') {
                depth -= 1;
                if depth == 0 {
                    self.pos = j + 1;
                    return true;
                }
            }
            j += 1;
        }
        self.pos = self.toks.len();
        true
    }

    /// Skip a balanced `<…>` generic list starting at `pos` (which must
    /// be `<`). `->` and comparison-free contexts are assumed — this is
    /// only called in declaration positions.
    fn skip_generics(&mut self) {
        if !self.is(self.pos, '<') {
            return;
        }
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            if self.is(self.pos, '<') {
                depth += 1;
            } else if self.is(self.pos, '>') {
                // `->` inside `Fn(…) -> T` bounds does not close a level
                if !(self.pos > 0 && self.is(self.pos - 1, '-')) {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
            }
            self.pos += 1;
        }
    }

    /// Skip to just past the next `;` or matching `}` at depth 0 —
    /// items we do not model (const/static/type/extern/macro defs).
    fn skip_item(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth == 0 && t.is_punct('}') {
                    self.pos += 1;
                    return;
                }
                if depth < 0 {
                    return; // enclosing close: let the caller see it
                }
            } else if t.is_punct(';') && depth == 0 {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// Parse items until `end` (token index) or an unmatched `}`.
    fn items(&mut self, out: &mut ParsedFile, self_ty: Option<&str>, end: usize) {
        while self.pos < end {
            if self.skip_attr() {
                continue;
            }
            let Some(t) = self.cur() else { break };
            if t.is_punct('}') {
                return; // caller consumes
            }
            if t.kind != TokKind::Ident {
                self.pos += 1;
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    self.pos += 1;
                    // pub(crate) / pub(in …)
                    if self.is(self.pos, '(') {
                        let mut depth = 0i32;
                        while self.pos < self.toks.len() {
                            if self.is(self.pos, '(') {
                                depth += 1;
                            } else if self.is(self.pos, ')') {
                                depth -= 1;
                                if depth == 0 {
                                    self.pos += 1;
                                    break;
                                }
                            }
                            self.pos += 1;
                        }
                    }
                }
                "use" => self.use_decl(out),
                "fn" => self.fn_item(out, self_ty),
                "impl" => self.impl_item(out),
                "trait" => self.trait_item(out),
                "mod" => self.mod_item(out, self_ty),
                "struct" | "enum" | "union" => {
                    let line = t.line;
                    if let Some(n) = self.at(self.pos + 1) {
                        if n.kind == TokKind::Ident {
                            out.types.push(TypeDef {
                                name: n.text.clone(),
                                line,
                            });
                        }
                    }
                    self.pos += 1;
                    self.skip_item();
                }
                "unsafe" | "const" | "static" | "extern" | "async" => {
                    // `const fn` / `unsafe fn` / `extern "C" fn` keep the
                    // fn; `const X: …;` et al are skipped wholesale.
                    if self.is_kw(self.pos + 1, "fn")
                        || (self.at(self.pos + 1).map(|n| n.kind) == Some(TokKind::Literal)
                            && self.is_kw(self.pos + 2, "fn"))
                    {
                        self.pos += 1;
                    } else {
                        self.pos += 1;
                        self.skip_item();
                    }
                }
                _ => {
                    // macro invocation / unknown construct: make progress
                    self.pos += 1;
                    if self.is(self.pos, '!') {
                        self.pos += 1;
                        if self.at(self.pos).map(|t| t.kind) == Some(TokKind::Ident) {
                            self.pos += 1; // macro_rules! name
                        }
                        self.skip_delims();
                    }
                }
            }
        }
    }

    /// Skip one balanced delimiter group (or a lone `;`).
    fn skip_delims(&mut self) {
        let Some(t) = self.cur() else { return };
        if t.is_punct(';') {
            self.pos += 1;
            return;
        }
        if !(t.is_punct('{') || t.is_punct('(') || t.is_punct('[')) {
            return;
        }
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `use a::b::{c, d as e, f::*};`
    fn use_decl(&mut self, out: &mut ParsedFile) {
        let line = self.line(self.pos);
        self.pos += 1; // `use`
        let mut prefix = Vec::new();
        self.use_tree(out, &mut prefix, line);
        if self.is(self.pos, ';') {
            self.pos += 1;
        }
    }

    fn use_tree(&mut self, out: &mut ParsedFile, prefix: &mut Vec<String>, line: u32) {
        let depth0 = prefix.len();
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                prefix.push(t.text.clone());
                self.pos += 1;
                if self.is(self.pos, ':') && self.is(self.pos + 1, ':') {
                    self.pos += 2;
                    continue;
                }
                // leaf: optional `as alias`
                let mut alias = prefix.last().cloned().unwrap_or_default();
                if self.is_kw(self.pos, "as") {
                    // the alias ident follows
                    if let Some(a) = self.at(self.pos + 1) {
                        if a.kind == TokKind::Ident {
                            alias = a.text.clone();
                        }
                    }
                    self.pos += 2;
                }
                out.uses.push(UseDecl {
                    segs: prefix.clone(),
                    alias,
                    line,
                });
                prefix.truncate(depth0);
                break;
            } else if t.is_punct('*') {
                out.uses.push(UseDecl {
                    segs: prefix.clone(),
                    alias: "*".to_string(),
                    line,
                });
                self.pos += 1;
                prefix.truncate(depth0);
                break;
            } else if t.is_punct('{') {
                self.pos += 1;
                loop {
                    if self.is(self.pos, '}') {
                        self.pos += 1;
                        break;
                    }
                    if self.pos >= self.toks.len() {
                        break;
                    }
                    self.use_tree(out, prefix, line);
                    if self.is(self.pos, ',') {
                        self.pos += 1;
                        continue;
                    }
                    if !self.is(self.pos, '}') {
                        self.pos += 1; // tolerate anything else
                    }
                }
                prefix.truncate(depth0);
                break;
            } else {
                break;
            }
        }
    }

    /// `impl<…> [Trait for] Type { items }`
    fn impl_item(&mut self, out: &mut ParsedFile) {
        self.pos += 1; // `impl`
        if self.is(self.pos, '<') {
            self.skip_generics();
        }
        // first path: trait (when `for` follows) or the self type
        let first = self.type_head();
        let self_ty = if self.is_kw(self.pos, "for") {
            self.pos += 1;
            self.type_head()
        } else {
            first
        };
        // skip to the body `{`
        while self.pos < self.toks.len() && !self.is(self.pos, '{') {
            if self.is(self.pos, ';') {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
        if self.is(self.pos, '{') {
            self.pos += 1;
            self.items(out, self_ty.as_deref(), self.toks.len());
            if self.is(self.pos, '}') {
                self.pos += 1;
            }
        }
    }

    /// Read a type path head (`a::b::Type<G>` → `Type`), leaving `pos`
    /// after it.
    fn type_head(&mut self) -> Option<String> {
        // leading `&`, lifetimes, `mut`, `dyn`
        loop {
            let t = self.cur()?;
            if t.is_punct('&')
                || t.kind == TokKind::Lifetime
                || t.is_ident("mut")
                || t.is_ident("dyn")
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut last = None;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                last = Some(t.text.clone());
                self.pos += 1;
                if self.is(self.pos, ':') && self.is(self.pos + 1, ':') {
                    self.pos += 2;
                    continue;
                }
                if self.is(self.pos, '<') {
                    self.skip_generics();
                }
                break;
            }
            break;
        }
        last
    }

    /// `trait Name { fn decls/defaults }`
    fn trait_item(&mut self, out: &mut ParsedFile) {
        self.pos += 1; // `trait`
        let name = self.cur().filter(|t| t.kind == TokKind::Ident).map(|t| {
            out.types.push(TypeDef {
                name: t.text.clone(),
                line: t.line,
            });
            t.text.clone()
        });
        if name.is_some() {
            self.pos += 1;
        }
        if self.is(self.pos, '<') {
            self.skip_generics();
        }
        while self.pos < self.toks.len() && !self.is(self.pos, '{') {
            if self.is(self.pos, ';') {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
        if self.is(self.pos, '{') {
            self.pos += 1;
            self.items(out, name.as_deref(), self.toks.len());
            if self.is(self.pos, '}') {
                self.pos += 1;
            }
        }
    }

    /// `mod name { items }` / `mod name;`
    fn mod_item(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) {
        self.pos += 1; // `mod`
        if self.cur().map(|t| t.kind) == Some(TokKind::Ident) {
            self.pos += 1;
        }
        if self.is(self.pos, ';') {
            self.pos += 1;
            return;
        }
        if self.is(self.pos, '{') {
            self.pos += 1;
            self.items(out, self_ty, self.toks.len());
            if self.is(self.pos, '}') {
                self.pos += 1;
            }
        }
    }

    /// `fn name<…>(params) [-> Ret] [where …] { body }`
    fn fn_item(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) {
        let fn_tok = self.pos;
        let line = self.line(self.pos);
        self.pos += 1; // `fn`
        let Some(name_tok) = self.cur().filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name_tok.text.clone();
        self.pos += 1;
        if self.is(self.pos, '<') {
            self.skip_generics();
        }
        let (params, has_self) = self.fn_params();
        // return type
        let mut ret = Vec::new();
        if self.is(self.pos, '-') && self.is(self.pos + 1, '>') {
            self.pos += 2;
            let mut depth = 0i32;
            while self.pos < self.toks.len() {
                let t = &self.toks[self.pos];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where"))
                {
                    break;
                } else if t.kind == TokKind::Ident {
                    ret.push(t.text.clone());
                }
                self.pos += 1;
            }
        }
        // where clause
        if self.is_kw(self.pos, "where") {
            while self.pos < self.toks.len() && !self.is(self.pos, '{') && !self.is(self.pos, ';') {
                self.pos += 1;
            }
        }
        let body = if self.is(self.pos, '{') {
            Some(self.block(out, self_ty))
        } else {
            if self.is(self.pos, ';') {
                self.pos += 1;
            }
            None
        };
        out.fns.push(FnDef {
            name,
            self_ty: self_ty.map(|s| s.to_string()),
            has_self,
            line,
            fn_tok,
            params,
            ret,
            body,
        });
    }

    /// Parse `(params)`; returns the named params and whether a `self`
    /// receiver is present.
    fn fn_params(&mut self) -> (Vec<Param>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        if !self.is(self.pos, '(') {
            return (params, has_self);
        }
        // find the matching `)`
        let open = self.pos;
        let mut depth = 0i32;
        let mut close = open;
        while close < self.toks.len() {
            if self.is(close, '(') || self.is(close, '[') || self.is(close, '{') {
                depth += 1;
            } else if self.is(close, ')') || self.is(close, ']') || self.is(close, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        // split on top-level commas (angle-aware for generic types)
        let mut i = open + 1;
        let mut start = i;
        let mut d = 0i32;
        let mut angle = 0i32;
        let mut flush = |lo: usize, hi: usize, parser: &Parser<'t>| {
            if lo >= hi {
                return;
            }
            // receiver?
            let mut j = lo;
            while j < hi
                && (parser.is(j, '&')
                    || parser.at(j).map(|t| t.kind) == Some(TokKind::Lifetime)
                    || parser.is_kw(j, "mut"))
            {
                j += 1;
            }
            if parser.is_kw(j, "self") {
                has_self = true;
                return;
            }
            // `[mut] name : ty`
            let mut k = lo;
            if parser.is_kw(k, "mut") {
                k += 1;
            }
            let name = parser
                .at(k)
                .filter(|t| {
                    t.kind == TokKind::Ident && parser.is(k + 1, ':') && !parser.is(k + 2, ':')
                })
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let ty_lo = if name.is_empty() { lo } else { k + 2 };
            let ty: Vec<String> = (ty_lo..hi)
                .filter_map(|x| parser.at(x))
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
            params.push(Param { name, ty });
        };
        while i < close {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !self.is(i - 1, '-') {
                angle -= 1;
            } else if t.is_punct(',') && d == 0 && angle <= 0 {
                flush(start, i, self);
                start = i + 1;
            }
            i += 1;
        }
        flush(start, close, self);
        self.pos = (close + 1).min(self.toks.len());
        (params, has_self)
    }

    /// Parse a `{ … }` block (pos must be at `{`).
    fn block(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) -> Block {
        let open = self.pos;
        self.pos += 1;
        let mut stmts = Vec::new();
        loop {
            while self.skip_attr() {}
            let Some(t) = self.cur() else { break };
            if t.is_punct('}') {
                let close = self.pos;
                self.pos += 1;
                return Block { stmts, open, close };
            }
            if t.is_punct(';') {
                self.pos += 1;
                continue;
            }
            stmts.push(self.stmt(out, self_ty));
        }
        Block {
            stmts,
            open,
            close: self.toks.len().saturating_sub(1),
        }
    }

    /// Parse one statement inside a block.
    fn stmt(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) -> Stmt {
        let t = &self.toks[self.pos];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "let" => return self.let_stmt(out, self_ty),
                "return" => return self.return_stmt(),
                "if" => return self.if_stmt(out, self_ty),
                "match" => return self.match_stmt(out, self_ty),
                "while" | "for" => {
                    let is_for = t.text == "for";
                    self.pos += 1;
                    let lo = self.pos;
                    // `for PAT in EXPR {` — the pattern may contain
                    // depth-0 `{ … }` (struct patterns), so locate the
                    // body brace only after the `in`.
                    let brace = if is_for {
                        self.find_block_open_at(self.skip_pattern_to(self.pos, false))
                    } else {
                        self.find_block_open()
                    };
                    let header = self.expr_range(lo, brace);
                    self.pos = brace;
                    let body = if self.is(self.pos, '{') {
                        self.block(out, self_ty)
                    } else {
                        Block::default()
                    };
                    return Stmt::Loop(LoopStmt {
                        header: Some(header),
                        body,
                    });
                }
                "loop" => {
                    self.pos += 1;
                    let body = if self.is(self.pos, '{') {
                        self.block(out, self_ty)
                    } else {
                        Block::default()
                    };
                    return Stmt::Loop(LoopStmt { header: None, body });
                }
                "break" => {
                    let line = t.line;
                    self.consume_to_semi();
                    return Stmt::Break(line);
                }
                "continue" => {
                    let line = t.line;
                    self.consume_to_semi();
                    return Stmt::Continue(line);
                }
                "fn" => {
                    self.fn_item(out, self_ty);
                    return Stmt::Item;
                }
                "use" => {
                    self.use_decl(out);
                    return Stmt::Item;
                }
                "struct" | "enum" | "union" | "impl" | "trait" | "mod" | "const" | "static"
                | "type" | "extern" => {
                    // nested items: route through the item parser for
                    // fn/impl/etc so their fns are still collected
                    match t.text.as_str() {
                        "impl" => self.impl_item(out),
                        "trait" => self.trait_item(out),
                        "mod" => self.mod_item(out, self_ty),
                        _ => {
                            self.pos += 1;
                            self.skip_item();
                        }
                    }
                    return Stmt::Item;
                }
                _ => {}
            }
        }
        if t.is_punct('{') {
            return Stmt::Block(self.block(out, self_ty));
        }
        // expression statement
        self.expr_stmt()
    }

    /// From the current position, find the `{` that opens the next block —
    /// stepping over an `if let` / `while let` pattern first, since a
    /// struct pattern (`if let E::V { a, b } = x {`) contains a depth-0
    /// `{` that is *not* the body.
    fn find_block_open(&self) -> usize {
        let start = if self.toks.get(self.pos).is_some_and(|t| t.is_ident("let")) {
            self.skip_pattern_to(self.pos + 1, true)
        } else {
            self.pos
        };
        self.find_block_open_at(start)
    }

    /// From `start`, find the index of the `{` that opens the next block at
    /// delimiter depth 0 (statement-position headers: Rust forbids bare
    /// struct literals here, so the first depth-0 `{` is the block).
    fn find_block_open_at(&self, start: usize) -> usize {
        let mut j = start;
        let mut depth = 0i32;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth <= 0 {
                return j;
            } else if t.is_punct(';') && depth <= 0 {
                return j; // malformed header: stop at the `;`
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Step over a binding pattern starting at `start`, returning the
    /// index just past its depth-0 terminator: `=` when `eq` (the
    /// pattern/scrutinee separator of `if let` / `while let`), else the
    /// `in` of a `for` loop. All three delimiter kinds nest here because
    /// struct patterns carry `{ … }` groups. Returns `start` unchanged
    /// if no terminator appears before a depth-0 `;` or an enclosing
    /// close delimiter.
    fn skip_pattern_to(&self, start: usize, eq: bool) -> usize {
        let mut j = start;
        let mut depth = 0i32;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 {
                if eq {
                    // the separator `=`: not `==`, not `=>`, and not the
                    // tail of a `..=` range pattern
                    if t.is_punct('=')
                        && !self
                            .toks
                            .get(j + 1)
                            .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
                        && !(j > start && self.toks[j - 1].is_punct('.'))
                    {
                        return j + 1;
                    }
                } else if t.is_ident("in") {
                    return j + 1;
                }
            }
            j += 1;
        }
        start
    }

    /// Consume tokens through the next depth-0 `;` (or before an
    /// enclosing `}`).
    fn consume_to_semi(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                if depth == 0 {
                    return; // enclosing close
                }
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// `let pat [: ty] [= init] [else { … }];`
    fn let_stmt(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) -> Stmt {
        let line = self.line(self.pos);
        self.pos += 1; // `let`
                       // pattern: until depth-0 `:` `=` or `;`
        let pat_lo = self.pos;
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0
                && (t.is_punct('=')
                    || t.is_punct(';')
                    || (t.is_punct(':')
                        && !self.is(self.pos + 1, ':')
                        && !(self.pos > pat_lo && self.is(self.pos - 1, ':'))))
            {
                break;
            }
            self.pos += 1;
        }
        let pat_hi = self.pos;
        let (names, wild) = pattern_names(&self.toks[pat_lo..pat_hi]);
        let discards = !wild && pattern_discards(&self.toks[pat_lo..pat_hi]);
        // ascription
        let mut ty = Vec::new();
        if self.is(self.pos, ':') {
            self.pos += 1;
            let mut angle = 0i32;
            let mut d = 0i32;
            while self.pos < self.toks.len() {
                let t = &self.toks[self.pos];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !self.is(self.pos - 1, '-') {
                    angle -= 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                } else if d == 0
                    && (t.is_punct('}') || (angle <= 0 && (t.is_punct('=') || t.is_punct(';'))))
                {
                    break;
                } else if t.kind == TokKind::Ident {
                    ty.push(t.text.clone());
                }
                self.pos += 1;
            }
        }
        // initializer
        let mut init = None;
        let mut els = None;
        if self.is(self.pos, '=') {
            self.pos += 1;
            let lo = self.pos;
            let mut d = 0i32;
            while self.pos < self.toks.len() {
                let t = &self.toks[self.pos];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    if d == 0 {
                        break; // enclosing close (missing `;`)
                    }
                    d -= 1;
                } else if d == 0 && t.is_punct(';') {
                    break;
                } else if d == 0 && t.is_ident("else") && self.is(self.pos + 1, '{') {
                    break; // let-else
                }
                self.pos += 1;
            }
            init = Some(self.expr_range(lo, self.pos));
            if self.is_kw(self.pos, "else") {
                self.pos += 1;
                if self.is(self.pos, '{') {
                    els = Some(self.block(out, self_ty));
                }
            }
        }
        if self.is(self.pos, ';') {
            self.pos += 1;
        }
        Stmt::Let(LetStmt {
            names,
            wild,
            discards,
            ty,
            init,
            els,
            line,
        })
    }

    fn return_stmt(&mut self) -> Stmt {
        let line = self.line(self.pos);
        self.pos += 1; // `return`
        let lo = self.pos;
        let mut d = 0i32;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                d += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                if d == 0 {
                    break;
                }
                d -= 1;
            } else if d == 0 && t.is_punct(';') {
                break;
            }
            self.pos += 1;
        }
        let expr = if self.pos > lo {
            Some(self.expr_range(lo, self.pos))
        } else {
            None
        };
        if self.is(self.pos, ';') {
            self.pos += 1;
        }
        Stmt::Return(ReturnStmt { expr, line })
    }

    fn if_stmt(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) -> Stmt {
        self.pos += 1; // `if`
        let lo = self.pos;
        let brace = self.find_block_open();
        let cond = self.expr_range(lo, brace);
        self.pos = brace;
        let then = if self.is(self.pos, '{') {
            self.block(out, self_ty)
        } else {
            Block::default()
        };
        let mut els = None;
        if self.is_kw(self.pos, "else") {
            self.pos += 1;
            if self.is_kw(self.pos, "if") {
                els = Some(Box::new(self.if_stmt(out, self_ty)));
            } else if self.is(self.pos, '{') {
                els = Some(Box::new(Stmt::Block(self.block(out, self_ty))));
            }
        }
        Stmt::If(IfStmt { cond, then, els })
    }

    fn match_stmt(&mut self, out: &mut ParsedFile, self_ty: Option<&str>) -> Stmt {
        self.pos += 1; // `match`
        let lo = self.pos;
        let brace = self.find_block_open();
        let scrutinee = self.expr_range(lo, brace);
        self.pos = brace;
        let mut arms = Vec::new();
        if self.is(self.pos, '{') {
            self.pos += 1;
            loop {
                while self.skip_attr() {}
                let Some(t) = self.cur() else { break };
                if t.is_punct('}') {
                    self.pos += 1;
                    break;
                }
                if t.is_punct(',') {
                    self.pos += 1;
                    continue;
                }
                // pattern (plus guard) until `=>` at depth 0
                let pat_lo = self.pos;
                let mut d = 0i32;
                while self.pos < self.toks.len() {
                    let t = &self.toks[self.pos];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        d += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    } else if d == 0
                        && t.is_punct('=')
                        && self.is(self.pos + 1, '>')
                        && !(self.pos > 0
                            && (self.is(self.pos - 1, '>')
                                || self.is(self.pos - 1, '<')
                                || self.is(self.pos - 1, '=')
                                || self.is(self.pos - 1, '!')))
                    {
                        break;
                    }
                    self.pos += 1;
                }
                let pat_hi = self.pos;
                let (names, _) = pattern_names(&self.toks[pat_lo..pat_hi]);
                if !(self.is(self.pos, '=') && self.is(self.pos + 1, '>')) {
                    break; // malformed arm
                }
                self.pos += 2; // `=>`
                let body = if self.is(self.pos, '{') {
                    ArmBody::Block(self.block(out, self_ty))
                } else {
                    let blo = self.pos;
                    let mut d = 0i32;
                    while self.pos < self.toks.len() {
                        let t = &self.toks[self.pos];
                        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            d += 1;
                        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        } else if d == 0 && t.is_punct(',') {
                            break;
                        }
                        self.pos += 1;
                    }
                    ArmBody::Expr(self.expr_range(blo, self.pos))
                };
                arms.push(Arm {
                    pat: (pat_lo, pat_hi),
                    names,
                    body,
                });
            }
        }
        Stmt::Match(MatchStmt { scrutinee, arms })
    }

    fn expr_stmt(&mut self) -> Stmt {
        let lo = self.pos;
        let mut d = 0i32;
        let mut semi = false;
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                d += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                if d == 0 {
                    break; // tail expression: enclosing `}` follows
                }
                d -= 1;
                // `… }` at depth 0 can end a statement (macro with brace
                // delimiter); continue scanning for `;` or `}`.
            } else if d == 0 && t.is_punct(';') {
                semi = true;
                self.pos += 1;
                break;
            }
            self.pos += 1;
        }
        let hi = if semi { self.pos - 1 } else { self.pos };
        Stmt::Expr(ExprStmt {
            expr: self.expr_range(lo, hi),
            semi,
        })
    }

    /// Build an [`ExprInfo`] for `[lo, hi)`, extracting calls.
    fn expr_range(&self, lo: usize, hi: usize) -> ExprInfo {
        ExprInfo {
            lo,
            hi,
            line: self.line(lo),
            calls: extract_calls(self.toks, lo, hi),
        }
    }
}

impl Block {
    /// Visit every [`ExprInfo`] in this block, depth first, in source
    /// order. Nested items ([`Stmt::Item`]) are not entered — their fns
    /// appear in [`ParsedFile::fns`] with their own bodies.
    pub fn for_each_expr<'a>(&'a self, f: &mut impl FnMut(&'a ExprInfo)) {
        for s in &self.stmts {
            s.for_each_expr(f);
        }
    }
}

impl Stmt {
    /// Visit every [`ExprInfo`] in this statement, depth first.
    pub fn for_each_expr<'a>(&'a self, f: &mut impl FnMut(&'a ExprInfo)) {
        match self {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    f(init);
                }
                if let Some(b) = &l.els {
                    b.for_each_expr(f);
                }
            }
            Stmt::Expr(e) => f(&e.expr),
            Stmt::Return(r) => {
                if let Some(e) = &r.expr {
                    f(e);
                }
            }
            Stmt::If(i) => {
                f(&i.cond);
                i.then.for_each_expr(f);
                if let Some(e) = &i.els {
                    e.for_each_expr(f);
                }
            }
            Stmt::Match(m) => {
                f(&m.scrutinee);
                for arm in &m.arms {
                    match &arm.body {
                        ArmBody::Block(b) => b.for_each_expr(f),
                        ArmBody::Expr(e) => f(e),
                    }
                }
            }
            Stmt::Loop(l) => {
                if let Some(h) = &l.header {
                    f(h);
                }
                l.body.for_each_expr(f);
            }
            Stmt::Block(b) => b.for_each_expr(f),
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Item => {}
        }
    }
}

/// Names a pattern binds: snake-case identifiers that are not path
/// segments (`Enum::Variant`), constructors (capitalized), keywords, or
/// field names in `field: binding` struct patterns (the binding side is
/// collected).
fn pattern_names(toks: &[Tok]) -> (Vec<String>, bool) {
    if toks.len() == 1 && toks[0].is_ident("_") {
        return (Vec::new(), true);
    }
    let mut names = Vec::new();
    let mut guard = false;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("if") {
            guard = true; // match-arm guard: uses, not bindings
        }
        if guard || t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        if text == "_"
            || text == "mut"
            || text == "ref"
            || text == "if"
            || matches!(text.chars().next(), Some(c) if c.is_ascii_uppercase())
        {
            continue;
        }
        // path segment? (`a::b` — either side of `::`)
        let before = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let after = i + 2 <= toks.len().saturating_sub(1)
            && toks[i + 1].is_punct(':')
            && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false);
        if before || after {
            continue;
        }
        // struct-pattern `field: binding` — skip the field side
        if toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && !toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
        {
            continue;
        }
        if !names.iter().any(|n| n == text) {
            names.push(text.to_string());
        }
    }
    (names, false)
}

/// True when a pattern throws a component away: a `_` / `_x` binding or
/// a `..` rest pattern anywhere inside it.
fn pattern_discards(toks: &[Tok]) -> bool {
    let mut guard = false;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("if") {
            guard = true; // match-arm guard: expression territory
        }
        if guard {
            continue;
        }
        if t.kind == TokKind::Ident && t.text.starts_with('_') {
            return true;
        }
        // `..` rest pattern (but not `..=` ranges)
        if t.is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('.')).unwrap_or(false)
            && !toks.get(i + 2).map(|n| n.is_punct('=')).unwrap_or(false)
            && !(i > 0 && toks[i - 1].is_punct('.'))
        {
            return true;
        }
    }
    false
}

/// Extract every call expression in `toks[lo..hi]`.
pub fn extract_calls(toks: &[Tok], lo: usize, hi: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let hi = hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            // walk the path backwards: `a::b::f(`
            let mut path = vec![t.text.clone()];
            let mut j = i;
            while j >= 2
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && j >= 3
                && toks[j - 3].kind == TokKind::Ident
            {
                path.insert(0, toks[j - 3].text.clone());
                j -= 3;
            }
            let method = j >= 1 && toks[j - 1].is_punct('.');
            // receiver chain for method calls: `recv.field.m(` → walk
            // `ident .` pairs backwards
            let mut recv = Vec::new();
            if method {
                let mut k = j - 1; // the `.`
                while k >= 1 && toks[k].is_punct('.') && toks[k - 1].kind == TokKind::Ident {
                    recv.insert(0, toks[k - 1].text.clone());
                    if k >= 2 && toks[k - 2].is_punct('.') {
                        k -= 2;
                    } else {
                        break;
                    }
                }
            }
            // find the matching `)` and split top-level args
            let open = i + 1;
            let mut depth = 0i32;
            let mut k = open;
            let mut args = Vec::new();
            let mut arg_lo = open + 1;
            while k < toks.len() {
                let x = &toks[k];
                if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                    depth += 1;
                } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if x.is_punct(',') && depth == 1 {
                    args.push((arg_lo, k));
                    arg_lo = k + 1;
                }
                k += 1;
            }
            if k > open + 1 {
                args.push((arg_lo, k));
            }
            out.push(Call {
                path,
                method,
                recv,
                tok: i,
                rparen: k.min(toks.len().saturating_sub(1)),
                line: t.line,
                args,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fn_signature_is_extracted() {
        let f = parse_src(
            "impl FlashWal { pub fn force(&mut self, now: SimTime, to: Lsn) -> WalForce { WalForce { done: now, status: IoStatus::Ok } } }",
        );
        assert_eq!(f.fns.len(), 1);
        let fd = &f.fns[0];
        assert_eq!(fd.name, "force");
        assert_eq!(fd.self_ty.as_deref(), Some("FlashWal"));
        assert!(fd.has_self);
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[0].name, "now");
        assert_eq!(fd.params[0].ty, vec!["SimTime"]);
        assert_eq!(fd.ret, vec!["WalForce"]);
        assert!(fd.body.is_some());
    }

    #[test]
    fn trait_decl_methods_carry_the_trait_type() {
        let f = parse_src(
            "pub trait WalBackend { fn force(&mut self, now: SimTime, to: Lsn) -> WalForce; fn stats(&self) -> WalStats { WalStats::default() } }",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("WalBackend"));
        assert!(f.fns[0].body.is_none());
        assert!(f.fns[1].body.is_some());
        assert_eq!(f.types.len(), 1);
        assert_eq!(f.types[0].name, "WalBackend");
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let f = parse_src("impl WalBackend for PcmWal { fn id(&self) -> u32 { 7 } }");
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("PcmWal"));
    }

    #[test]
    fn use_trees_flatten_with_aliases() {
        let f = parse_src("use requiem_sim::{time::SimTime, IoStatus as St, probe::*};");
        let flat: Vec<(String, String)> = f
            .uses
            .iter()
            .map(|u| (u.segs.join("::"), u.alias.clone()))
            .collect();
        assert_eq!(
            flat,
            vec![
                ("requiem_sim::time::SimTime".into(), "SimTime".into()),
                ("requiem_sim::IoStatus".into(), "St".into()),
                ("requiem_sim::probe".into(), "*".into()),
            ]
        );
    }

    #[test]
    fn statements_and_calls_are_modeled() {
        let f = parse_src(
            "fn f(&mut self) { let x = self.dev.force(now, to); if x.done > t { return; } match y { Some(v) => v.close(t), None => {} } x.status; }",
        );
        let body = f.fns[0].body.as_ref().unwrap();
        assert!(matches!(body.stmts[0], Stmt::Let(_)));
        assert!(matches!(body.stmts[1], Stmt::If(_)));
        assert!(matches!(body.stmts[2], Stmt::Match(_)));
        let Stmt::Let(l) = &body.stmts[0] else {
            unreachable!("first stmt is let");
        };
        assert_eq!(l.names, vec!["x"]);
        let init = l.init.as_ref().unwrap();
        assert_eq!(init.calls.len(), 1);
        assert_eq!(init.calls[0].path, vec!["force"]);
        assert!(init.calls[0].method);
        assert_eq!(init.calls[0].recv, vec!["self", "dev"]);
        assert_eq!(init.calls[0].args.len(), 2);
    }

    #[test]
    fn let_else_and_returns_parse() {
        let f = parse_src(
            "fn f() -> u32 { let Some(v) = g() else { return 0; }; if v > 1 { return v; } v }",
        );
        let body = f.fns[0].body.as_ref().unwrap();
        let Stmt::Let(l) = &body.stmts[0] else {
            unreachable!("let-else first");
        };
        assert_eq!(l.names, vec!["v"]);
        assert!(l.els.is_some());
        // tail expression arrives with semi == false
        let Stmt::Expr(e) = body.stmts.last().unwrap() else {
            unreachable!("tail expr last");
        };
        assert!(!e.semi);
    }

    #[test]
    fn match_arms_split_and_bind_names() {
        let f = parse_src(
            "fn f(x: Option<u32>) -> u32 { match x { Some(n) if n > 2 => n, Some(other) => { other + 1 } _ => 0, } }",
        );
        let body = f.fns[0].body.as_ref().unwrap();
        let Stmt::Expr(_) = &body.stmts[0] else {
            // match in tail position parses as a Match statement
            let Stmt::Match(m) = &body.stmts[0] else {
                unreachable!("match stmt");
            };
            assert_eq!(m.arms.len(), 3);
            assert_eq!(m.arms[0].names, vec!["n"]);
            assert_eq!(m.arms[1].names, vec!["other"]);
            assert!(m.arms[2].names.is_empty());
            return;
        };
        unreachable!("match should parse as a structured statement");
    }

    #[test]
    fn nested_fns_and_closures_do_not_lose_calls() {
        let f = parse_src(
            "fn outer() { let c = items.iter().map(|x| helper(x)).count(); fn inner() { leaf(); } }",
        );
        assert_eq!(f.fns.len(), 2);
        let outer = f.fns.iter().find(|f| f.name == "outer").unwrap();
        let body = outer.body.as_ref().unwrap();
        let Stmt::Let(l) = &body.stmts[0] else {
            unreachable!("let stmt");
        };
        let names: Vec<&str> = l
            .init
            .as_ref()
            .unwrap()
            .calls
            .iter()
            .map(|c| c.name())
            .collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"map"));
    }

    #[test]
    fn qualified_call_paths_resolve() {
        let f = parse_src("fn f() { requiem_ssd::qpair::QueuePair::new(cfg); }");
        let body = f.fns[0].body.as_ref().unwrap();
        let Stmt::Expr(e) = &body.stmts[0] else {
            unreachable!("expr stmt");
        };
        assert_eq!(
            e.expr.calls[0].path,
            vec!["requiem_ssd", "qpair", "QueuePair", "new"]
        );
        assert!(!e.expr.calls[0].method);
    }

    #[test]
    fn struct_enum_types_are_recorded() {
        let f = parse_src("pub struct WalForce { pub done: SimTime }\nenum IoStatus { Ok }");
        let names: Vec<&str> = f.types.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["WalForce", "IoStatus"]);
    }

    #[test]
    fn generic_fn_and_where_clause_parse() {
        let f = parse_src(
            "fn f<B: WalBackend>(dev: &mut B, map: BTreeMap<u64, u64>) -> Vec<IoCompletion> where B: Sized { Vec::new() }",
        );
        let fd = &f.fns[0];
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[1].name, "map");
        assert_eq!(fd.ret, vec!["Vec", "IoCompletion"]);
    }

    #[test]
    fn discard_patterns_are_detected() {
        let f = parse_src(
            "fn f() { let (done, _) = g(); let (a, _status) = g(); let WalForce { done, .. } = g(); let (x, y) = g(); let _ = g(); }",
        );
        let body = f.fns[0].body.as_ref().unwrap();
        let flags: Vec<(bool, bool)> = body
            .stmts
            .iter()
            .map(|s| {
                let Stmt::Let(l) = s else {
                    unreachable!("all stmts are lets");
                };
                (l.wild, l.discards)
            })
            .collect();
        assert_eq!(
            flags,
            vec![
                (false, true),
                (false, true),
                (false, true),
                (false, false),
                (true, false),
            ]
        );
    }

    #[test]
    fn expr_visitor_reaches_nested_branches() {
        let f = parse_src(
            "fn f() { if a() { b(); } else { match c() { Some(x) => d(x), None => {} } } while e() { g(); } }",
        );
        let body = f.fns[0].body.as_ref().unwrap();
        let mut names = Vec::new();
        body.for_each_expr(&mut |e| {
            for c in &e.calls {
                names.push(c.name().to_string());
            }
        });
        assert_eq!(names, vec!["a", "b", "c", "d", "e", "g"]);
    }

    #[test]
    fn tolerant_on_unterminated_input() {
        // must not panic or loop forever
        let _ = parse_src("fn broken(x: { let ");
        let _ = parse_src("impl { fn }");
        let _ = parse_src("match { => }");
    }
}
