//! Workspace discovery and a minimal `Cargo.toml` reader.
//!
//! The analyzer walks the workspace the same way `cargo` would resolve
//! `members = ["crates/*"]` plus the root package: every directory under
//! `crates/` with a `Cargo.toml`, and the root `src/`/`tests/`/
//! `examples/`. `vendor/` and `target/` are never entered — vendored shims
//! are third-party stand-ins, not subject to our invariants.

use std::fs;
use std::path::{Path, PathBuf};

/// Where a file sits in its crate — several rules exempt test-only code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileCat {
    /// `src/**` (including `src/bin/*`).
    Main,
    /// `tests/**` integration tests.
    TestDir,
    /// `benches/**`.
    BenchDir,
    /// `examples/**`.
    ExampleDir,
}

impl FileCat {
    /// True for categories that are wholly test/demo code.
    pub fn is_testish(self) -> bool {
        !matches!(self, FileCat::Main)
    }

    /// True for shipped `src/**` code — the scope of the semantic rules.
    pub fn is_main(self) -> bool {
        matches!(self, FileCat::Main)
    }
}

/// One `.rs` file of a crate.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes (diagnostic key).
    pub rel: String,
    /// Location category.
    pub cat: FileCat,
}

/// One dependency edge from a crate manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Dependency package name (e.g. `requiem-sim`).
    pub name: String,
    /// Line in the manifest.
    pub line: u32,
    /// True when declared under `[dev-dependencies]`.
    pub dev: bool,
}

/// One workspace member.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `[package]`.
    pub name: String,
    /// Workspace-relative manifest path.
    pub manifest_rel: String,
    /// Declared dependencies (normal + dev).
    pub deps: Vec<Dep>,
    /// All `.rs` files.
    pub files: Vec<SourceFile>,
}

/// The discovered workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Member crates (root package included, name `requiem`).
    pub crates: Vec<CrateInfo>,
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}

/// Discover every member crate under `root`.
pub fn discover(root: &Path) -> Result<Workspace, String> {
    let mut crates = Vec::new();
    // root package
    if root.join("src").is_dir() {
        crates.push(load_crate(root, root, "Cargo.toml")?);
    }
    // crates/*
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let rel = rel_path(root, &dir.join("Cargo.toml"));
            crates.push(load_crate(root, &dir, &rel)?);
        }
    }
    if crates.is_empty() {
        return Err(format!("no crates found under {}", root.display()));
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        crates,
    })
}

fn load_crate(root: &Path, dir: &Path, manifest_rel: &str) -> Result<CrateInfo, String> {
    let manifest = dir.join("Cargo.toml");
    let text =
        fs::read_to_string(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let (name, deps) = parse_manifest(&text);
    let mut files = Vec::new();
    for (sub, cat) in [
        ("src", FileCat::Main),
        ("tests", FileCat::TestDir),
        ("benches", FileCat::BenchDir),
        ("examples", FileCat::ExampleDir),
    ] {
        let d = dir.join(sub);
        if d.is_dir() {
            collect_rs(root, &d, cat, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(CrateInfo {
        name: if name.is_empty() {
            dir.file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default()
        } else {
            name
        },
        manifest_rel: manifest_rel.to_string(),
        deps,
        files,
    })
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    cat: FileCat,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for e in entries.filter_map(|e| e.ok()) {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            // `fixtures/` holds lint-rule test *data* — files that
            // deliberately violate rules and are never compiled.
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &p, cat, out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                rel: rel_path(root, &p),
                abs: p,
                cat,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Extract the package name and dependency names (with manifest lines)
/// from `Cargo.toml` text. Line-based: exactly the subset our manifests
/// use.
pub fn parse_manifest(text: &str) -> (String, Vec<Dep>) {
    #[derive(PartialEq)]
    enum Sect {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut sect = Sect::Other;
    let mut name = String::new();
    let mut deps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            sect = match line {
                "[package]" => Sect::Package,
                "[dependencies]" => Sect::Deps,
                "[dev-dependencies]" => Sect::DevDeps,
                _ => Sect::Other,
            };
            continue;
        }
        match sect {
            Sect::Package => {
                if let Some(v) = line.strip_prefix("name") {
                    let v = v.trim_start();
                    if let Some(v) = v.strip_prefix('=') {
                        name = v.trim().trim_matches('"').to_string();
                    }
                }
            }
            Sect::Deps | Sect::DevDeps => {
                // `foo = { ... }` or `foo = "1.0"` or `foo.workspace = true`
                let key: String = line
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !key.is_empty() {
                    deps.push(Dep {
                        name: key,
                        line: idx as u32 + 1,
                        dev: sect == Sect::DevDeps,
                    });
                }
            }
            Sect::Other => {}
        }
    }
    (name, deps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parse_extracts_name_and_deps() {
        let toml = r#"
[package]
name = "requiem-block"

[dependencies]
requiem-sim = { workspace = true }
serde = { workspace = true }

[dev-dependencies]
proptest = { workspace = true }
"#;
        let (name, deps) = parse_manifest(toml);
        assert_eq!(name, "requiem-block");
        let names: Vec<_> = deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("requiem-sim", false), ("serde", false), ("proptest", true)]
        );
    }

    #[test]
    fn file_categories_testish() {
        assert!(!FileCat::Main.is_testish());
        assert!(FileCat::TestDir.is_testish());
        assert!(FileCat::BenchDir.is_testish());
        assert!(FileCat::ExampleDir.is_testish());
    }
}
