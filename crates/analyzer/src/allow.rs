//! The checked-in allowlist (`lint.allow.toml`).
//!
//! Adoption is incremental: a diagnostic matched by an allowlist entry is
//! reported as *allowed* and does not fail the run. Every entry must carry
//! a `reason` — an allowlist line without a justification is itself an
//! error. Entries match on `(rule, path)`; a path ending in `/` allows a
//! whole directory.
//!
//! The format is a deliberately tiny TOML subset (array-of-tables with
//! string values) because the workspace vendors no TOML parser:
//!
//! ```toml
//! [[allow]]
//! rule = "PAN01"
//! path = "crates/ssd/src/controller/scheduler.rs"
//! reason = "panics are documented FTL-bug invariants, not I/O errors"
//! ```

use crate::diag::Diagnostic;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id this entry silences (e.g. `DET01`).
    pub rule: String,
    /// Exact file path, or directory prefix when ending in `/`.
    pub path: String,
    /// Mandatory human justification.
    pub reason: String,
    /// Line in `lint.allow.toml` (for unused-entry reporting).
    pub line: u32,
}

impl AllowEntry {
    /// Does this entry cover `d`?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule
            && (self.path == d.path || (self.path.ends_with('/') && d.path.starts_with(&self.path)))
    }
}

/// Parsed allowlist plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct AllowList {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl AllowList {
    /// An empty allowlist (used when the file does not exist).
    pub fn empty() -> Self {
        AllowList::default()
    }

    /// Parse the allowlist text. Returns `Err` with a message naming the
    /// offending line on malformed input or entries missing a reason.
    pub fn parse(text: &str) -> Result<AllowList, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut cur: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = cur.take() {
                    finish(e, &mut entries)?;
                }
                cur = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.allow.toml:{lineno}: expected `key = \"value\"`"
                ));
            };
            let key = key.trim();
            let value = value.trim();
            if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
                return Err(format!(
                    "lint.allow.toml:{lineno}: value for `{key}` must be a double-quoted string"
                ));
            }
            let value = value[1..value.len() - 1].to_string();
            let Some(e) = cur.as_mut() else {
                return Err(format!(
                    "lint.allow.toml:{lineno}: `{key}` outside an [[allow]] table"
                ));
            };
            match key {
                "rule" => e.rule = value,
                "path" => e.path = value,
                "reason" => e.reason = value,
                other => {
                    return Err(format!(
                    "lint.allow.toml:{lineno}: unknown key `{other}` (expected rule/path/reason)"
                ))
                }
            }
        }
        if let Some(e) = cur.take() {
            finish(e, &mut entries)?;
        }
        let used = vec![false; entries.len()];
        Ok(AllowList { entries, used })
    }

    /// Check a diagnostic against the allowlist, marking any matching
    /// entry as used. Returns true if the diagnostic is allowed.
    pub fn check(&mut self, d: &Diagnostic) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.matches(d) {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a diagnostic (stale allowlist lines).
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| e)
            .collect()
    }
}

fn finish(e: AllowEntry, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    if e.rule.is_empty() || e.path.is_empty() {
        return Err(format!(
            "lint.allow.toml:{}: [[allow]] entry needs both `rule` and `path`",
            e.line
        ));
    }
    if e.reason.is_empty() {
        return Err(format!(
            "lint.allow.toml:{}: [[allow]] entry for {} at {} has no `reason` — justify it",
            e.line, e.rule, e.path
        ));
    }
    entries.push(e);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line: 1,
            message: String::new(),
            suggestion: String::new(),
        }
    }

    #[test]
    fn parses_and_matches_exact_path() {
        let mut a = AllowList::parse(
            "# comment\n[[allow]]\nrule = \"PAN01\"\npath = \"crates/x/src/a.rs\"\nreason = \"documented invariant\"\n",
        )
        .unwrap();
        assert!(a.check(&diag("PAN01", "crates/x/src/a.rs")));
        assert!(!a.check(&diag("PAN01", "crates/x/src/b.rs")));
        assert!(!a.check(&diag("DET01", "crates/x/src/a.rs")));
        assert!(a.unused().is_empty());
    }

    #[test]
    fn directory_prefix_matches() {
        let mut a = AllowList::parse(
            "[[allow]]\nrule = \"DET01\"\npath = \"crates/x/src/\"\nreason = \"r\"\n",
        )
        .unwrap();
        assert!(a.check(&diag("DET01", "crates/x/src/deep/file.rs")));
        assert!(!a.check(&diag("DET01", "crates/y/src/file.rs")));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = AllowList::parse("[[allow]]\nrule = \"DET01\"\npath = \"a.rs\"\n").unwrap_err();
        assert!(err.contains("no `reason`"), "{err}");
    }

    #[test]
    fn unused_entries_are_reported() {
        let a = AllowList::parse(
            "[[allow]]\nrule = \"TIM02\"\npath = \"gone.rs\"\nreason = \"stale\"\n",
        )
        .unwrap();
        assert_eq!(a.unused().len(), 1);
    }
}
