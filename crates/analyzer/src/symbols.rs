//! Workspace-wide symbol table.
//!
//! Pass 1 of the semantic analysis parses every `Main` file in the
//! workspace ([`crate::parser`]) and registers each function signature
//! and type definition here, keyed by name. Pass 2 rules (LAY03 call
//! graph, IOS fallibility, CLK01 clock discipline) resolve call sites
//! against the table.
//!
//! Resolution is *name-based* — the analyzer has no type inference — so
//! every consumer applies the **all-definitions rule**: a call site is
//! attributed a property (fallible, time-returning, owned by crate X)
//! only when every workspace function of that name agrees on it. Names
//! that collide with common std methods are additionally stoplisted for
//! call-graph edges. This trades false negatives for near-zero false
//! positives, which a deny-by-default linter needs.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::ParsedFile;

/// One function signature, as registered from a `Main` file.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Short crate name (`ssd`, `db`, …).
    pub krate: String,
    /// Enclosing impl/trait type, if any.
    pub self_ty: Option<String>,
    /// True when declared with a `self` receiver.
    pub has_self: bool,
    /// Identifiers in the return type (empty = unit).
    pub ret: Vec<String>,
    /// Workspace-relative defining file.
    pub rel: String,
    /// Source line of the `fn`.
    pub line: u32,
}

/// Fn-name and type-name index over the whole workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Function name → every definition site.
    pub fns: BTreeMap<String, Vec<FnSig>>,
    /// Type name → crates that define it.
    pub types: BTreeMap<String, BTreeSet<String>>,
}

impl SymbolTable {
    /// Build the table from parsed `Main` files: `(short crate name,
    /// rel path, parsed)` triples. Test-only fns are included — rules
    /// filter call *sites* by test context, and a test helper's
    /// signature is still a valid resolution target.
    pub fn build<'a, I>(files: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str, &'a ParsedFile)>,
    {
        let mut t = SymbolTable::default();
        for (krate, rel, parsed) in files {
            for ty in &parsed.types {
                t.types
                    .entry(ty.name.clone())
                    .or_default()
                    .insert(krate.to_string());
            }
            for f in &parsed.fns {
                t.fns.entry(f.name.clone()).or_default().push(FnSig {
                    krate: krate.to_string(),
                    self_ty: f.self_ty.clone(),
                    has_self: f.has_self,
                    ret: f.ret.clone(),
                    rel: rel.to_string(),
                    line: f.line,
                });
            }
        }
        t
    }

    /// All definitions of `name`.
    pub fn defs(&self, name: &str) -> &[FnSig] {
        self.fns.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The single crate defining every fn named `name`, if the
    /// definitions are unanimous (the all-definitions rule).
    pub fn sole_crate(&self, name: &str) -> Option<&str> {
        let defs = self.defs(name);
        let first = defs.first()?;
        if defs.iter().all(|d| d.krate == first.krate) {
            Some(&first.krate)
        } else {
            None
        }
    }

    /// True when *every* definition of `name` is fallible — i.e. its
    /// return type carries a status the caller must consume. Unknown
    /// names are not fallible.
    pub fn all_defs_fallible(&self, name: &str) -> bool {
        let defs = self.defs(name);
        !defs.is_empty() && defs.iter().all(|d| fallible_ret(&d.ret))
    }

    /// True when *every* definition of `name` returns a new time head
    /// (see [`time_returning_ret`]). Unknown names are not
    /// time-returning.
    pub fn all_defs_time_returning(&self, name: &str) -> bool {
        let defs = self.defs(name);
        !defs.is_empty() && defs.iter().all(|d| time_returning_ret(&d.ret))
    }
}

/// A return type whose value carries an [`IoStatus`]-class outcome the
/// caller must consume: `IoStatus` itself, `WalForce` (status + done),
/// or `Vec<IoCompletion>` (each completion carries a status). Tuples
/// count through their components (`(SimTime, IoStatus)`).
pub fn fallible_ret(ret: &[String]) -> bool {
    let has = |n: &str| ret.iter().any(|r| r == n);
    has("IoStatus") || has("WalForce") || (has("Vec") && has("IoCompletion"))
}

/// A return type that establishes a *new time head* the caller is
/// expected to fold into its clock (`exec.rs`'s "pull now forward"
/// convention): a bare `SimTime`, a `WalForce` (`.done`), or
/// completion records (`IoCompletion`, `ReadDone` — each carries
/// `done: SimTime`). `Option<SimTime>` etc. count; types that merely
/// *contain* times under other names do not.
pub fn time_returning_ret(ret: &[String]) -> bool {
    let has = |n: &str| ret.iter().any(|r| r == n);
    has("SimTime") || has("WalForce") || has("IoCompletion") || has("ReadDone")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    #[test]
    fn all_defs_rules_require_unanimity() {
        let a = parse(&lex(
            "impl A { pub fn force(&mut self, now: SimTime, to: Lsn) -> WalForce { w } }",
        ));
        let b = parse(&lex("impl B { pub fn force(&self) -> u32 { 1 } }"));
        let both = SymbolTable::build(vec![
            ("db", "crates/db/src/a.rs", &a),
            ("db", "crates/db/src/b.rs", &b),
        ]);
        assert!(!both.all_defs_fallible("force"));
        let one = SymbolTable::build(vec![("db", "crates/db/src/a.rs", &a)]);
        assert!(one.all_defs_fallible("force"));
        assert!(one.all_defs_time_returning("force"));
    }

    #[test]
    fn sole_crate_needs_a_single_owner() {
        let a = parse(&lex("pub fn tick(now: SimTime) -> SimTime { now }"));
        let b = parse(&lex("pub fn tick(now: SimTime) -> SimTime { now }"));
        let t = SymbolTable::build(vec![
            ("flash", "crates/flash/src/lib.rs", &a),
            ("pcm", "crates/pcm/src/lib.rs", &b),
        ]);
        assert_eq!(t.sole_crate("tick"), None);
        let t = SymbolTable::build(vec![("flash", "crates/flash/src/lib.rs", &a)]);
        assert_eq!(t.sole_crate("tick"), Some("flash"));
    }

    #[test]
    fn fallible_and_time_classifiers() {
        assert!(fallible_ret(&["IoStatus".into()]));
        assert!(fallible_ret(&["Vec".into(), "IoCompletion".into()]));
        assert!(fallible_ret(&["SimTime".into(), "IoStatus".into()]));
        assert!(!fallible_ret(&["Vec".into(), "CommandTag".into()]));
        assert!(time_returning_ret(&["Option".into(), "SimTime".into()]));
        assert!(!time_returning_ret(&["WalStats".into()]));
    }
}
