//! A minimal Rust lexer.
//!
//! The build environment is offline and does not vendor `syn`, so the
//! analyzer tokenizes source itself. The lexer understands everything a
//! *scanner* must — line/block comments (nested), string/char/byte
//! literals, raw strings, raw identifiers, lifetimes, numbers — and emits
//! a flat token stream with line numbers. Rules pattern-match on that
//! stream; they never see text inside comments or string literals, which
//! is what makes grep-style lints misfire.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `r#type` → `type`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// Single punctuation character (`+`, `<`, `{`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String-ish literal (`"…"`, `r#"…"#`, `b"…"`, `'c'`). Text is the
    /// raw source slice including quotes.
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Source text (for `Punct` a single char; for `Ident` the name with
    /// any `r#` prefix stripped).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lex `src` into a token stream. Unterminated constructs are tolerated
/// (the remainder of the file is consumed); the lexer never panics on
/// arbitrary input.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let push = |toks: &mut Vec<Tok>, kind: TokKind, text: &str, line: u32| {
        toks.push(Tok {
            kind,
            text: text.to_string(),
            line,
        });
    };

    while i < n {
        let c = b[i];
        // whitespace
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // raw strings / raw identifiers / byte strings: r"", r#""#, br"", b"", rb is not rust
        if (c == b'r' || c == b'b') && i + 1 < n {
            // b'x' byte char
            if c == b'b' && b[i + 1] == b'\'' {
                let start = i;
                i += 2;
                i = consume_char_body(b, i, &mut line);
                push(&mut toks, TokKind::Literal, &src[start..i.min(n)], line);
                continue;
            }
            let (is_raw, skip) = if c == b'r' && (b[i + 1] == b'"' || b[i + 1] == b'#') {
                (true, 1)
            } else if c == b'b'
                && b[i + 1] == b'r'
                && i + 2 < n
                && (b[i + 2] == b'"' || b[i + 2] == b'#')
            {
                (true, 2)
            } else if c == b'b' && b[i + 1] == b'"' {
                (false, 1)
            } else {
                (false, 0)
            };
            if is_raw {
                // raw identifier r#name (no quote after hashes)
                let mut j = i + skip;
                let mut hashes = 0usize;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == b'"' {
                    // raw string: scan for "###
                    let start = i;
                    j += 1;
                    loop {
                        if j >= n {
                            break;
                        }
                        if b[j] == b'\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while k < n && h < hashes && b[k] == b'#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                    push(&mut toks, TokKind::Literal, &src[start..j.min(n)], line);
                    i = j;
                    continue;
                } else if hashes == 1 && c == b'r' && j < n && is_ident_start(b[j]) {
                    // raw identifier: emit as plain ident
                    let start = j;
                    while j < n && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    push(&mut toks, TokKind::Ident, &src[start..j], line);
                    i = j;
                    continue;
                }
                // fall through: treat as normal ident below
            } else if skip == 1 && c == b'b' {
                // b"..." byte string
                let start = i;
                i += 2;
                i = consume_str_body(b, i, &mut line);
                push(&mut toks, TokKind::Literal, &src[start..i.min(n)], line);
                continue;
            }
        }
        // string literal
        if c == b'"' {
            let start = i;
            i += 1;
            i = consume_str_body(b, i, &mut line);
            push(&mut toks, TokKind::Literal, &src[start..i.min(n)], line);
            continue;
        }
        // lifetime or char literal
        if c == b'\'' {
            // lifetime: 'ident not followed by closing quote
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == b'\'' {
                    // char literal like 'a'
                    push(&mut toks, TokKind::Literal, &src[i..j + 1], line);
                    i = j + 1;
                    continue;
                }
                push(&mut toks, TokKind::Lifetime, &src[i + 1..j], line);
                i = j;
                continue;
            }
            // char literal (possibly escaped)
            let start = i;
            i += 1;
            i = consume_char_body(b, i, &mut line);
            push(&mut toks, TokKind::Literal, &src[start..i.min(n)], line);
            continue;
        }
        // identifier / keyword
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            push(&mut toks, TokKind::Ident, &src[start..i], line);
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_cont(b[i])) {
                i += 1;
            }
            // fractional part — but not `..` (range) and not `0.method()`
            if i + 1 < n && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
            }
            push(&mut toks, TokKind::Number, &src[start..i], line);
            continue;
        }
        // punctuation: single char
        push(&mut toks, TokKind::Punct, &src[i..i + 1], line);
        i += 1;
    }
    toks
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_cont(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Consume a (byte-)string body starting after the opening quote; returns
/// the index just past the closing quote.
fn consume_str_body(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Consume a (byte-)char body starting after the opening quote; returns
/// the index just past the closing quote.
fn consume_char_body(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Mark tokens that live inside `#[cfg(test)]` items (`mod` blocks or
/// single `fn`s). Rules that exempt test code consult this mask. Files
/// under `tests/`, `benches/`, or `examples/` are handled by file
/// category instead.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // skip this attribute and any further attributes, then find
            // the item's opening brace and mark the whole block.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attr(toks, j);
            }
            // find the opening brace of the item (mod / fn / impl …)
            let mut k = j;
            let mut depth_paren = 0i32;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') {
                    depth_paren += 1;
                } else if t.is_punct(')') {
                    depth_paren -= 1;
                } else if t.is_punct('{') && depth_paren == 0 {
                    break;
                } else if t.is_punct(';') && depth_paren == 0 {
                    // e.g. `#[cfg(test)] mod tests;` — nothing inline
                    break;
                }
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct('{') {
                let end = match_brace(toks, k);
                for slot in mask.iter_mut().take(end.min(toks.len() - 1) + 1).skip(i) {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// True when `toks[i..]` starts the exact attribute `#[cfg(test)]`.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let want: &[(&str, TokKind)] = &[
        ("#", TokKind::Punct),
        ("[", TokKind::Punct),
        ("cfg", TokKind::Ident),
        ("(", TokKind::Punct),
        ("test", TokKind::Ident),
        (")", TokKind::Punct),
        ("]", TokKind::Punct),
    ];
    if i + want.len() > toks.len() {
        return false;
    }
    want.iter()
        .enumerate()
        .all(|(k, (txt, kind))| toks[i + k].kind == *kind && toks[i + k].text == *txt)
}

/// Skip one attribute `#[...]` starting at index `i` (which must be `#`);
/// returns the index just past the closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if j >= toks.len() || !(toks[j].is_punct('[') || toks[j].is_punct('!')) {
        return i + 1;
    }
    if toks[j].is_punct('!') {
        j += 1; // inner attribute #![...]
    }
    if j >= toks.len() || !toks[j].is_punct('[') {
        return j;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_vanish() {
        let toks = lex("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;");
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
        assert_eq!(toks.iter().filter(|t| t.is_ident("let")).count(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = lex("fn f<'a>(s: &'a str) -> &'a str { r#\"Instant::now()\"#; s }");
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            3
        );
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks = lex("let c = 'x'; let nl = '\\n'; let l: &'static str = \"\";");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            3
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["static"]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 { let f = 1.5e9; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e9"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn real() { map.iter(); }\n#[cfg(test)]\nmod tests { fn t() { map.iter(); } }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let iters: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("iter"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(iters, vec![false, true]);
    }

    #[test]
    fn cfg_test_fn_is_masked() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { x.drain(); }\nfn real() { }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let drain = toks.iter().position(|t| t.is_ident("drain")).unwrap();
        let real = toks.iter().rposition(|t| t.is_ident("real")).unwrap();
        assert!(mask[drain]);
        assert!(!mask[real]);
    }
}
