//! IOS01/IOS02 — fallibility discipline.
//!
//! Since PR 4 every completion carries a typed [`IoStatus`], and PR 7's
//! `WalBackend::force` returns a `WalForce { done, status }`. The whole
//! point of that plumbing is that an `Unrecoverable` can never vanish
//! silently — so an expression producing one of the status-carrying
//! types must be *matched or explicitly consumed*:
//!
//! * **IOS01** — a fallible call in statement position with its result
//!   dropped on the floor (`self.wal_dev.force(now, to);`).
//! * **IOS02** — a fallible result bound but never consumed: `let _ =`,
//!   a `_`-prefixed binding, a never-mentioned-again name, a pattern
//!   that discards components (`let (done, _) = …`), or a `.done`
//!   projection that throws the status away
//!   (`let t = dev.force(now, to).done;`).
//!
//! Fallible means the return type carries `IoStatus`, `WalForce`, or
//! `Vec<IoCompletion>` — decided by the all-definitions rule over the
//! workspace symbol table, so a name is only treated as fallible when
//! *every* fn of that name is.

use super::SemCtx;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::parser::{Block, Call, ExprInfo, Stmt};
use crate::symbols::fallible_ret;

/// Run IOS01/IOS02 on one file's parsed tree.
pub fn check(sem: &SemCtx<'_>) -> Vec<Diagnostic> {
    let ctx = sem.file;
    if !ctx.cat.is_main() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &sem.parsed.fns {
        if sem.fn_in_test(f) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        walk(sem, body, body, &mut out);
    }
    out
}

/// The fallible return idents of `call`, by the all-definitions rule,
/// or `None` when the call is not (provably) fallible. When the call is
/// `Type::name(…)`-qualified, definitions on that type take precedence.
fn fallible_call(sem: &SemCtx<'_>, call: &Call) -> Option<Vec<String>> {
    let defs = sem.symbols.defs(call.name());
    if defs.is_empty() {
        return None;
    }
    // prefer exact-type matches for qualified calls
    if call.path.len() >= 2 {
        let qual = &call.path[call.path.len() - 2];
        let typed: Vec<_> = defs
            .iter()
            .filter(|d| d.self_ty.as_deref() == Some(qual.as_str()))
            .collect();
        if !typed.is_empty() {
            return if typed.iter().all(|d| fallible_ret(&d.ret)) {
                Some(typed[0].ret.clone())
            } else {
                None
            };
        }
    }
    if defs.iter().all(|d| fallible_ret(&d.ret)) {
        Some(defs[0].ret.clone())
    } else {
        None
    }
}

/// Human-readable return type for messages: `WalForce`, `IoStatus`, or
/// `Vec<IoCompletion>`.
fn ret_desc(ret: &[String]) -> &'static str {
    if ret.iter().any(|r| r == "WalForce") {
        "WalForce"
    } else if ret.iter().any(|r| r == "IoStatus") {
        "IoStatus"
    } else {
        "Vec<IoCompletion>"
    }
}

/// The call the whole expression evaluates to, if the expression *ends*
/// with that call's `)` — i.e. the call's result is the statement's
/// value.
fn trailing_call<'a>(toks: &[Tok], e: &'a ExprInfo) -> Option<&'a Call> {
    if e.hi == 0 {
        return None;
    }
    let last = e.hi - 1;
    if !toks.get(last).map(|t| t.is_punct(')')).unwrap_or(false) {
        return None;
    }
    e.calls.iter().find(|c| c.rparen == last)
}

/// Trailing `call(…).done` projection: returns the call when the
/// expression ends with a `.done` field read off it.
fn trailing_done_projection<'a>(toks: &[Tok], e: &'a ExprInfo) -> Option<&'a Call> {
    if e.hi < 3 {
        return None;
    }
    let last = e.hi - 1;
    if !toks.get(last).map(|t| t.is_ident("done")).unwrap_or(false)
        || !toks.get(last - 1).map(|t| t.is_punct('.')).unwrap_or(false)
        || !toks.get(last - 2).map(|t| t.is_punct(')')).unwrap_or(false)
    {
        return None;
    }
    e.calls.iter().find(|c| c.rparen == last - 2)
}

/// True when `toks[lo..hi]` contains a plain assignment `=` — not a
/// comparison (`==`, `<=`, …), not `=>`, and not the tail of `..=`. An
/// assignment means the statement's trailing call feeds the assignment
/// target (`status = status.combine(c.status);`), so its result is
/// consumed, not dropped.
fn has_assignment(toks: &[Tok], lo: usize, hi: usize) -> bool {
    let hi = hi.min(toks.len());
    for i in lo..hi {
        if toks[i].is_punct('=') {
            let prev_op = i > lo
                && (toks[i - 1].is_punct('=')
                    || toks[i - 1].is_punct('!')
                    || toks[i - 1].is_punct('<')
                    || toks[i - 1].is_punct('>')
                    || toks[i - 1].is_punct('.'));
            let next_op = toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
            if !prev_op && !next_op {
                return true;
            }
        }
    }
    false
}

/// True when ident `name` occurs in `toks[lo..hi]`.
fn mentions(toks: &[Tok], lo: usize, hi: usize, name: &str) -> bool {
    toks[lo..hi.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == name)
}

/// True when `name.status` occurs in `toks[lo..hi]`, or `name` is used
/// *whole* (not as a `name.field` projection) — either way the status
/// component reaches the consumer.
fn status_reaches_consumer(toks: &[Tok], lo: usize, hi: usize, name: &str) -> bool {
    let hi = hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == name {
            match toks.get(i + 1) {
                Some(n) if n.is_punct('.') => {
                    if toks
                        .get(i + 2)
                        .map(|x| x.is_ident("status"))
                        .unwrap_or(false)
                    {
                        return true; // name.status
                    }
                }
                _ => return true, // used whole: moved, matched, returned
            }
        }
        i += 1;
    }
    false
}

fn walk(sem: &SemCtx<'_>, body: &Block, block: &Block, out: &mut Vec<Diagnostic>) {
    let toks = sem.file.toks;
    for s in &block.stmts {
        match s {
            Stmt::Expr(e) if e.semi => {
                if let Some(call) = trailing_call(toks, &e.expr) {
                    if has_assignment(toks, e.expr.lo, call.tok) {
                        // `x = worse_status(x, st);` — consumed by the
                        // assignment target
                        continue;
                    }
                    if let Some(ret) = fallible_call(sem, call) {
                        out.push(diag(
                            "IOS01",
                            sem,
                            call.line,
                            format!(
                                "result of fallible call `{}` (returns {}) is silently dropped",
                                call.path_str(),
                                ret_desc(&ret)
                            ),
                            "bind it and consume the status (match it or route it to note_status)",
                        ));
                    }
                }
            }
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    // `….force(now, to).done` — status projected away
                    if let Some(call) = trailing_done_projection(toks, init) {
                        if let Some(ret) = fallible_call(sem, call) {
                            out.push(diag(
                                "IOS02",
                                sem,
                                call.line,
                                format!(
                                    "`.done` projection on fallible call `{}` discards its {} status",
                                    call.path_str(),
                                    ret_desc(&ret)
                                ),
                                "bind the whole value and consume `.status` too",
                            ));
                        }
                    } else if let Some(call) = trailing_call(toks, init) {
                        if let Some(ret) = fallible_call(sem, call) {
                            let desc = ret_desc(&ret);
                            if l.wild || l.discards || l.names.iter().any(|n| n.starts_with('_')) {
                                out.push(diag(
                                    "IOS02",
                                    sem,
                                    l.line,
                                    format!(
                                        "fallible result of `{}` ({desc}) is bound to a discard pattern",
                                        call.path_str()
                                    ),
                                    "bind every component and consume the status",
                                ));
                            } else if desc == "WalForce" && l.names.len() == 1 {
                                // field-precise: WalForce is {done, status};
                                // require the status side to reach a consumer
                                if !status_reaches_consumer(toks, init.hi, body.close, &l.names[0])
                                {
                                    out.push(diag(
                                        "IOS02",
                                        sem,
                                        l.line,
                                        format!(
                                            "`{}` binds a WalForce but its `.status` is never consumed",
                                            l.names[0]
                                        ),
                                        "consume `.status` (e.g. note_force / note_status) before using `.done`",
                                    ));
                                }
                            } else if !l
                                .names
                                .iter()
                                .any(|n| mentions(toks, init.hi, body.close, n))
                            {
                                out.push(diag(
                                    "IOS02",
                                    sem,
                                    l.line,
                                    format!(
                                        "fallible result of `{}` ({desc}) is bound but never consumed",
                                        call.path_str()
                                    ),
                                    "match the status or route it to a consumer",
                                ));
                            }
                        }
                    }
                    if let Some(els) = &l.els {
                        walk(sem, body, els, out);
                    }
                }
            }
            Stmt::If(i) => {
                walk(sem, body, &i.then, out);
                if let Some(e) = &i.els {
                    walk_stmt(sem, body, e, out);
                }
            }
            Stmt::Match(m) => {
                for arm in &m.arms {
                    if let crate::parser::ArmBody::Block(b) = &arm.body {
                        walk(sem, body, b, out);
                    }
                }
            }
            Stmt::Loop(l) => walk(sem, body, &l.body, out),
            Stmt::Block(b) => walk(sem, body, b, out),
            _ => {}
        }
    }
}

fn walk_stmt(sem: &SemCtx<'_>, body: &Block, s: &Stmt, out: &mut Vec<Diagnostic>) {
    match s {
        Stmt::Block(b) => walk(sem, body, b, out),
        Stmt::If(i) => {
            walk(sem, body, &i.then, out);
            if let Some(e) = &i.els {
                walk_stmt(sem, body, e, out);
            }
        }
        _ => {}
    }
}

fn diag(
    rule: &'static str,
    sem: &SemCtx<'_>,
    line: u32,
    message: String,
    help: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        path: sem.file.rel.to_string(),
        line,
        message,
        suggestion: help.to_string(),
    }
}
