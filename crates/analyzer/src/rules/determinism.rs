//! DET01/DET02 — determinism.
//!
//! The paper's myths are falsifiable only because experiments are
//! bit-reproducible: CI diffs double runs of exp1/exp4/exp11. Two things
//! silently break that guarantee:
//!
//! * **Iterating a `HashMap`/`HashSet`** (DET01). `RandomState` seeds the
//!   hasher per process, so iteration order differs between runs even on
//!   the same machine. Any iteration-order-dependent computation in the
//!   simulated stack makes output diffs flap. Point lookups are fine —
//!   only iteration (`iter`, `keys`, `values`, `drain`, `retain`,
//!   `into_iter`, `for … in map`) is flagged. Fix: `BTreeMap`/`BTreeSet`,
//!   or drain through a sorted `Vec`.
//! * **Ambient authority** (DET02): `Instant::now`, `SystemTime`,
//!   `thread_rng`, `RandomState` pull wall-clock time or OS entropy into
//!   the simulation. All time must come from [`SimTime`] and all
//!   randomness from the seeded, splittable `SimRng`.
//!
//! DET01 skips `#[cfg(test)]` regions and `tests/`/`benches/`/`examples/`
//! (a test counting occurrences through a HashMap is order-insensitive);
//! DET02 applies everywhere — a flaky test is still a broken promise.

use super::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Crates on the simulated I/O path (everything that feeds experiment
/// output). The analyzer itself is host tooling and exempt.
const SIM_PATH: &[&str] = &[
    "sim", "flash", "pcm", "ssd", "block", "iface", "db", "workload", "bench", "requiem",
];

/// Iteration-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Ambient-authority identifiers banned on the sim path.
const AMBIENT: &[&str] = &["Instant", "SystemTime", "thread_rng", "RandomState"];

/// Run DET01/DET02 on one file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !SIM_PATH.contains(&ctx.short()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = ctx.toks;

    // DET02: ambient authority, everywhere in the file.
    for t in toks {
        if t.kind == TokKind::Ident && AMBIENT.contains(&t.text.as_str()) {
            out.push(Diagnostic {
                rule: "DET02",
                path: ctx.rel.to_string(),
                line: t.line,
                message: format!("ambient authority `{}` on the sim path", t.text),
                suggestion: "derive all time from SimTime and all randomness from SimRng"
                    .to_string(),
            });
        }
    }

    // DET01: iteration over hash-typed bindings (non-test code only).
    let hash_idents = collect_hash_idents(toks);
    if hash_idents.is_empty() {
        return out;
    }
    let mut i = 0usize;
    while i < toks.len() {
        if ctx.in_test(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        // `name . iter_method (`
        if t.kind == TokKind::Ident && hash_idents.contains(t.text.as_str()) {
            if let (Some(dot), Some(m), Some(paren)) =
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            {
                if dot.is_punct('.')
                    && m.kind == TokKind::Ident
                    && ITER_METHODS.contains(&m.text.as_str())
                    && paren.is_punct('(')
                {
                    out.push(Diagnostic {
                        rule: "DET01",
                        path: ctx.rel.to_string(),
                        line: m.line,
                        message: format!(
                            "`.{}()` on HashMap/HashSet `{}`: iteration order is randomized per process",
                            m.text, t.text
                        ),
                        suggestion: format!(
                            "store `{}` in a BTreeMap/BTreeSet, or drain through a sorted Vec",
                            t.text
                        ),
                    });
                }
            }
        }
        // `for pat in <expr mentioning a hash ident> {`
        if t.is_ident("for") {
            // skip `for<'a>` in higher-ranked bounds
            if toks.get(i + 1).map(|t| t.is_punct('<')).unwrap_or(false) {
                i += 1;
                continue;
            }
            if let Some((expr_start, body)) = for_in_expr(toks, i) {
                for j in expr_start..body {
                    let e = &toks[j];
                    if e.kind == TokKind::Ident && hash_idents.contains(e.text.as_str()) {
                        // direct method calls are reported by the scan
                        // when it reaches them (we do not skip the expr);
                        // only report the loop when the map itself is
                        // iterated
                        let next_is_call =
                            toks.get(j + 1).map(|t| t.is_punct('.')).unwrap_or(false)
                                && toks
                                    .get(j + 2)
                                    .map(|t| {
                                        t.kind == TokKind::Ident
                                            && ITER_METHODS.contains(&t.text.as_str())
                                    })
                                    .unwrap_or(false);
                        if !next_is_call {
                            out.push(Diagnostic {
                                rule: "DET01",
                                path: ctx.rel.to_string(),
                                line: e.line,
                                message: format!(
                                    "`for … in` over HashMap/HashSet `{}`: iteration order is randomized per process",
                                    e.text
                                ),
                                suggestion: format!(
                                    "store `{}` in a BTreeMap/BTreeSet, or collect+sort before looping",
                                    e.text
                                ),
                            });
                        }
                        break;
                    }
                }
                // fall through token by token so `map.iter()` inside the
                // loop header still hits the direct-call check above
            }
        }
        i += 1;
    }
    out
}

/// Names bound to a `HashMap`/`HashSet` anywhere in the file: struct
/// fields and let-bindings with an ascribed hash type, and `let x =
/// HashMap::new()`-style initializers.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : … HashMap/HashSet …` (field, param, or ascribed let)
        if toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && !toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
            && !toks
                .get(i.wrapping_sub(1))
                .map(|p| p.is_punct(':'))
                .unwrap_or(false)
        {
            if type_mentions_hash(toks, i + 2) {
                names.insert(t.text.as_str());
            }
            continue;
        }
        // `let [mut] name = … HashMap/HashSet :: …`
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !toks.get(j + 1).map(|t| t.is_punct('=')).unwrap_or(false) {
                continue; // ascribed lets handled by the `:` arm above
            }
            let mut k = j + 2;
            let mut depth = 0i32;
            while k < toks.len() && k < j + 60 {
                let tk = &toks[k];
                if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') {
                    depth += 1;
                } else if tk.is_punct(')') || tk.is_punct(']') || tk.is_punct('}') {
                    depth -= 1;
                } else if tk.is_punct(';') && depth <= 0 {
                    break;
                } else if tk.kind == TokKind::Ident
                    && (tk.text == "HashMap" || tk.text == "HashSet")
                {
                    names.insert(name.text.as_str());
                    break;
                }
                k += 1;
            }
        }
    }
    names
}

/// Does the type expression starting at `start` mention `HashMap` or
/// `HashSet` before ending (at `=`, `,`, `;`, `)`, `{`, or depth-0 `>`)?
fn type_mentions_hash(toks: &[Tok], start: usize) -> bool {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() && j < start + 40 {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0
            && (t.is_punct('=')
                || t.is_punct(',')
                || t.is_punct(';')
                || t.is_punct(')')
                || t.is_punct('{'))
        {
            return false;
        } else if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            return true;
        }
        j += 1;
    }
    false
}

/// For a `for` keyword at `i`, return `(expr_start, body_brace_index)` of
/// the `for pat in expr {` form.
fn for_in_expr(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    // find `in` at pattern depth 0
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() && j < i + 40 {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        }
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_ident("in") {
        return None;
    }
    let expr_start = j + 1;
    let mut k = expr_start;
    let mut depth = 0i32;
    while k < toks.len() && k < expr_start + 80 {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some((expr_start, k));
        }
        k += 1;
    }
    None
}
