//! LAY03 — the *call graph* respects the Figure-2 DAG.
//!
//! LAY01 polices `Cargo.toml` and LAY02 polices `requiem_*` tokens, but
//! neither sees an edge that arrives through a re-export (the root
//! crate `requiem` re-exports the whole stack and its name carries no
//! `requiem_` prefix) or through a method call on a value handed down
//! from above. LAY03 closes that hole: every call site in `Main`,
//! non-test code is resolved against the workspace symbol table
//! ([`crate::symbols`]) and the resulting cross-crate edge must point
//! *down* the DAG.
//!
//! Resolution is deliberately conservative (deny-by-default linters
//! cannot afford false positives):
//!
//! * `Type::assoc(…)` / `Enum::Variant(…)` — resolved when the type is
//!   defined by exactly one workspace crate.
//! * `recv.method(…)` — resolved when every workspace fn of that name
//!   lives in one crate, takes `self`, and the name is not on the
//!   common-method stoplist (`new`, `len`, `push`, … collide with std).
//! * `func(…)` — resolved through this file's `use` imports, else like
//!   methods.
//! * `requiem_x::…` paths are *skipped* — LAY02 already flags every
//!   such token, and double-reporting helps no one.

use std::collections::BTreeSet;

use super::layering::allowed_for;
use super::SemCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::Call;

/// Method/function names too generic to attribute to a crate by name
/// alone: they collide with std or appear on unrelated local types.
const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "clear",
    "drain",
    "fmt",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "take",
    "replace",
    "min",
    "max",
    "abs",
    "entry",
    "keys",
    "values",
    "append",
    "extend",
    "sort",
    "retain",
    "split",
    "join",
    "write",
    "read",
    "flush",
    "reset",
    "start",
    "stop",
    "run",
    "id",
    "name",
    "init",
    "build",
    "open",
    "close",
    "apply",
    "merge",
    "update",
    "add",
    "sub",
    "total",
    "count",
    "sum",
    "clamp",
    "checked_sub",
    "saturating_sub",
    "eq",
    "cmp",
    "hash",
    "drop",
    "send",
    "recv",
    "lock",
    "borrow",
    "borrow_mut",
];

/// Run LAY03 on one file's parsed tree.
pub fn check(sem: &SemCtx<'_>) -> Vec<Diagnostic> {
    let ctx = sem.file;
    if !ctx.cat.is_main() {
        return Vec::new();
    }
    let me = ctx.short();
    let Some(allowed) = allowed_for(me) else {
        return Vec::new(); // LAY01 reports unknown crates
    };
    // Idents visible in this file: a method edge is only trusted when a
    // receiver type of that method is at least *named* here.
    let idents: BTreeSet<&str> = ctx
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    let mut out = Vec::new();
    for f in &sem.parsed.fns {
        if sem.fn_in_test(f) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        body.for_each_expr(&mut |e| {
            for call in &e.calls {
                let Some((target, how)) = resolve(sem, call, &idents) else {
                    continue;
                };
                if target == me || allowed.contains(&target.as_str()) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "LAY03",
                    path: ctx.rel.to_string(),
                    line: call.line,
                    message: format!(
                        "call `{}` resolves to crate `{}` ({how}), which is not below `{me}` in the Figure-2 DAG",
                        call.path_str(),
                        target
                    ),
                    suggestion: format!(
                        "route through a lower layer or move the callee down (allowed for {me}: {})",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                });
            }
        });
    }
    out
}

/// Resolve a call site to the crate that owns the callee, with a short
/// description of *how* it resolved (for the diagnostic). `None` means
/// unresolvable — no edge is recorded.
fn resolve(
    sem: &SemCtx<'_>,
    call: &Call,
    idents: &BTreeSet<&str>,
) -> Option<(String, &'static str)> {
    let name = call.name();
    let first = call.path.first().map(|s| s.as_str()).unwrap_or("");
    // `requiem_x::…` — LAY02's territory.
    if first.starts_with("requiem_") {
        return None;
    }
    // `requiem::…` — the root re-export: resolve the second segment as a
    // workspace type.
    if first == "requiem" && call.path.len() >= 3 {
        return resolve_type(sem, &call.path[1]).map(|c| (c, "via the `requiem` re-export"));
    }
    if call.path.len() >= 2 {
        // `Type::assoc(…)` / `Enum::Variant(…)`: the segment before the
        // callee names the owner.
        let qual = &call.path[call.path.len() - 2];
        if qual.chars().next().map(|c| c.is_ascii_uppercase()) == Some(true) {
            return resolve_type(sem, qual).map(|c| (c, "type owner"));
        }
        // `module::func(…)`: resolve the head through this file's
        // imports.
        if let Some(c) = resolve_import(sem, first) {
            return Some((c, "imported module"));
        }
        return None;
    }
    // Single-segment *plain* calls reach another crate only through an
    // import (a bare `helper()` otherwise names something in this crate),
    // so they resolve via `use` declarations or not at all.
    if !call.method {
        if let Some(c) = resolve_import(sem, name) {
            return Some((c, "imported fn"));
        }
        return None;
    }
    // Method calls: workspace-unique name, off the stoplist, every def a
    // method, and at least one receiver type named in this file —
    // otherwise the receiver is far more likely a std or local type that
    // happens to share a method name.
    if STOPLIST.contains(&name) {
        return None;
    }
    let defs = sem.symbols.defs(name);
    if defs.is_empty() || !defs.iter().all(|d| d.has_self) {
        return None;
    }
    if !defs
        .iter()
        .any(|d| d.self_ty.as_deref().is_some_and(|t| idents.contains(t)))
    {
        return None;
    }
    sem.symbols
        .sole_crate(name)
        .map(|c| (c.to_string(), "sole defining crate"))
}

/// The single crate defining type `ty`, if unambiguous.
fn resolve_type(sem: &SemCtx<'_>, ty: &str) -> Option<String> {
    let crates = sem.symbols.types.get(ty)?;
    if crates.len() == 1 {
        crates.iter().next().cloned()
    } else {
        None
    }
}

/// Resolve `head` through this file's `use` declarations to a workspace
/// crate (short name): `use requiem_flash::array;` makes `array` an
/// import of `flash`; `use requiem::Ssd;` resolves `Ssd` through the
/// symbol table.
fn resolve_import(sem: &SemCtx<'_>, head: &str) -> Option<String> {
    for u in &sem.parsed.uses {
        if u.alias != head {
            continue;
        }
        let root = u.segs.first()?;
        if let Some(short) = root.strip_prefix("requiem_") {
            return Some(short.to_string());
        }
        if root == "requiem" {
            // re-export: resolve the imported name as a type
            return resolve_type(sem, u.segs.last()?);
        }
    }
    None
}
