//! The rule families.
//!
//! | id    | family        | invariant |
//! |-------|---------------|-----------|
//! | DET01 | determinism   | no iteration over `HashMap`/`HashSet` in sim-path code |
//! | DET02 | determinism   | no ambient authority: `Instant`, `SystemTime`, `thread_rng`, `RandomState` |
//! | LAY01 | layering      | `Cargo.toml` deps respect the Figure-2 DAG |
//! | LAY02 | layering      | `use requiem_*` paths respect the Figure-2 DAG |
//! | LAY03 | layering      | the resolved *call graph* respects the Figure-2 DAG |
//! | PRB01 | probe         | no raw `enter_background`/`exit_background` outside `sim` (RAII guard only) |
//! | PRB02 | probe         | a file opening probe spans must also close or detach them |
//! | PRB03 | probe         | spans must be closed/detached/aborted on *every* exit path |
//! | IOS01 | fallibility   | a fallible result (`IoStatus`/`WalForce`/`Vec<IoCompletion>`) must not be dropped in statement position |
//! | IOS02 | fallibility   | a fallible result must be consumed once bound — no `_`, unused names, or `.done`-only projections |
//! | CLK01 | clock         | a time binding is stale after a device-driving call until folded forward |
//! | TIM01 | time hygiene  | no arithmetic on raw `as_nanos()` values outside `sim` |
//! | TIM02 | time hygiene  | no `*_ns`-suffixed raw integer/float declarations outside `sim` |
//! | PAN01 | panic policy  | no `unwrap`/`expect`/`panic!` in controller/qpair/mapping code |
//! | UNS01 | unsafe policy | no `unsafe` anywhere in the workspace |
//! | UNS02 | unsafe policy | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! The [`RULES`] table below is the single registry: it drives the
//! per-file and semantic passes ([`run_file`], [`run_sem`]) *and* the
//! CLI's `--explain <RULE>` output — rationale and the bad/ok examples
//! live next to the check that enforces them.

pub mod callgraph;
pub mod clock;
pub mod determinism;
pub mod fallibility;
pub mod layering;
pub mod panic_policy;
pub mod probe;
pub mod timing;
pub mod unsafety;

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::parser::{FnDef, ParsedFile};
use crate::symbols::SymbolTable;
use crate::workspace::{CrateInfo, FileCat};

/// Everything a file-scoped rule needs.
pub struct FileCtx<'a> {
    /// Package name of the owning crate (e.g. `requiem-ssd`).
    pub crate_name: &'a str,
    /// Workspace-relative path.
    pub rel: &'a str,
    /// File category.
    pub cat: FileCat,
    /// Token stream.
    pub toks: &'a [Tok],
    /// Parallel mask: true where the token is inside `#[cfg(test)]`.
    pub test_mask: &'a [bool],
}

impl FileCtx<'_> {
    /// True when the token at `i` is test-only code (either the whole
    /// file is a test/bench/example, or the token sits in `#[cfg(test)]`).
    pub fn in_test(&self, i: usize) -> bool {
        self.cat.is_testish() || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Short crate name: `requiem-ssd` → `ssd`, `requiem` → `requiem`.
    pub fn short(&self) -> &str {
        short_name(self.crate_name)
    }
}

/// Everything a semantic (parser-backed) rule needs: the file context
/// plus its parsed item tree and the workspace symbol table.
pub struct SemCtx<'a> {
    /// Token-level file context.
    pub file: &'a FileCtx<'a>,
    /// Parsed item tree of this file.
    pub parsed: &'a ParsedFile,
    /// Workspace-wide symbol table (pass 1).
    pub symbols: &'a SymbolTable,
}

impl SemCtx<'_> {
    /// True when the fn is test-only code.
    pub fn fn_in_test(&self, f: &FnDef) -> bool {
        self.file.in_test(f.fn_tok)
    }

    /// Source line of token `i` (0 when out of range).
    pub fn line_of(&self, i: usize) -> u32 {
        self.file.toks.get(i).map(|t| t.line).unwrap_or(0)
    }
}

/// Short crate name: strip the `requiem-` prefix.
pub fn short_name(pkg: &str) -> &str {
    pkg.strip_prefix("requiem-").unwrap_or(pkg)
}

/// How a registry entry's check runs.
pub enum Check {
    /// Token-level pass over one file.
    File(fn(&FileCtx<'_>) -> Vec<Diagnostic>),
    /// Parser-backed pass over one file.
    Sem(fn(&SemCtx<'_>) -> Vec<Diagnostic>),
    /// Emitted by the pass registered under another rule id (one module
    /// pass reports several ids).
    WithPass(&'static str),
    /// Crate-scoped; dispatched from [`run_crate`], not per file.
    CrateScoped,
}

/// One registry entry: the check plus everything `--explain` prints.
pub struct Rule {
    /// Stable id (`LAY03`).
    pub id: &'static str,
    /// Family name (`layering`).
    pub family: &'static str,
    /// One-line invariant.
    pub summary: &'static str,
    /// Why the invariant exists in *this* codebase.
    pub rationale: &'static str,
    /// Minimal code that fires the rule.
    pub bad: &'static str,
    /// The corrected twin.
    pub ok: &'static str,
    /// How the check runs.
    pub check: Check,
}

/// The rule registry — checks and `--explain` source of truth.
pub const RULES: &[Rule] = &[
    Rule {
        id: "DET01",
        family: "determinism",
        summary: "no iteration over HashMap/HashSet in sim-path code",
        rationale: "Hash iteration order is randomized per process; any ordering leak into \
                    event times or output breaks bit-identical replay, the property every \
                    myth-busting experiment rests on.",
        bad: "for (lbn, page) in self.resident.iter() { self.evict(lbn, page); } // HashMap",
        ok: "for (lbn, page) in self.resident.iter() { self.evict(lbn, page); } // BTreeMap",
        check: Check::File(determinism::check),
    },
    Rule {
        id: "DET02",
        family: "determinism",
        summary: "no ambient authority: Instant, SystemTime, thread_rng, RandomState",
        rationale: "Wall-clock reads and OS-seeded RNGs smuggle nondeterminism past the \
                    simulated clock; all time comes from SimTime, all randomness from the \
                    seeded SimRng.",
        bad: "let t0 = std::time::Instant::now();",
        ok: "let t0 = self.now; // SimTime from the event clock",
        check: Check::WithPass("DET01"),
    },
    Rule {
        id: "LAY01",
        family: "layering",
        summary: "Cargo.toml deps respect the Figure-2 DAG",
        rationale: "The workspace mirrors the paper's Figure 2 (db→block→iface/ssd→flash/pcm→sim); \
                    an upward manifest edge collapses the layering argument the reproduction \
                    makes.",
        bad: "# crates/flash/Cargo.toml\n[dependencies]\nrequiem-ssd = { path = \"../ssd\" }",
        ok: "# crates/flash/Cargo.toml\n[dependencies]\nrequiem-sim = { path = \"../sim\" }",
        check: Check::CrateScoped,
    },
    Rule {
        id: "LAY02",
        family: "layering",
        summary: "use requiem_* paths respect the Figure-2 DAG",
        rationale: "A fully-qualified path can smuggle in an edge the manifest hides (e.g. \
                    through a transitive dep); the same DAG is therefore enforced on source \
                    tokens.",
        bad: "// in crates/flash\nuse requiem_ssd::qpair::QueuePair;",
        ok: "// in crates/flash\nuse requiem_sim::time::SimTime;",
        check: Check::File(layering::check_uses),
    },
    Rule {
        id: "LAY03",
        family: "layering",
        summary: "the resolved call graph respects the Figure-2 DAG",
        rationale: "Re-exports (the root crate `requiem` has no requiem_ prefix) and method \
                    calls on values handed down from above create edges neither LAY01 nor \
                    LAY02 can see; the symbol-table-resolved call graph closes the hole.",
        bad: "// in crates/flash\nfn drain(q: &mut QueuePair) { q.submit_batch(now, &cmds); } // resolves to ssd",
        ok: "// in crates/ssd\nfn drain(q: &mut QueuePair) { q.submit_batch(now, &cmds); }",
        check: Check::Sem(callgraph::check),
    },
    Rule {
        id: "PRB01",
        family: "probe",
        summary: "no raw enter_background/exit_background outside sim (RAII guard only)",
        rationale: "An early return between the raw pair wedges the probe bus in background \
                    mode and silently un-attributes every later span.",
        bad: "probe.enter_background();\ndo_gc();\nprobe.exit_background();",
        ok: "let _bg = probe.background();\ndo_gc();",
        check: Check::File(probe::check),
    },
    Rule {
        id: "PRB02",
        family: "probe",
        summary: "a file opening probe spans must also close or detach them",
        rationale: "The span-tiling invariant (spans tile [submit, done)) only holds when \
                    every opened command is eventually closed or detached; a file that only \
                    opens is leaking records.",
        bad: "let scope = probe.open_command(\"read\", now);\n// no close/detach anywhere in the file",
        ok: "let scope = probe.open_command(\"read\", now);\nscope.close(done);",
        check: Check::WithPass("PRB01"),
    },
    Rule {
        id: "PRB03",
        family: "probe",
        summary: "spans must be closed, detached, or aborted on every exit path",
        rationale: "PRB02 checks files; PRB03 checks paths. A `?` or `return` while a scope \
                    is live silently drop-aborts the command record — error paths must say \
                    `scope.abort()` out loud so the discard is a decision, not an accident.",
        bad: "let scope = probe.open_command(\"io\", now);\nlet c = self.dispatch(now, req)?; // ? drops scope\nscope.close(c.done);",
        ok: "let scope = probe.open_command(\"io\", now);\nlet c = match self.dispatch(now, req) {\n    Ok(c) => c,\n    Err(e) => { scope.abort(); return Err(e); }\n};\nscope.close(c.done);",
        check: Check::Sem(probe::check_paths),
    },
    Rule {
        id: "IOS01",
        family: "fallibility",
        summary: "a fallible result must not be dropped in statement position",
        rationale: "Every completion carries a typed IoStatus precisely so an Unrecoverable \
                    can never vanish; a bare `dev.force(now, to);` throws the status away \
                    unseen.",
        bad: "self.wal_dev.force(now, to);",
        ok: "let f = self.wal_dev.force(now, to);\nself.note_force(f.status);",
        check: Check::Sem(fallibility::check),
    },
    Rule {
        id: "IOS02",
        family: "fallibility",
        summary: "a bound fallible result must actually be consumed",
        rationale: "`let _ = force(…)`, a never-read binding, or a `.done`-only projection is \
                    IOS01 with extra steps — the status still dies unobserved.",
        bad: "let t = self.wal_dev.force(now, to).done; // status projected away",
        ok: "let f = self.wal_dev.force(now, to);\nself.note_force(f.status);\nlet t = f.done;",
        check: Check::WithPass("IOS01"),
    },
    Rule {
        id: "CLK01",
        family: "clock",
        summary: "a time binding goes stale after a device-driving call until folded forward",
        rationale: "exec.rs's event clock must stay globally monotone: each device interaction \
                    returns the device's new time head, and submitting the next command with \
                    the old binding schedules it in the device's past — breaking deterministic \
                    replay.",
        bad: "let f = self.wal_dev.force(end, to);\nself.note_force(f.status);\nlet done = self.backend.steal_write(end, page); // stale `end`",
        ok: "let f = self.wal_dev.force(end, to);\nself.note_force(f.status);\nend = end.max(f.done);\nlet done = self.backend.steal_write(end, page);",
        check: Check::Sem(clock::check),
    },
    Rule {
        id: "TIM01",
        family: "time hygiene",
        summary: "no arithmetic on raw as_nanos() values outside sim",
        rationale: "Raw nanosecond arithmetic bypasses SimTime/SimDuration's overflow and \
                    unit discipline; only the sim kernel may unpack time.",
        bad: "let gap = done.as_nanos() - start.as_nanos();",
        ok: "let gap = done.since(start);",
        check: Check::File(timing::check),
    },
    Rule {
        id: "TIM02",
        family: "time hygiene",
        summary: "no *_ns-suffixed raw integer/float declarations outside sim",
        rationale: "A `foo_ns: u64` field is raw-nanosecond arithmetic waiting to happen; \
                    carry SimDuration instead and convert at the sim boundary.",
        bad: "let mean_gap_ns = 1e9 / iops;",
        ok: "let gap = sim_rng_interarrival.sample(&mut rng); // SimDuration",
        check: Check::WithPass("TIM01"),
    },
    Rule {
        id: "PAN01",
        family: "panic policy",
        summary: "no unwrap/expect/panic! in controller/qpair/mapping/exec code",
        rationale: "The protected modules sit under the fallible-I/O contract (PR 4): media \
                    errors must surface as typed IoStatus, never as a host-process abort. \
                    `unreachable!` remains legal for provable invariants (let-else guarded).",
        bad: "let log = h.log_of(lbn).expect(\"just appended\");",
        ok: "let Some(log) = h.log_of(lbn) else {\n    unreachable!(\"append_log bound this lbn\")\n};",
        check: Check::File(panic_policy::check),
    },
    Rule {
        id: "UNS01",
        family: "unsafe policy",
        summary: "no unsafe anywhere in the workspace",
        rationale: "The simulator needs no unsafe; any appearance is either a mistake or a \
                    perf experiment that belongs behind a reviewed feature gate.",
        bad: "let p = unsafe { ptr.read() };",
        ok: "let p = slice[i];",
        check: Check::File(unsafety::check_tokens),
    },
    Rule {
        id: "UNS02",
        family: "unsafe policy",
        summary: "every crate root carries #![forbid(unsafe_code)]",
        rationale: "UNS01 is a lint; the compiler attribute makes it load-bearing even for \
                    code paths the analyzer cannot see.",
        bad: "// src/lib.rs\n//! my crate",
        ok: "// src/lib.rs\n//! my crate\n#![forbid(unsafe_code)]",
        check: Check::CrateScoped,
    },
];

/// Look up a rule by id (case-insensitive).
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

/// Run every token-level file rule on one file.
pub fn run_file(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in RULES {
        if let Check::File(f) = r.check {
            out.extend(f(ctx));
        }
    }
    out
}

/// Run every parser-backed semantic rule on one file.
pub fn run_sem(sem: &SemCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in RULES {
        if let Check::Sem(f) = r.check {
            out.extend(f(sem));
        }
    }
    out
}

/// Run every crate-scoped rule on one crate.
pub fn run_crate(info: &CrateInfo, root_toks: Option<&[Tok]>, root_rel: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(layering::check_manifest(info));
    out.extend(unsafety::check_crate_root(info, root_toks, root_rel));
    out
}
