//! The rule families.
//!
//! | id    | family        | invariant |
//! |-------|---------------|-----------|
//! | DET01 | determinism   | no iteration over `HashMap`/`HashSet` in sim-path code |
//! | DET02 | determinism   | no ambient authority: `Instant`, `SystemTime`, `thread_rng`, `RandomState` |
//! | LAY01 | layering      | `Cargo.toml` deps respect the Figure-2 DAG |
//! | LAY02 | layering      | `use requiem_*` paths respect the Figure-2 DAG |
//! | PRB01 | probe         | no raw `enter_background`/`exit_background` outside `sim` (RAII guard only) |
//! | PRB02 | probe         | a file opening probe spans must also close or detach them |
//! | TIM01 | time hygiene  | no arithmetic on raw `as_nanos()` values outside `sim` |
//! | TIM02 | time hygiene  | no `*_ns`-suffixed raw integer/float declarations outside `sim` |
//! | PAN01 | panic policy  | no `unwrap`/`expect`/`panic!` in controller/qpair/mapping code |
//! | UNS01 | unsafe policy | no `unsafe` anywhere in the workspace |
//! | UNS02 | unsafe policy | every crate root carries `#![forbid(unsafe_code)]` |

pub mod determinism;
pub mod layering;
pub mod panic_policy;
pub mod probe;
pub mod timing;
pub mod unsafety;

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::workspace::{CrateInfo, FileCat};

/// Everything a file-scoped rule needs.
pub struct FileCtx<'a> {
    /// Package name of the owning crate (e.g. `requiem-ssd`).
    pub crate_name: &'a str,
    /// Workspace-relative path.
    pub rel: &'a str,
    /// File category.
    pub cat: FileCat,
    /// Token stream.
    pub toks: &'a [Tok],
    /// Parallel mask: true where the token is inside `#[cfg(test)]`.
    pub test_mask: &'a [bool],
}

impl FileCtx<'_> {
    /// True when the token at `i` is test-only code (either the whole
    /// file is a test/bench/example, or the token sits in `#[cfg(test)]`).
    pub fn in_test(&self, i: usize) -> bool {
        self.cat.is_testish() || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Short crate name: `requiem-ssd` → `ssd`, `requiem` → `requiem`.
    pub fn short(&self) -> &str {
        short_name(self.crate_name)
    }
}

/// Short crate name: strip the `requiem-` prefix.
pub fn short_name(pkg: &str) -> &str {
    pkg.strip_prefix("requiem-").unwrap_or(pkg)
}

/// Run every file-scoped rule on one file.
pub fn run_file(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(determinism::check(ctx));
    out.extend(layering::check_uses(ctx));
    out.extend(probe::check(ctx));
    out.extend(timing::check(ctx));
    out.extend(panic_policy::check(ctx));
    out.extend(unsafety::check_tokens(ctx));
    out
}

/// Run every crate-scoped rule on one crate.
pub fn run_crate(info: &CrateInfo, root_toks: Option<&[Tok]>, root_rel: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(layering::check_manifest(info));
    out.extend(unsafety::check_crate_root(info, root_toks, root_rel));
    out
}
