//! PAN01 — panic policy for the controller core.
//!
//! The SSD controller, queue-pair engine, FTL mapping schemes, and the
//! database's completion-driven state machines sit under every
//! experiment; a stray `unwrap()` on an I/O-dependent value turns a
//! modelling gap into a process abort halfway through a million-op run.
//! In these files, fallible outcomes must surface as
//! `SsdError`/`Result`/`IoStatus` so the caller can report them, and
//! *invariant* violations must use `assert!`/`debug_assert!` with a
//! message naming the invariant (those are self-documenting and
//! greppable).
//!
//! `unwrap`, `expect`, `panic!`, `todo!`, `unimplemented!` are flagged in
//! non-test code. Documented legacy invariants are allowlisted in
//! `lint.allow.toml` with their justification.

use super::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

/// Files under the panic policy.
///
/// The db executor and prefetcher are transaction state machines driven
/// by device completions: a panic there aborts the closed loop with
/// transactions mid-flight, so fallible paths must surface through
/// `IoStatus` like the controller core they sit on. The whole of
/// `crates/iface` joined the set when the cooperating-logs storage
/// manager started driving the nameless device under OLTP load: a
/// device-full or stale-name condition there must come back as a typed
/// `IoStatus`/`NamelessError`, never a host abort. The shard
/// coordinator and two-phase ledger joined with the executor-shard
/// split: a failed prepare force is a NO vote that must come back as a
/// typed abort (`TxnDecision::Aborted`), never a host abort — a panic
/// there would take down N executors mid-two-phase.
fn protected(rel: &str) -> bool {
    rel.starts_with("crates/ssd/src/controller/")
        || rel.starts_with("crates/ssd/src/mapping/")
        || rel.starts_with("crates/iface/src")
        || rel == "crates/ssd/src/qpair.rs"
        || rel == "crates/db/src/exec.rs"
        || rel == "crates/db/src/prefetch.rs"
        || rel == "crates/db/src/shard.rs"
        || rel == "crates/db/src/ledger.rs"
}

/// Run PAN01 on one file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !protected(ctx.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false) =>
            {
                out.push(Diagnostic {
                    rule: "PAN01",
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: format!("`.{}()` in controller/qpair/mapping code", t.text),
                    suggestion: "propagate an SsdError, or assert the invariant with a message"
                        .to_string(),
                });
            }
            "panic" | "todo" | "unimplemented"
                if toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false) =>
            {
                out.push(Diagnostic {
                    rule: "PAN01",
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: format!("`{}!` in controller/qpair/mapping code", t.text),
                    suggestion: "propagate an SsdError, or assert the invariant with a message"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
    out
}
