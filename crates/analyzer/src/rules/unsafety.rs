//! UNS01/UNS02 — unsafe policy.
//!
//! The whole stack is a simulation: there is no FFI, no shared-memory
//! concurrency, no reason for `unsafe`. UNS01 flags any `unsafe` token in
//! workspace code; UNS02 requires every crate root to carry
//! `#![forbid(unsafe_code)]` so the compiler enforces the same policy
//! even when the linter is not running. A crate that ever genuinely
//! needs unsafe documents the exception in `lint.allow.toml`.

use super::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::workspace::CrateInfo;

/// UNS01: no `unsafe` tokens anywhere (tests included).
pub fn check_tokens(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in ctx.toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(Diagnostic {
                rule: "UNS01",
                path: ctx.rel.to_string(),
                line: t.line,
                message: "`unsafe` in a simulation workspace".to_string(),
                suggestion: "remove it, or allowlist the file with a justification".to_string(),
            });
        }
    }
    out
}

/// UNS02: the crate root (src/lib.rs, else src/main.rs) must contain
/// `#![forbid(unsafe_code)]`.
pub fn check_crate_root(
    info: &CrateInfo,
    root_toks: Option<&[Tok]>,
    root_rel: &str,
) -> Vec<Diagnostic> {
    let Some(toks) = root_toks else {
        return Vec::new(); // no lib.rs/main.rs — nothing to check
    };
    let has = toks.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
    });
    if has {
        Vec::new()
    } else {
        vec![Diagnostic {
            rule: "UNS02",
            path: root_rel.to_string(),
            line: 1,
            message: format!("crate `{}` root lacks `#![forbid(unsafe_code)]`", info.name),
            suggestion: "add `#![forbid(unsafe_code)]` to the crate root attributes".to_string(),
        }]
    }
}
