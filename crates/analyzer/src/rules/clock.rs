//! CLK01 — clock discipline on the device-driving path.
//!
//! The completion-driven executor (PR 5) runs on an *event clock*: every
//! synchronous device interaction returns the time at which the device
//! finished, and the caller must fold that result into its clock
//! (`self.now = self.now.max(done)`, `end = end.max(f.done)`) before
//! driving the device again — `exec.rs` calls this "pulling now
//! forward". Forgetting the fold submits the next command *in the
//! device's past*, which silently breaks global submission monotonicity
//! and, with it, deterministic replay.
//!
//! CLK01 automates the convention: inside a fn, once a time binding
//! (`now`/`end`/any `SimTime` parameter or snapshot, including
//! `self.now`) has been passed to a *device-driving* call — one whose
//! return type establishes a new time head (`SimTime`, `WalForce`,
//! `IoCompletion`, `ReadDone`) — the binding is **stale** until
//! reassigned. Passing a stale binding to another device-driving call is
//! the flagged hazard. Measurement uses stay legal: probe spans,
//! `since()`, histograms and plain arithmetic never flag, because only
//! device-driving calls are checked.
//!
//! The rule is **opt-in per fn**: it only fires inside a fn that
//! *rebinds* a clock somewhere (`now = …`, `end = end.max(…)`,
//! `self.now = …`) — i.e. a fn that demonstrably follows the
//! pull-now-forward convention. Fns that never rebind (a submit shim
//! that stamps every completion with its single `now` argument, a
//! same-instant retry loop) use one instant *by design*, and flagging
//! them would police a convention they never adopted.
//!
//! Branches are analyzed path-locally and merged optimistically (a
//! binding is stale after an `if` only if both arms left it stale), and
//! loop bodies are analyzed once — first-iteration semantics. Both
//! choices trade false negatives for zero false positives, the right
//! trade for a deny-by-default gate.

use super::SemCtx;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::parser::{ArmBody, Block, Call, ExprInfo, Stmt};
use std::collections::BTreeMap;

/// Crates on the device-driving path.
const SCOPE: &[&str] = &["db", "block", "iface", "ssd"];

/// Time-arithmetic / accessor methods that *combine* clocks rather than
/// drive the device — never treated as device-driving even though they
/// return `SimTime`.
const TIME_ARITH: &[&str] = &[
    "max",
    "min",
    "since",
    "elapsed",
    "saturating_sub",
    "checked_sub",
    "mul_f64",
    "from_nanos",
    "from_micros",
    "from_millis",
    "from_secs",
    "clamp",
    "plus",
    "add",
    "sub",
    "zero",
    "now",
];

/// Staleness state of one clock binding.
#[derive(Clone, Debug)]
struct ClockVar {
    stale: Option<Staleness>,
}

/// Why a binding is stale.
#[derive(Clone, Debug)]
struct Staleness {
    /// The device-driving call that produced a newer head.
    by: String,
    /// Its line.
    line: u32,
}

type State = BTreeMap<String, ClockVar>;

/// Run CLK01 on one file's parsed tree.
pub fn check(sem: &SemCtx<'_>) -> Vec<Diagnostic> {
    let ctx = sem.file;
    if !ctx.cat.is_main() || !SCOPE.contains(&ctx.short()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &sem.parsed.fns {
        if sem.fn_in_test(f) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut state: State = State::new();
        for p in &f.params {
            if p.ty.len() == 1 && p.ty[0] == "SimTime" && !p.name.is_empty() {
                state.insert(p.name.clone(), ClockVar { stale: None });
            }
        }
        // `self.now` is always a candidate clock head
        state.insert("self.now".to_string(), ClockVar { stale: None });
        let mut fn_out = Vec::new();
        let mut rebinds = false;
        walk(sem, body, &mut state, &mut fn_out, &mut rebinds);
        // opt-in: only fns that rebind a clock follow the convention
        if rebinds {
            out.append(&mut fn_out);
        }
    }
    out
}

/// True when the call's return type establishes a new time head, by the
/// all-definitions rule (type-qualified calls prefer exact-type defs).
fn device_driving(sem: &SemCtx<'_>, call: &Call) -> bool {
    let name = call.name();
    if TIME_ARITH.contains(&name) {
        return false;
    }
    if call.path.len() >= 2 {
        let qual = &call.path[call.path.len() - 2];
        let typed: Vec<_> = sem
            .symbols
            .defs(name)
            .iter()
            .filter(|d| d.self_ty.as_deref() == Some(qual.as_str()))
            .cloned()
            .collect();
        if !typed.is_empty() {
            return typed
                .iter()
                .all(|d| crate::symbols::time_returning_ret(&d.ret));
        }
    }
    sem.symbols.all_defs_time_returning(name)
}

/// Clock bindings (including `self.now`) appearing in `toks[lo..hi]`.
fn clocks_in(toks: &[Tok], lo: usize, hi: usize, state: &State) -> Vec<String> {
    let hi = hi.min(toks.len());
    let mut found = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if t.text == "self"
                && toks.get(i + 1).map(|n| n.is_punct('.')).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_ident("now")).unwrap_or(false)
            {
                if state.contains_key("self.now") && !found.iter().any(|f| f == "self.now") {
                    found.push("self.now".to_string());
                }
                i += 3;
                continue;
            }
            // a bare clock ident — but not a field of something else
            // (`f.done` where `done` is a clock name would mislead)
            let preceded_by_dot = i > 0 && toks[i - 1].is_punct('.');
            if !preceded_by_dot
                && state.contains_key(&t.text)
                && !found.iter().any(|f| f == &t.text)
            {
                found.push(t.text.clone());
            }
        }
        i += 1;
    }
    found
}

/// Process one expression: flag stale clock uses in device-driving
/// calls, then mark clocks passed to device-driving calls stale.
fn scan_expr(
    sem: &SemCtx<'_>,
    e: &ExprInfo,
    state: &mut State,
    out: &mut Vec<Diagnostic>,
    rebinds: &mut bool,
) {
    let toks = sem.file.toks;
    for call in &e.calls {
        if !device_driving(sem, call) {
            continue;
        }
        let mut passed = Vec::new();
        for (alo, ahi) in &call.args {
            passed.extend(clocks_in(toks, *alo, *ahi, state));
        }
        // 1. uses of stale clocks → diagnostic
        for c in &passed {
            if let Some(st) = state.get(c).and_then(|v| v.stale.clone()) {
                out.push(Diagnostic {
                    rule: "CLK01",
                    path: sem.file.rel.to_string(),
                    line: call.line,
                    message: format!(
                        "time binding `{c}` is stale here: `{}` (line {}) returned a newer time head that was never folded in",
                        st.by, st.line
                    ),
                    suggestion: format!(
                        "pull the clock forward first (`{c} = {c}.max(…)`) as exec.rs's event-clock convention requires"
                    ),
                });
            }
        }
        // 2. this call produces a newer head → the clocks it consumed go
        // stale until reassigned
        for c in passed {
            if let Some(v) = state.get_mut(&c) {
                if v.stale.is_none() {
                    v.stale = Some(Staleness {
                        by: call.path_str(),
                        line: call.line,
                    });
                }
            }
        }
    }
    // assignments refresh: `c = …` / `self.now = …` anywhere in the expr
    refresh_assignments(toks, e.lo, e.hi, state, rebinds);
}

/// Detect `<clock> = …` (simple assignment, not `==`) and mark the
/// clock fresh again. Sets `rebinds` whenever a tracked clock is
/// assigned — the signal that the enclosing fn follows the
/// pull-now-forward convention at all.
fn refresh_assignments(toks: &[Tok], lo: usize, hi: usize, state: &mut State, rebinds: &mut bool) {
    let hi = hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let (key, eq_at) = if t.text == "self"
                && toks.get(i + 1).map(|n| n.is_punct('.')).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_ident("now")).unwrap_or(false)
            {
                ("self.now".to_string(), i + 3)
            } else {
                (t.text.clone(), i + 1)
            };
            let is_assign = toks.get(eq_at).map(|n| n.is_punct('=')).unwrap_or(false)
                && !toks.get(eq_at + 1).map(|n| n.is_punct('=')).unwrap_or(false)
                && !toks
                    .get(eq_at.wrapping_sub(1))
                    .map(|n| {
                        n.is_punct('=') || n.is_punct('!') || n.is_punct('<') || n.is_punct('>')
                    })
                    .unwrap_or(false)
                // exclude `…day == key` forms handled above and struct
                // field inits `now: x` are `:` not `=`, nothing to do
                ;
            if is_assign && eq_at == i + 3 {
                // self.now = …
                if let Some(v) = state.get_mut(&key) {
                    v.stale = None;
                    *rebinds = true;
                }
            } else if is_assign && eq_at == i + 1 && state.contains_key(&key) {
                // plain ident; make sure it is not a field access
                // (`x.end = …` must not refresh `end`)
                let preceded_by_dot = i > 0 && toks[i - 1].is_punct('.');
                if !preceded_by_dot {
                    if let Some(v) = state.get_mut(&key) {
                        v.stale = None;
                        *rebinds = true;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Optimistic merge: stale only where *every* branch left it stale.
fn merge(into: &mut State, branches: Vec<State>) {
    for (name, var) in into.iter_mut() {
        let all_stale = branches
            .iter()
            .all(|b| b.get(name).map(|v| v.stale.is_some()).unwrap_or(false));
        if !all_stale {
            var.stale = None;
        } else if var.stale.is_none() {
            var.stale = branches
                .iter()
                .find_map(|b| b.get(name).and_then(|v| v.stale.clone()));
        }
    }
}

fn walk(
    sem: &SemCtx<'_>,
    block: &Block,
    state: &mut State,
    out: &mut Vec<Diagnostic>,
    rebinds: &mut bool,
) {
    let toks = sem.file.toks;
    for s in &block.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    scan_expr(sem, init, state, out, rebinds);
                    // a snapshot of a clock is itself a clock:
                    // `let end = self.now;` / `let t = now;` /
                    // `let t = now.max(x);`
                    if l.names.len() == 1 && !l.wild {
                        let snap = clocks_in(toks, init.lo, init.hi, state);
                        let pure_time = init.calls.iter().all(|c| TIME_ARITH.contains(&c.name()));
                        if !snap.is_empty() && pure_time {
                            state.insert(l.names[0].clone(), ClockVar { stale: None });
                        }
                    }
                }
                if let Some(els) = &l.els {
                    let mut b = state.clone();
                    walk(sem, els, &mut b, out, rebinds); // diverges; state unchanged
                }
            }
            Stmt::Expr(e) => scan_expr(sem, &e.expr, state, out, rebinds),
            Stmt::Return(r) => {
                if let Some(e) = &r.expr {
                    scan_expr(sem, e, state, out, rebinds);
                }
            }
            Stmt::If(i) => {
                scan_expr(sem, &i.cond, state, out, rebinds);
                let mut then_state = state.clone();
                walk(sem, &i.then, &mut then_state, out, rebinds);
                let mut branches = vec![then_state];
                if let Some(e) = &i.els {
                    let mut else_state = state.clone();
                    walk_stmt(sem, e, &mut else_state, out, rebinds);
                    branches.push(else_state);
                } else {
                    branches.push(state.clone()); // fall-through arm
                }
                merge(state, branches);
            }
            Stmt::Match(m) => {
                scan_expr(sem, &m.scrutinee, state, out, rebinds);
                let mut branches = Vec::new();
                for arm in &m.arms {
                    let mut astate = state.clone();
                    match &arm.body {
                        ArmBody::Block(b) => walk(sem, b, &mut astate, out, rebinds),
                        ArmBody::Expr(e) => scan_expr(sem, e, &mut astate, out, rebinds),
                    }
                    branches.push(astate);
                }
                if !branches.is_empty() {
                    merge(state, branches);
                }
            }
            Stmt::Loop(l) => {
                if let Some(h) = &l.header {
                    scan_expr(sem, h, state, out, rebinds);
                }
                let mut b = state.clone();
                walk(sem, &l.body, &mut b, out, rebinds);
                merge(state, vec![b, state.clone()]);
            }
            Stmt::Block(b) => walk(sem, b, state, out, rebinds),
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Item => {}
        }
    }
}

fn walk_stmt(
    sem: &SemCtx<'_>,
    s: &Stmt,
    state: &mut State,
    out: &mut Vec<Diagnostic>,
    rebinds: &mut bool,
) {
    match s {
        Stmt::Block(b) => walk(sem, b, state, out, rebinds),
        Stmt::If(i) => {
            scan_expr(sem, &i.cond, state, out, rebinds);
            let mut then_state = state.clone();
            walk(sem, &i.then, &mut then_state, out, rebinds);
            let mut branches = vec![then_state];
            if let Some(e) = &i.els {
                let mut else_state = state.clone();
                walk_stmt(sem, e, &mut else_state, out, rebinds);
                branches.push(else_state);
            } else {
                branches.push(state.clone());
            }
            merge(state, branches);
        }
        _ => {}
    }
}
