//! TIM01/TIM02 — time hygiene.
//!
//! All latencies in the stack are integer nanoseconds behind the
//! newtypes `SimTime`/`SimDuration` (crate `sim`); that is what makes
//! experiments reproducible to the nanosecond across platforms. Raw
//! nanosecond arithmetic outside `sim` reintroduces two failure modes:
//! unit confusion (adding a count to a duration) and ad-hoc float
//! rounding that differs between call sites.
//!
//! * TIM01 flags arithmetic applied directly to an `.as_nanos()` result
//!   (`a.as_nanos() + b.as_nanos()`, `.as_nanos() * n`). The typed
//!   operators (`+`, `-`, `* u64`, `/ u64`, `SimDuration / SimDuration
//!   → f64`, `mul_f64`) cover these cases without leaving the newtype.
//! * TIM02 flags declarations of `*_ns`/`*_nanos`-suffixed bindings —
//!   raw integer/float nanosecond carriers. Accumulate `SimDuration`s
//!   instead.
//!
//! Scope: sim-path crates except `sim` itself (which implements the
//! types) and `bench` (report formatting legitimately unpacks counts at
//! the JSON/table boundary). Test regions are exempt (asserts compare
//! magnitudes).

use super::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

const SCOPE: &[&str] = &["flash", "pcm", "ssd", "block", "iface", "db", "workload"];

const ARITH: &[char] = &['+', '-', '*', '/', '%'];

/// Run TIM01/TIM02 on one file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !SCOPE.contains(&ctx.short()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // TIM01: `as_nanos ( )` [as ident] followed by an arithmetic op
        if t.text == "as_nanos"
            && toks.get(i + 1).map(|x| x.is_punct('(')).unwrap_or(false)
            && toks.get(i + 2).map(|x| x.is_punct(')')).unwrap_or(false)
        {
            let mut j = i + 3;
            // optional `as u128` / `as f64` cast
            if toks.get(j).map(|x| x.is_ident("as")).unwrap_or(false) {
                j += 2;
            }
            if let Some(op) = toks.get(j) {
                if op.kind == TokKind::Punct
                    && op.text.len() == 1
                    && ARITH.contains(&op.text.chars().next().unwrap())
                    // `/` could begin `//`? comments are already stripped;
                    // but `*` deref and `-` unary cannot follow `)` — safe.
                    && !(op.is_punct('-')
                        && toks.get(j + 1).map(|x| x.is_punct('>')).unwrap_or(false))
                {
                    out.push(Diagnostic {
                        rule: "TIM01",
                        path: ctx.rel.to_string(),
                        line: t.line,
                        message: "arithmetic on a raw `.as_nanos()` value outside `sim`"
                            .to_string(),
                        suggestion: "use SimDuration/SimTime operators (+, -, *u64, /u64, \
                                     mul_f64, duration/duration) and convert at the edges only"
                            .to_string(),
                    });
                }
            }
        }
        // TIM02: declaration of a raw `_ns`/`_nanos` binding
        if (t.text.ends_with("_ns") || t.text.ends_with("_nanos"))
            && t.text != "as_nanos"
            && t.text != "from_nanos"
        {
            let decl_field = toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                && !toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
                && !(i > 0 && toks[i - 1].is_punct(':'));
            let decl_let = i > 0
                && (toks[i - 1].is_ident("let") || toks[i - 1].is_ident("mut"))
                && toks
                    .get(i + 1)
                    .map(|n| n.is_punct('=') || n.is_punct(':'))
                    .unwrap_or(false);
            if decl_field || decl_let {
                out.push(Diagnostic {
                    rule: "TIM02",
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: format!("raw nanosecond binding `{}` declared outside `sim`", t.text),
                    suggestion: "carry a SimDuration/SimTime instead of a raw ns count".to_string(),
                });
            }
        }
    }
    out
}
