//! PRB01/PRB02 — probe-span discipline.
//!
//! The observability bus (PR 1/2) has a hard invariant: spans attributed
//! to a command must tile its `[submit, done)` interval, and a command
//! opened on the bus must eventually be closed (or detached for
//! out-of-order completion and resumed later). Two usage patterns defeat
//! the RAII protections:
//!
//! * calling `enter_background`/`exit_background` by hand (PRB01) — an
//!   early return between the pair wedges the bus in background mode and
//!   silently un-attributes every later span. `Probe::background()`
//!   returns a guard; use it.
//! * opening command scopes in a file that never closes/detaches any
//!   (PRB02) — the drop-aborts protection turns those commands into
//!   discarded records, which is a bug, not a feature. Pairing is checked
//!   at file granularity: a file with `open_command`/`resume` calls must
//!   also contain `close` or `detach` calls.

use super::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

/// Run PRB01/PRB02 on one file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    // The bus implementation itself manipulates background depth.
    if ctx.rel.starts_with("crates/sim/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = ctx.toks;

    let mut opens: Vec<(u32, &str)> = Vec::new();
    let mut closes = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        let method = i > 0 && toks[i - 1].is_punct('.');
        if !called {
            continue;
        }
        match t.text.as_str() {
            "enter_background" | "exit_background" => {
                out.push(Diagnostic {
                    rule: "PRB01",
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: format!(
                        "raw `{}()`: an early return between the pair wedges the probe bus",
                        t.text
                    ),
                    suggestion: "use the RAII guard: `let _bg = probe.background();`".to_string(),
                });
            }
            "open_command" | "resume" if method => opens.push((t.line, "open")),
            "close" | "detach" if method => closes += 1,
            _ => {}
        }
    }
    if let Some((line, _)) = opens.first() {
        if closes == 0 {
            out.push(Diagnostic {
                rule: "PRB02",
                path: ctx.rel.to_string(),
                line: *line,
                message: format!(
                    "{} probe command scope(s) opened but this file never calls `close` or `detach`",
                    opens.len()
                ),
                suggestion:
                    "close the scope with its completion time, or detach it for later resume"
                        .to_string(),
            });
        }
    }
    out
}
