//! PRB01/PRB02/PRB03 — probe-span discipline.
//!
//! The observability bus (PR 1/2) has a hard invariant: spans attributed
//! to a command must tile its `[submit, done)` interval, and a command
//! opened on the bus must eventually be closed (or detached for
//! out-of-order completion and resumed later). Two usage patterns defeat
//! the RAII protections:
//!
//! * calling `enter_background`/`exit_background` by hand (PRB01) — an
//!   early return between the pair wedges the bus in background mode and
//!   silently un-attributes every later span. `Probe::background()`
//!   returns a guard; use it.
//! * opening command scopes in a file that never closes/detaches any
//!   (PRB02) — the drop-aborts protection turns those commands into
//!   discarded records, which is a bug, not a feature. Pairing is checked
//!   at file granularity: a file with `open_command`/`resume` calls must
//!   also contain `close` or `detach` calls.
//!
//! PRB03 is the control-flow-aware deepening of PRB02: a
//! `CommandScope` binding opened on a path must be closed, detached, or
//! explicitly aborted on *every* exit of that path — each `return`,
//! each `?`, and the fall-through end of the fn. The drop-abort in
//! `CommandScope` exists as a backstop, but relying on it turns a
//! command into a silently discarded record; error paths must say
//! `scope.abort()` out loud. A span escaping by value (moved into a
//! call, a struct, or the return value) transfers the obligation and
//! resolves the binding.

use super::{FileCtx, SemCtx};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::{ArmBody, Block, Call, ExprInfo, Stmt};

/// Run PRB01/PRB02 on one file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    // The bus implementation itself manipulates background depth.
    if ctx.rel.starts_with("crates/sim/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = ctx.toks;

    let mut opens: Vec<(u32, &str)> = Vec::new();
    let mut closes = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        let method = i > 0 && toks[i - 1].is_punct('.');
        if !called {
            continue;
        }
        match t.text.as_str() {
            "enter_background" | "exit_background" => {
                out.push(Diagnostic {
                    rule: "PRB01",
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: format!(
                        "raw `{}()`: an early return between the pair wedges the probe bus",
                        t.text
                    ),
                    suggestion: "use the RAII guard: `let _bg = probe.background();`".to_string(),
                });
            }
            "open_command" | "resume" if method => opens.push((t.line, "open")),
            "close" | "detach" if method => closes += 1,
            _ => {}
        }
    }
    if let Some((line, _)) = opens.first() {
        if closes == 0 {
            out.push(Diagnostic {
                rule: "PRB02",
                path: ctx.rel.to_string(),
                line: *line,
                message: format!(
                    "{} probe command scope(s) opened but this file never calls `close` or `detach`",
                    opens.len()
                ),
                suggestion:
                    "close the scope with its completion time, or detach it for later resume"
                        .to_string(),
            });
        }
    }
    out
}

/// A live span binding.
#[derive(Clone, Debug)]
struct LiveSpan {
    name: String,
    opened_line: u32,
}

/// Run PRB03 on one file's parsed tree.
pub fn check_paths(sem: &SemCtx<'_>) -> Vec<Diagnostic> {
    let ctx = sem.file;
    if !ctx.cat.is_main() || ctx.rel.starts_with("crates/sim/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &sem.parsed.fns {
        if sem.fn_in_test(f) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut live: Vec<LiveSpan> = Vec::new();
        walk(sem, body, &mut live, &mut out);
        for s in &live {
            out.push(span_diag(
                sem,
                sem.line_of(body.close),
                &s.name,
                s.opened_line,
                "the end of the fn",
            ));
        }
    }
    out
}

fn span_diag(sem: &SemCtx<'_>, line: u32, name: &str, opened_line: u32, at: &str) -> Diagnostic {
    Diagnostic {
        rule: "PRB03",
        path: sem.file.rel.to_string(),
        line,
        message: format!(
            "span `{name}` (opened line {opened_line}) is still live at {at}; the drop-abort discards its command record"
        ),
        suggestion: format!("close, detach, or `{name}.abort()` on this path before exiting"),
    }
}

/// True when the call opens a command scope.
fn is_open(c: &Call) -> bool {
    matches!(c.name(), "open_command" | "resume")
}

/// True when the call resolves a scope (consumes it).
fn is_resolve(c: &Call) -> bool {
    matches!(c.name(), "close" | "detach" | "abort")
}

/// Scan one expression:
/// 1. resolve/escape live spans mentioned in it,
/// 2. flag `?` exits while spans are live,
/// 3. flag anonymous opens that are dropped on the spot.
///
/// Returns the open call whose scope the *whole expression* evaluates to
/// (for `let` bindings), if any.
fn scan_expr<'a>(
    sem: &SemCtx<'_>,
    e: &'a ExprInfo,
    live: &mut Vec<LiveSpan>,
    out: &mut Vec<Diagnostic>,
) -> Option<&'a Call> {
    let toks = sem.file.toks;
    // 1. resolutions and escapes
    let mut i = e.lo;
    while i < e.hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if let Some(pos) = live.iter().position(|s| s.name == t.text) {
                let preceded_by_dot = i > e.lo && toks[i - 1].is_punct('.');
                if !preceded_by_dot {
                    match toks.get(i + 1) {
                        Some(n) if n.is_punct('.') => {
                            // `scope.close(…)` / `scope.abort()` resolve;
                            // `scope.id()` and field reads do not
                            if toks
                                .get(i + 2)
                                .map(|m| {
                                    m.kind == TokKind::Ident
                                        && matches!(m.text.as_str(), "close" | "detach" | "abort")
                                })
                                .unwrap_or(false)
                            {
                                live.remove(pos);
                            }
                        }
                        _ => {
                            // used whole: moved into a call/struct/return
                            live.remove(pos);
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // 2. `?` exits (skip `?Sized` bounds — they never appear in bodies,
    // but be safe)
    if !live.is_empty() {
        let mut j = e.lo;
        while j < e.hi.min(toks.len()) {
            if toks[j].is_punct('?')
                && !toks
                    .get(j + 1)
                    .map(|n| n.is_ident("Sized"))
                    .unwrap_or(false)
            {
                for s in live.iter() {
                    out.push(span_diag(
                        sem,
                        toks[j].line,
                        &s.name,
                        s.opened_line,
                        "this `?` early exit",
                    ));
                }
                live.clear(); // one report per span per expr
                break;
            }
            j += 1;
        }
    }
    // 3. opens: the one the expression *ends on* may be bound by a let;
    // any other open must be resolved inline (`….open_command(…).detach()`)
    let mut result_open = None;
    for c in &e.calls {
        if !is_open(c) {
            continue;
        }
        // inline resolution: a resolve call later in this expr chained
        // directly onto the open's `)`
        let chained = e.calls.iter().any(|r| {
            is_resolve(r) && r.tok > c.rparen && r.tok <= c.rparen + 2 // `) . close`
        });
        if chained {
            continue;
        }
        // escape: the open is an argument of another call — the callee
        // takes ownership of the scope
        let escapes = e
            .calls
            .iter()
            .any(|o| o.args.iter().any(|(lo, hi)| (*lo..*hi).contains(&c.tok)));
        if escapes {
            continue;
        }
        let is_trailing = e.hi > 0 && c.rparen == e.hi - 1;
        if is_trailing {
            result_open = Some(c);
        } else {
            out.push(Diagnostic {
                rule: "PRB03",
                path: sem.file.rel.to_string(),
                line: c.line,
                message: format!(
                    "`{}` opens a span whose scope is dropped inside this expression",
                    c.path_str()
                ),
                suggestion: "bind the scope, or chain `.close(…)`/`.detach()` directly".to_string(),
            });
        }
    }
    result_open
}

fn exits_with_live(
    sem: &SemCtx<'_>,
    line: u32,
    live: &[LiveSpan],
    at: &str,
    out: &mut Vec<Diagnostic>,
) {
    for s in live {
        out.push(span_diag(sem, line, &s.name, s.opened_line, at));
    }
}

/// Optimistic merge of branch live-sets: a span survives only if it is
/// live in *every* branch (resolved-anywhere counts as resolved).
/// Diverging branches (ending in `return`) never reach the merge point
/// and must not be passed here — a branch that closes the span and
/// returns says nothing about the fall-through path.
fn merge_live(into: &mut Vec<LiveSpan>, branches: Vec<Vec<LiveSpan>>) {
    into.retain(|s| branches.iter().all(|b| b.iter().any(|x| x.name == s.name)));
}

/// Walk a block, tracking live spans. Returns `true` when the block
/// *diverges* — every path through it exits the fn before reaching its
/// end — so callers can exclude it from branch merges.
fn walk(
    sem: &SemCtx<'_>,
    block: &Block,
    live: &mut Vec<LiveSpan>,
    out: &mut Vec<Diagnostic>,
) -> bool {
    let mut diverged = false;
    for s in &block.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    let open = scan_expr(sem, init, live, out);
                    if let Some(c) = open {
                        if l.wild || l.names.len() != 1 {
                            out.push(Diagnostic {
                                rule: "PRB03",
                                path: sem.file.rel.to_string(),
                                line: c.line,
                                message: format!(
                                    "`{}` opens a span bound to a discard pattern; it aborts immediately",
                                    c.path_str()
                                ),
                                suggestion: "bind the scope to a name and close/detach/abort it"
                                    .to_string(),
                            });
                        } else {
                            live.push(LiveSpan {
                                name: l.names[0].clone(),
                                opened_line: c.line,
                            });
                        }
                    }
                }
                if let Some(els) = &l.els {
                    let mut b = live.clone();
                    walk(sem, els, &mut b, out); // diverging block
                }
            }
            Stmt::Expr(e) => {
                let open = scan_expr(sem, &e.expr, live, out);
                // a tail expression's scope escapes as the block value;
                // a `…;` statement's scope is aborted on the spot
                if let (Some(c), true) = (open, e.semi) {
                    out.push(Diagnostic {
                        rule: "PRB03",
                        path: sem.file.rel.to_string(),
                        line: c.line,
                        message: format!(
                            "`{}` opens a span that is dropped at the end of the statement",
                            c.path_str()
                        ),
                        suggestion: "bind the scope, or chain `.close(…)`/`.detach()` directly"
                            .to_string(),
                    });
                }
            }
            Stmt::Return(r) => {
                if let Some(e) = &r.expr {
                    scan_expr(sem, e, live, out);
                }
                exits_with_live(sem, r.line, live, "this `return`", out);
                live.clear(); // reported once; the path ends here
                diverged = true;
            }
            Stmt::If(i) => {
                scan_expr(sem, &i.cond, live, out);
                let mut then_live = live.clone();
                let then_div = walk(sem, &i.then, &mut then_live, out);
                let mut branches = Vec::new();
                if !then_div {
                    branches.push(then_live);
                }
                let mut else_div = false;
                if let Some(e) = &i.els {
                    let mut else_live = live.clone();
                    else_div = walk_stmt(sem, e, &mut else_live, out);
                    if !else_div {
                        branches.push(else_live);
                    }
                } else {
                    branches.push(live.clone()); // fall-through arm
                }
                if then_div && else_div {
                    diverged = true; // both arms exit the fn
                }
                if !branches.is_empty() {
                    merge_live(live, branches);
                }
            }
            Stmt::Match(m) => {
                scan_expr(sem, &m.scrutinee, live, out);
                let mut branches = Vec::new();
                for arm in &m.arms {
                    let mut alive = live.clone();
                    let div = match &arm.body {
                        ArmBody::Block(b) => walk(sem, b, &mut alive, out),
                        ArmBody::Expr(e) => {
                            scan_expr(sem, e, &mut alive, out);
                            false
                        }
                    };
                    if !div {
                        branches.push(alive);
                    }
                }
                if !m.arms.is_empty() && branches.is_empty() {
                    diverged = true; // every arm exits the fn
                }
                if !branches.is_empty() {
                    merge_live(live, branches);
                }
            }
            Stmt::Loop(l) => {
                if let Some(h) = &l.header {
                    scan_expr(sem, h, live, out);
                }
                let mut b = live.clone();
                walk(sem, &l.body, &mut b, out);
                merge_live(live, vec![b]);
            }
            Stmt::Block(b) => {
                if walk(sem, b, live, out) {
                    diverged = true;
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Item => {}
        }
    }
    diverged
}

/// `else`-position statement: a block or a chained `else if`. Returns
/// `true` when it diverges, like [`walk`].
fn walk_stmt(
    sem: &SemCtx<'_>,
    s: &Stmt,
    live: &mut Vec<LiveSpan>,
    out: &mut Vec<Diagnostic>,
) -> bool {
    match s {
        Stmt::Block(b) => walk(sem, b, live, out),
        Stmt::If(i) => {
            scan_expr(sem, &i.cond, live, out);
            let mut then_live = live.clone();
            let then_div = walk(sem, &i.then, &mut then_live, out);
            let mut branches = Vec::new();
            if !then_div {
                branches.push(then_live);
            }
            let mut else_div = false;
            if let Some(e) = &i.els {
                let mut else_live = live.clone();
                else_div = walk_stmt(sem, e, &mut else_live, out);
                if !else_div {
                    branches.push(else_live);
                }
            } else {
                branches.push(live.clone());
            }
            if !branches.is_empty() {
                merge_live(live, branches);
            }
            then_div && else_div
        }
        _ => false,
    }
}
