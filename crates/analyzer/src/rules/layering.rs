//! LAY01/LAY02 — the Figure-2 layering DAG.
//!
//! The workspace mirrors the paper's Figure 2: applications talk to a
//! storage manager, which talks to the OS block layer, which talks to a
//! device interface, which is implemented by a device model over a raw
//! medium, all on one simulation kernel:
//!
//! ```text
//!   db → block → iface → ssd → {flash, pcm} → sim
//! ```
//!
//! A crate may depend only on layers *below* it (transitively). `bench`
//! and `workload` are harnesses and may see everything; the root crate
//! `requiem` re-exports the stack; `analyzer` (this crate) sees nothing.
//! The DAG is enforced twice — against `Cargo.toml` `[dependencies]`
//! (LAY01) and against `use requiem_*` paths in source (LAY02) — so
//! neither a manifest edit nor a stray fully-qualified path can invert a
//! layer. `[dev-dependencies]` are exempt: integration tests may drive a
//! crate from above.

use super::{short_name, FileCtx};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::CrateInfo;

/// Allowed `requiem-*` dependencies (short names) per crate (short name).
/// Transitively closed: listing `ssd` implies nothing extra — every edge
/// a crate uses must appear explicitly.
pub const ALLOWED: &[(&str, &[&str])] = &[
    ("sim", &[]),
    ("flash", &["sim"]),
    ("pcm", &["sim"]),
    ("ssd", &["sim", "flash"]),
    ("iface", &["sim", "flash", "ssd"]),
    ("block", &["sim", "flash", "pcm", "ssd", "iface"]),
    ("db", &["sim", "flash", "pcm", "ssd", "iface", "block"]),
    (
        "workload",
        &["sim", "flash", "pcm", "ssd", "iface", "block", "db"],
    ),
    (
        "bench",
        &[
            "sim", "flash", "pcm", "ssd", "iface", "block", "db", "workload",
        ],
    ),
    (
        "requiem",
        &[
            "sim", "flash", "pcm", "ssd", "iface", "block", "db", "workload",
        ],
    ),
    ("analyzer", &[]),
];

/// The allowed lower layers for a crate (by short name), or `None` when
/// the crate is not in the table. Shared with LAY03's call-graph check.
pub fn allowed_for(short: &str) -> Option<&'static [&'static str]> {
    ALLOWED
        .iter()
        .find(|(name, _)| *name == short)
        .map(|(_, deps)| *deps)
}

/// LAY01: manifest dependencies respect the DAG.
pub fn check_manifest(info: &CrateInfo) -> Vec<Diagnostic> {
    let me = short_name(&info.name);
    let Some(allowed) = allowed_for(me) else {
        return vec![Diagnostic {
            rule: "LAY01",
            path: info.manifest_rel.clone(),
            line: 0,
            message: format!(
                "crate `{}` is not in the Figure-2 layering table",
                info.name
            ),
            suggestion: "add it to ALLOWED in crates/analyzer/src/rules/layering.rs with its layer"
                .to_string(),
        }];
    };
    let mut out = Vec::new();
    for dep in &info.deps {
        if dep.dev {
            continue; // tests may drive the crate from above
        }
        let Some(target) = dep.name.strip_prefix("requiem-") else {
            continue;
        };
        if !allowed.contains(&target) {
            out.push(Diagnostic {
                rule: "LAY01",
                path: info.manifest_rel.clone(),
                line: dep.line,
                message: format!(
                    "`{}` depends on `{}`, which is not below it in the Figure-2 DAG",
                    info.name, dep.name
                ),
                suggestion: format!(
                    "route through a lower layer or move the shared type down (allowed for {me}: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed.join(", ")
                    }
                ),
            });
        }
    }
    out
}

/// LAY02: `use requiem_*` / `requiem_*::` paths respect the DAG, so a
/// fully-qualified path cannot smuggle in an edge the manifest hides.
pub fn check_uses(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let me = ctx.short();
    let Some(allowed) = allowed_for(me) else {
        return Vec::new(); // crate-level LAY01 already reports this
    };
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(target) = t.text.strip_prefix("requiem_") else {
            continue;
        };
        if target == me || allowed.contains(&target) {
            continue;
        }
        // dev-dependency use sites live in tests/benches/examples and in
        // #[cfg(test)] modules — same exemption as LAY01's dev-deps.
        if ctx.in_test(i) {
            continue;
        }
        out.push(Diagnostic {
            rule: "LAY02",
            path: ctx.rel.to_string(),
            line: t.line,
            message: format!(
                "`{}` references `{}`, which is not below it in the Figure-2 DAG",
                ctx.crate_name, t.text
            ),
            suggestion: format!(
                "only lower layers may be named here (allowed for {me}: {})",
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                }
            ),
        });
    }
    out
}
