//! Machine-readable diagnostics.

use std::fmt;

/// One lint finding: `rule id, file:line, message, suggestion`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (e.g. `DET01`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line (0 = whole file / manifest-level).
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {} (help: {})",
            self.rule, self.path, self.line, self.message, self.suggestion
        )
    }
}

impl Diagnostic {
    /// Render as a JSON object (hand-rolled; the analyzer has no deps).
    pub fn to_json(&self, allowed: bool) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"suggestion\":\"{}\",\"allowed\":{}}}",
            self.rule,
            json_escape(&self.path),
            self.line,
            json_escape(&self.message),
            json_escape(&self.suggestion),
            allowed
        )
    }
}

/// Escape a string for inclusion in a JSON value.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic {
            rule: "DET01",
            path: "crates/ssd/src/buffer.rs".into(),
            line: 79,
            message: "iteration over HashMap `resident`".into(),
            suggestion: "use BTreeMap".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("DET01 crates/ssd/src/buffer.rs:79 "));
        assert!(s.contains("help: use BTreeMap"));
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            rule: "PAN01",
            path: "a.rs".into(),
            line: 1,
            message: "call to `expect(\"x\")`".into(),
            suggestion: "return an error".into(),
        };
        let j = d.to_json(true);
        assert!(j.contains("\\\"x\\\""));
        assert!(j.ends_with("\"allowed\":true}"));
    }
}
