//! `requiem-lint` — CLI driver for the [`analyzer`] crate.
//!
//! ```text
//! requiem-lint [--workspace] [--root PATH] [--allow PATH] [--json] [-D] [--deny-stale]
//! requiem-lint --explain RULE
//! ```
//!
//! * `--workspace` — lint every member crate (the default and only mode;
//!   the flag is accepted for symmetry with cargo's own subcommands).
//! * `--explain RULE` — print one rule's full entry (summary, rationale,
//!   bad/ok examples) from the same table that drives the checks, then
//!   exit. `--explain all` lists every rule.
//! * `--root PATH` — workspace root; default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`.
//! * `--allow PATH` — allowlist file; default `<root>/lint.allow.toml`.
//! * `--json` — one JSON object per diagnostic on stdout.
//! * `-D` — deny allowlisted diagnostics too (audit mode).
//! * `--deny-stale` — treat stale (unused) allowlist entries as errors
//!   instead of warnings, so a fixed exception cannot linger. CI runs
//!   with this flag.
//!
//! Exit status: 0 when no denied diagnostics, 1 when any diagnostic is
//! denied, 2 on usage or I/O error. Deny-by-default: every diagnostic
//! not covered by the allowlist fails the run.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::rules;
use analyzer::workspace;

struct Args {
    root: Option<PathBuf>,
    allow: Option<PathBuf>,
    json: bool,
    deny_allowed: bool,
    deny_stale: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        allow: None,
        json: false,
        deny_allowed: false,
        deny_stale: false,
        explain: None,
    };
    let mut it = env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {} // the only mode; accepted for symmetry
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--allow" => {
                let v = it.next().ok_or("--allow requires a path")?;
                args.allow = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--explain" => {
                let v = it.next().ok_or("--explain requires a rule id (or `all`)")?;
                args.explain = Some(v);
            }
            "-D" => args.deny_allowed = true,
            "--deny-stale" => args.deny_stale = true,
            "--help" | "-h" => {
                return Err("usage: requiem-lint [--workspace] [--root PATH] \
                            [--allow PATH] [--json] [-D] [--deny-stale] \
                            | --explain RULE"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Print one rule's table entry (or all of them).
fn explain(id: &str) -> ExitCode {
    if id.eq_ignore_ascii_case("all") {
        for r in rules::RULES {
            println!("{:6} [{}] {}", r.id, r.family, r.summary);
        }
        println!("\nrun `requiem-lint --explain RULE` for one rule's rationale and examples");
        return ExitCode::SUCCESS;
    }
    let Some(r) = rules::rule(id) else {
        eprintln!(
            "requiem-lint: unknown rule `{id}` — known: {}",
            rules::RULES
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{} — {}", r.id, r.summary);
    println!("family: {}\n", r.family);
    println!("{}\n", r.rationale);
    println!("bad:\n{}\n", r.bad);
    println!("ok:\n{}", r.ok);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("requiem-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &args.explain {
        return explain(id);
    }
    let root = match args.root.or_else(|| {
        env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("requiem-lint: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };
    let allow_path = args.allow.unwrap_or_else(|| root.join("lint.allow.toml"));
    let allowlist = match analyzer::load_allowlist(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("requiem-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match analyzer::run(&root, allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("requiem-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut denied = 0usize;
    let mut allowed = 0usize;
    for (d, was_allowed) in &report.diagnostics {
        let deny = !*was_allowed || args.deny_allowed;
        if *was_allowed {
            allowed += 1;
        }
        if deny {
            denied += 1;
        }
        if args.json {
            println!("{}", d.to_json(*was_allowed));
        } else if deny {
            println!("{d}");
        }
    }
    let mut stale_denied = 0usize;
    for entry in &report.unused_allows {
        let severity = if args.deny_stale {
            stale_denied += 1;
            "error"
        } else {
            "warning"
        };
        eprintln!(
            "{severity}: unused allowlist entry {} {} (lint.allow.toml:{})",
            entry.rule, entry.path, entry.line
        );
    }
    if stale_denied > 0 {
        eprintln!(
            "requiem-lint: {stale_denied} stale allowlist entr{} denied by --deny-stale \
             — remove {} from lint.allow.toml",
            if stale_denied == 1 { "y" } else { "ies" },
            if stale_denied == 1 { "it" } else { "them" },
        );
        denied += stale_denied;
    }
    if !args.json {
        println!(
            "requiem-lint: {} diagnostics ({} allowlisted{})",
            report.diagnostics.len(),
            allowed,
            if args.deny_allowed && allowed > 0 {
                ", denied by -D"
            } else {
                ""
            }
        );
    }
    if denied > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
