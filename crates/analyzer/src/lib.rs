//! # requiem-lint — domain-aware static analysis for the requiem workspace
//!
//! The paper's myth-busting experiments are only falsifiable because they
//! are bit-reproducible; the workspace's architecture only mirrors
//! Figure 2 while nothing inverts a layer. Both were conventions. This
//! crate turns them into machine-checked rules (see [`rules`] for the
//! full table): determinism (DET), layering (LAY), probe discipline
//! (PRB), time hygiene (TIM), panic policy (PAN), and unsafe policy
//! (UNS).
//!
//! Design constraints:
//!
//! * **Offline, zero dependencies.** The build environment vendors no
//!   `syn`, so the analyzer lexes Rust itself ([`lexer`]) and pattern-
//!   matches token streams. That is less precise than type-resolved
//!   analysis and deliberately biased toward *no false negatives on the
//!   patterns that have bitten this codebase* (hash-order iteration, raw
//!   wall-clock reads, layer inversions); the checked-in allowlist
//!   ([`allow`], `lint.allow.toml`) absorbs the rare justified exception.
//! * **Machine-readable diagnostics.** Every finding is
//!   `rule id, file:line, message, suggestion` ([`diag`]), with `--json`
//!   for tooling.
//! * **Deny by default.** Any non-allowlisted diagnostic fails the run;
//!   CI gates on it.
//!
//! Run it as `cargo run -p analyzer -- --workspace`.

#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::fs;
use std::path::Path;

use allow::AllowList;
use diag::Diagnostic;
use rules::FileCtx;
use workspace::{FileCat, Workspace};

/// Outcome of a whole-workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, paired with whether the allowlist covers it.
    pub diagnostics: Vec<(Diagnostic, bool)>,
    /// Allowlist entries that matched nothing (stale).
    pub unused_allows: Vec<allow::AllowEntry>,
}

impl Report {
    /// Diagnostics not covered by the allowlist.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|(_, allowed)| !allowed)
            .map(|(d, _)| d)
    }

    /// Number of non-allowlisted diagnostics.
    pub fn denied_count(&self) -> usize {
        self.denied().count()
    }

    /// Number of allowlisted diagnostics.
    pub fn allowed_count(&self) -> usize {
        self.diagnostics.len() - self.denied_count()
    }
}

/// Lint the workspace rooted at `root` against `allowlist`.
pub fn run(root: &Path, mut allowlist: AllowList) -> Result<Report, String> {
    let ws = workspace::discover(root)?;
    let mut diags = collect_diagnostics(&ws)?;
    // Stable output: sort by path, line, rule.
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    let diagnostics = diags
        .into_iter()
        .map(|d| {
            let allowed = allowlist.check(&d);
            (d, allowed)
        })
        .collect();
    Ok(Report {
        diagnostics,
        unused_allows: allowlist.unused().into_iter().cloned().collect(),
    })
}

fn collect_diagnostics(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    for krate in &ws.crates {
        // crate-scoped rules need the crate root's token stream
        let root_file = krate
            .files
            .iter()
            .find(|f| f.cat == FileCat::Main && f.rel.ends_with("src/lib.rs"))
            .or_else(|| {
                krate
                    .files
                    .iter()
                    .find(|f| f.cat == FileCat::Main && f.rel.ends_with("src/main.rs"))
            });
        let root_toks = match root_file {
            Some(f) => {
                let text = fs::read_to_string(&f.abs)
                    .map_err(|e| format!("read {}: {e}", f.abs.display()))?;
                Some((lexer::lex(&text), f.rel.clone()))
            }
            None => None,
        };
        out.extend(rules::run_crate(
            krate,
            root_toks.as_ref().map(|(t, _)| t.as_slice()),
            root_toks
                .as_ref()
                .map(|(_, r)| r.as_str())
                .unwrap_or(&krate.manifest_rel),
        ));
        for f in &krate.files {
            let text =
                fs::read_to_string(&f.abs).map_err(|e| format!("read {}: {e}", f.abs.display()))?;
            out.extend(lint_source(&krate.name, &f.rel, f.cat, &text));
        }
    }
    Ok(out)
}

/// Lint a single file's source text — the unit the fixture tests drive.
pub fn lint_source(crate_name: &str, rel: &str, cat: FileCat, text: &str) -> Vec<Diagnostic> {
    let toks = lexer::lex(text);
    let test_mask = lexer::test_mask(&toks);
    let ctx = FileCtx {
        crate_name,
        rel,
        cat,
        toks: &toks,
        test_mask: &test_mask,
    };
    rules::run_file(&ctx)
}

/// Load the allowlist at `path`; a missing file yields an empty list.
pub fn load_allowlist(path: &Path) -> Result<AllowList, String> {
    match fs::read_to_string(path) {
        Ok(text) => AllowList::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(AllowList::empty()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}
