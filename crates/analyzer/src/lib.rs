//! # requiem-lint — domain-aware static analysis for the requiem workspace
//!
//! The paper's myth-busting experiments are only falsifiable because they
//! are bit-reproducible; the workspace's architecture only mirrors
//! Figure 2 while nothing inverts a layer. Both were conventions. This
//! crate turns them into machine-checked rules (see [`rules`] for the
//! full table): determinism (DET), layering (LAY), probe discipline
//! (PRB), time hygiene (TIM), panic policy (PAN), and unsafe policy
//! (UNS).
//!
//! Design constraints:
//!
//! * **Offline, zero dependencies.** The build environment vendors no
//!   `syn`, so the analyzer lexes Rust itself ([`lexer`]) and pattern-
//!   matches token streams. That is less precise than type-resolved
//!   analysis and deliberately biased toward *no false negatives on the
//!   patterns that have bitten this codebase* (hash-order iteration, raw
//!   wall-clock reads, layer inversions); the checked-in allowlist
//!   ([`allow`], `lint.allow.toml`) absorbs the rare justified exception.
//! * **Machine-readable diagnostics.** Every finding is
//!   `rule id, file:line, message, suggestion` ([`diag`]), with `--json`
//!   for tooling.
//! * **Deny by default.** Any non-allowlisted diagnostic fails the run;
//!   CI gates on it.
//!
//! Run it as `cargo run -p analyzer -- --workspace`.

#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod workspace;

use std::fs;
use std::path::Path;

use allow::AllowList;
use diag::Diagnostic;
use parser::ParsedFile;
use rules::{FileCtx, SemCtx};
use symbols::SymbolTable;
use workspace::{FileCat, Workspace};

/// Outcome of a whole-workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, paired with whether the allowlist covers it.
    pub diagnostics: Vec<(Diagnostic, bool)>,
    /// Allowlist entries that matched nothing (stale).
    pub unused_allows: Vec<allow::AllowEntry>,
}

impl Report {
    /// Diagnostics not covered by the allowlist.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|(_, allowed)| !allowed)
            .map(|(d, _)| d)
    }

    /// Number of non-allowlisted diagnostics.
    pub fn denied_count(&self) -> usize {
        self.denied().count()
    }

    /// Number of allowlisted diagnostics.
    pub fn allowed_count(&self) -> usize {
        self.diagnostics.len() - self.denied_count()
    }
}

/// Lint the workspace rooted at `root` against `allowlist`.
pub fn run(root: &Path, mut allowlist: AllowList) -> Result<Report, String> {
    let ws = workspace::discover(root)?;
    let mut diags = collect_diagnostics(&ws)?;
    // Stable output: sort by path, line, rule.
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    let diagnostics = diags
        .into_iter()
        .map(|d| {
            let allowed = allowlist.check(&d);
            (d, allowed)
        })
        .collect();
    Ok(Report {
        diagnostics,
        unused_allows: allowlist.unused().into_iter().cloned().collect(),
    })
}

/// One in-memory source file for [`lint_files`]: the multi-file entry
/// point fixtures and the workspace run share.
pub struct FileInput {
    /// Package name of the owning crate (e.g. `requiem-ssd`).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel: String,
    /// File category.
    pub cat: FileCat,
    /// Source text.
    pub text: String,
}

/// A lexed + parsed file, ready for both rule passes.
struct PreparedFile<'a> {
    input: &'a FileInput,
    toks: Vec<lexer::Tok>,
    test_mask: Vec<bool>,
    parsed: ParsedFile,
}

fn collect_diagnostics(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    // pass 0: read every file once
    let mut inputs = Vec::new();
    for krate in &ws.crates {
        for f in &krate.files {
            let text =
                fs::read_to_string(&f.abs).map_err(|e| format!("read {}: {e}", f.abs.display()))?;
            inputs.push(FileInput {
                crate_name: krate.name.clone(),
                rel: f.rel.clone(),
                cat: f.cat,
                text,
            });
        }
    }
    let mut out = lint_files(&inputs);
    // crate-scoped rules need the crate root's token stream
    for krate in &ws.crates {
        let root = krate
            .files
            .iter()
            .find(|f| f.cat == FileCat::Main && f.rel.ends_with("src/lib.rs"))
            .or_else(|| {
                krate
                    .files
                    .iter()
                    .find(|f| f.cat == FileCat::Main && f.rel.ends_with("src/main.rs"))
            })
            .and_then(|f| inputs.iter().find(|i| i.rel == f.rel));
        let root_toks = root.map(|f| lexer::lex(&f.text));
        out.extend(rules::run_crate(
            krate,
            root_toks.as_deref(),
            root.map(|f| f.rel.as_str()).unwrap_or(&krate.manifest_rel),
        ));
    }
    Ok(out)
}

/// Lint a set of in-memory files as one workspace: pass 1 parses
/// everything and builds the symbol table from `Main` files; pass 2 runs
/// the token rules and the parser-backed semantic rules on each file.
pub fn lint_files(inputs: &[FileInput]) -> Vec<Diagnostic> {
    let prepared: Vec<PreparedFile<'_>> = inputs
        .iter()
        .map(|input| {
            let toks = lexer::lex(&input.text);
            let test_mask = lexer::test_mask(&toks);
            let parsed = parser::parse(&toks);
            PreparedFile {
                input,
                toks,
                test_mask,
                parsed,
            }
        })
        .collect();
    let table = SymbolTable::build(
        prepared
            .iter()
            .filter(|p| p.input.cat == FileCat::Main)
            .map(|p| {
                (
                    rules::short_name(&p.input.crate_name),
                    p.input.rel.as_str(),
                    &p.parsed,
                )
            }),
    );
    let mut out = Vec::new();
    for p in &prepared {
        let ctx = FileCtx {
            crate_name: &p.input.crate_name,
            rel: &p.input.rel,
            cat: p.input.cat,
            toks: &p.toks,
            test_mask: &p.test_mask,
        };
        out.extend(rules::run_file(&ctx));
        let sem = SemCtx {
            file: &ctx,
            parsed: &p.parsed,
            symbols: &table,
        };
        out.extend(rules::run_sem(&sem));
    }
    out
}

/// Lint a single file's source text — the unit the token-rule fixture
/// tests drive. Symbol resolution sees only this file; multi-crate
/// fixtures use [`lint_files`].
pub fn lint_source(crate_name: &str, rel: &str, cat: FileCat, text: &str) -> Vec<Diagnostic> {
    lint_files(&[FileInput {
        crate_name: crate_name.to_string(),
        rel: rel.to_string(),
        cat,
        text: text.to_string(),
    }])
}

/// Load the allowlist at `path`; a missing file yields an empty list.
pub fn load_allowlist(path: &Path) -> Result<AllowList, String> {
    match fs::read_to_string(path) {
        Ok(text) => AllowList::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(AllowList::empty()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}
