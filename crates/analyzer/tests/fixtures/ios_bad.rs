// IOS01/IOS02 fixture: status-carrying results dropped, discarded, or
// bound and forgotten.
pub enum IoStatus {
    Ok,
}

pub struct WalForce {
    pub done: u64,
    pub status: IoStatus,
}

pub struct Dev;

impl Dev {
    pub fn force(&mut self, t: u64) -> WalForce {
        WalForce {
            done: t,
            status: IoStatus::Ok,
        }
    }
}

pub fn drop_on_floor(d: &mut Dev, t: u64) {
    // IOS01: fallible call in statement position, result dropped
    d.force(t);
}

pub fn discard_binding(d: &mut Dev, t: u64) {
    // IOS02: bound to `_`
    let _ = d.force(t);
}

pub fn status_never_consumed(d: &mut Dev, t: u64) -> u64 {
    // IOS02: WalForce bound, `.done` used, `.status` never consumed
    let f = d.force(t);
    f.done
}

pub fn done_projection(d: &mut Dev, t: u64) -> u64 {
    // IOS02: `.done` projection throws the status away on the spot
    let end = d.force(t).done;
    end
}
