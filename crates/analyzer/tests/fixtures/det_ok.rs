// Fixture: deterministic twin of det_bad.rs — BTreeMap iteration and
// typed sim time. Never compiled — lint test data only.
use std::collections::BTreeMap;

pub struct Tracker {
    counts: BTreeMap<u64, u64>,
}

impl Tracker {
    pub fn dump(&self) {
        for (k, v) in self.counts.iter() {
            println!("{k}={v}");
        }
    }
}
