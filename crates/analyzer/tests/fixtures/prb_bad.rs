// Fixture: PRB01 (raw background toggles) + PRB02 (unclosed span).
// Never compiled — lint test data only.
pub fn trace(probe: &Probe, t0: SimTime) {
    probe.enter_background();
    let _scope = probe.open_command(0, t0);
    // span never closed or detached
    probe.exit_background();
}
