// CLK01 clean twin: every device-driving call sees a freshly folded
// clock — plus a fn that never rebinds, which the opt-in gate exempts
// (same-instant fan-out is a design choice, not a hazard).
#[derive(Clone, Copy)]
pub struct SimTime;

impl SimTime {
    pub fn max(self, _o: SimTime) -> SimTime {
        self
    }
}

pub struct Dev;

impl Dev {
    pub fn submit(&mut self, t: SimTime) -> SimTime {
        t
    }
}

pub fn pulled_forward(d: &mut Dev, now: SimTime) -> SimTime {
    let mut end = now;
    let done = d.submit(end);
    end = end.max(done);
    let d2 = d.submit(end);
    end = end.max(d2);
    let d3 = d.submit(end);
    end.max(d3)
}

pub fn same_instant_fanout(d: &mut Dev, now: SimTime) -> SimTime {
    // no rebind anywhere in this fn: both submissions are *meant* to
    // carry the same timestamp, so the convention does not apply
    let a = d.submit(now);
    let b = d.submit(now);
    a.max(b)
}
