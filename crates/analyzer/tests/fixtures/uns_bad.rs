// Fixture: UNS01 — unsafe in a pure simulation workspace.
// Never compiled — lint test data only.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
