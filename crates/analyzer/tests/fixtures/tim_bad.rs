// Fixture: TIM01 (raw as_nanos arithmetic) + TIM02 (raw ns binding).
// Never compiled — lint test data only.
pub struct Gap {
    pub mean_ns: u64,
}

pub fn total(a: SimDuration, b: SimDuration) -> u64 {
    a.as_nanos() + b.as_nanos()
}
