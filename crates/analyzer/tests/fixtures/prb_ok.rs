// Fixture: probe twin of prb_bad.rs — RAII guard, tiled span closed.
// Never compiled — lint test data only.
pub fn trace(probe: &Probe, t0: SimTime, t1: SimTime) {
    let _bg = probe.background();
    let scope = probe.open_command(0, t0);
    scope.close(t1);
}
