// PRB03 fixture: command scopes left live on an exit path — a `?` that
// drop-aborts, a fall-through past an early-return branch, and a scope
// dropped at the end of its own statement.
pub struct Probe;

pub struct Scope;

impl Probe {
    pub fn open_command(&self, _k: &str, _t: u64) -> Scope {
        Scope
    }
}

impl Scope {
    pub fn close(self, _t: u64) {}
    pub fn detach(self) -> u64 {
        0
    }
    pub fn abort(self) {}
}

pub fn fallible(t: u64) -> Result<u64, ()> {
    Ok(t)
}

pub fn question_mark_leak(p: &Probe, t: u64) -> Result<u64, ()> {
    let scope = p.open_command("io", t);
    let d = fallible(t)?; // PRB03: `?` while `scope` is live
    scope.close(d);
    Ok(d)
}

pub fn fall_through_leak(p: &Probe, t: u64, hit: bool) -> u64 {
    let scope = p.open_command("io", t);
    if hit {
        scope.close(t);
        return t;
    }
    // PRB03: the early-return branch closed its copy, but this path
    // reaches the end of the fn with `scope` still live
    t
}

pub fn dropped_statement(p: &Probe, t: u64) {
    // PRB03: the scope is dropped (aborted) at the semicolon
    p.open_command("io", t);
}
