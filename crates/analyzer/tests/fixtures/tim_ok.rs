// Fixture: time-hygiene twin of tim_bad.rs — stay in the newtype.
// Never compiled — lint test data only.
pub struct Gap {
    pub mean: SimDuration,
}

pub fn total(a: SimDuration, b: SimDuration) -> SimDuration {
    a + b
}
