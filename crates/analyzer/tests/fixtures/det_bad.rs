// Fixture: DET01 (hash iteration) + DET02 (ambient authority).
// Never compiled — lint test data only.
use std::collections::HashMap;
use std::time::Instant;

pub struct Tracker {
    counts: HashMap<u64, u64>,
}

impl Tracker {
    pub fn dump(&self) {
        for (k, v) in self.counts.iter() {
            println!("{k}={v}");
        }
    }

    pub fn stamp() -> Instant {
        Instant::now()
    }
}
