// IOS01/IOS02 clean twin: every status-carrying result reaches a
// consumer — matched, routed to a sink, or folded through an assignment.
pub enum IoStatus {
    Ok,
}

pub struct WalForce {
    pub done: u64,
    pub status: IoStatus,
}

pub struct Dev;

impl Dev {
    pub fn force(&mut self, t: u64) -> WalForce {
        WalForce {
            done: t,
            status: IoStatus::Ok,
        }
    }
}

pub fn worse_status(a: IoStatus, _b: IoStatus) -> IoStatus {
    a
}

pub fn note_status(_s: IoStatus) {}

pub fn status_routed(d: &mut Dev, t: u64) -> u64 {
    let f = d.force(t);
    note_status(f.status);
    f.done
}

pub fn status_folded_by_assignment(d: &mut Dev, t: u64) -> u64 {
    // the trailing fallible call feeds an assignment target — consumed
    let f = d.force(t);
    let mut st = IoStatus::Ok;
    st = worse_status(st, f.status);
    note_status(st);
    f.done
}

pub fn status_matched(d: &mut Dev, t: u64) -> u64 {
    let f = d.force(t);
    match f.status {
        IoStatus::Ok => f.done,
    }
}
