// Fixture: LAY02 — a flash-layer file reaching *up* into the SSD layer.
// Never compiled — lint test data only.
use requiem_ssd::device::Ssd;

pub fn peek(dev: &Ssd) -> u64 {
    dev.capacity().exported_pages
}
