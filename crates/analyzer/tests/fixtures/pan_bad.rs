// Fixture: PAN01 — unwrap/panic! in controller-path code.
// Never compiled — lint test data only.
pub fn pick(m: &std::collections::BTreeMap<u64, u64>) -> u64 {
    if m.is_empty() {
        panic!("empty map");
    }
    *m.get(&0).unwrap()
}
