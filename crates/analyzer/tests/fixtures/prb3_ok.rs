// PRB03 clean twin: every exit path resolves its scope — explicit
// `abort()` on the error path, `detach()` for out-of-order completion,
// and a close on both arms of a branch.
pub struct Probe;

pub struct Scope;

impl Probe {
    pub fn open_command(&self, _k: &str, _t: u64) -> Scope {
        Scope
    }
}

impl Scope {
    pub fn close(self, _t: u64) {}
    pub fn detach(self) -> u64 {
        0
    }
    pub fn abort(self) {}
}

pub fn fallible(t: u64) -> Result<u64, ()> {
    Ok(t)
}

pub fn abort_on_error(p: &Probe, t: u64) -> Result<u64, ()> {
    let scope = p.open_command("io", t);
    let d = match fallible(t) {
        Ok(d) => d,
        Err(e) => {
            scope.abort();
            return Err(e);
        }
    };
    scope.close(d);
    Ok(d)
}

pub fn detach_for_later(p: &Probe, t: u64) -> u64 {
    let scope = p.open_command("io", t);
    let id = scope.detach();
    id + t
}

pub fn closed_on_both_arms(p: &Probe, t: u64, hit: bool) -> u64 {
    let scope = p.open_command("io", t);
    if hit {
        scope.close(t);
        return t;
    }
    scope.close(t);
    t
}
