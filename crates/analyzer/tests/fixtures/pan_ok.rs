// Fixture: panic-policy twin of pan_bad.rs — errors surface as Results,
// invariants as asserts with messages. Never compiled — lint test data.
pub fn pick(m: &std::collections::BTreeMap<u64, u64>) -> Result<u64, SsdError> {
    assert!(!m.is_empty(), "caller must seed the map before pick()");
    m.get(&0).copied().ok_or(SsdError::Unmapped { lpn: 0 })
}
