// LAY03 fixture: linted as crate `flash`, whose only allowed dependency
// is `sim`. Both call edges below resolve to crate `ssd` — *above*
// flash in the Figure-2 DAG — without a single `requiem_*` token, so
// LAY02 cannot see them; only the call-graph pass can.
pub fn up_the_stack(thing: &mut SsdThing, t: u64) -> u64 {
    // method edge: `do_ssd_op` is workspace-unique, takes self, and its
    // receiver type is named in this file
    thing.do_ssd_op(t)
}

pub fn up_via_type(t: u64) -> u64 {
    // type-owner edge: `SsdThing::mk` names the owning type directly
    let mut thing = SsdThing::mk();
    thing.do_ssd_op(t)
}
