// LAY03 clean twin: the *same* call edges as lay3_bad.rs, but linted as
// crate `db` — and db sits above ssd in the Figure-2 DAG, so calling
// down is exactly what the architecture prescribes.
pub fn down_the_stack(thing: &mut SsdThing, t: u64) -> u64 {
    thing.do_ssd_op(t)
}

pub fn down_via_type(t: u64) -> u64 {
    let mut thing = SsdThing::mk();
    thing.do_ssd_op(t)
}
