// CLK01 fixture: a fn that follows the pull-now-forward convention
// (it rebinds its clock) but reuses a stale binding on one path.
#[derive(Clone, Copy)]
pub struct SimTime;

impl SimTime {
    pub fn max(self, _o: SimTime) -> SimTime {
        self
    }
}

pub struct Dev;

impl Dev {
    pub fn submit(&mut self, t: SimTime) -> SimTime {
        t
    }
}

pub fn stale_reuse(d: &mut Dev, now: SimTime) -> SimTime {
    let mut end = now; // snapshot of a clock is a clock
    let done = d.submit(end); // `end` goes stale
    end = end.max(done); // folded forward — convention adopted
    let d2 = d.submit(end); // fresh use, marks `end` stale again
    let d3 = d.submit(end); // CLK01: stale — `d2` was never folded in
    end.max(d2).max(d3)
}
