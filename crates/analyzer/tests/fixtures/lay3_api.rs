// LAY03 fixture: the "ssd" side of a cross-crate call edge. Defines a
// type with a workspace-unique method and an associated constructor so
// callers in other fixture files produce resolvable call-graph edges.
pub struct SsdThing;

impl SsdThing {
    pub fn mk() -> SsdThing {
        SsdThing
    }

    pub fn do_ssd_op(&mut self, t: u64) -> u64 {
        t
    }
}
