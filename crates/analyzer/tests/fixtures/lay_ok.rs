// Fixture: layering twin of lay_bad.rs — flash may depend on sim.
// Never compiled — lint test data only.
use requiem_sim::time::SimTime;

pub fn origin() -> SimTime {
    SimTime::ZERO
}
