//! Fixture-driven rule tests plus the workspace self-check.
//!
//! Each rule family gets a violating fixture and a clean twin under
//! `tests/fixtures/` (the workspace walker skips that directory — the
//! fixtures *deliberately* break the rules and are never compiled). The
//! final test lints the real workspace against the checked-in
//! `lint.allow.toml` and requires zero denied diagnostics: the linter
//! gates CI, so the tree must always be self-clean.

use std::path::Path;

use analyzer::workspace::{CrateInfo, FileCat};
use analyzer::{lexer, lint_source, rules, FileInput};

/// Lint fixture `text` as main-crate code of `crate_name` at `rel`,
/// returning the fired rule ids.
fn fired(crate_name: &str, rel: &str, text: &str) -> Vec<&'static str> {
    lint_source(crate_name, rel, FileCat::Main, text)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

/// Lint several in-memory files as one workspace (cross-crate symbol
/// resolution), returning the fired rule ids.
fn fired_files(files: &[(&str, &str, &str)]) -> Vec<&'static str> {
    let inputs: Vec<FileInput> = files
        .iter()
        .map(|(krate, rel, text)| FileInput {
            crate_name: krate.to_string(),
            rel: rel.to_string(),
            cat: FileCat::Main,
            text: text.to_string(),
        })
        .collect();
    analyzer::lint_files(&inputs)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn det_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/det_bad.rs"),
    );
    assert!(bad.contains(&"DET01"), "fired: {bad:?}");
    assert!(bad.contains(&"DET02"), "fired: {bad:?}");
    let ok = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/det_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn det_rules_exempt_test_regions_and_test_files() {
    let text = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() {\n        let mut m: HashMap<u64, u64> = HashMap::new();\n        for (k, v) in m.iter() { let _ = (k, v); }\n    }\n}\n";
    let in_test_mod = fired("requiem-ssd", "crates/ssd/src/fixture.rs", text);
    assert!(
        in_test_mod.is_empty(),
        "fired in #[cfg(test)]: {in_test_mod:?}"
    );
    let in_test_dir = lint_source(
        "requiem-ssd",
        "crates/ssd/tests/fixture.rs",
        FileCat::TestDir,
        include_str!("fixtures/det_bad.rs"),
    );
    // DET01 is order-hygiene (exempt in tests); DET02 ambient authority
    // (Instant) stays flagged even in tests — wall-clock reads make
    // test timing assertions flaky.
    assert!(
        in_test_dir.iter().all(|d| d.rule != "DET01"),
        "DET01 fired in tests/: {in_test_dir:?}"
    );
    assert!(
        in_test_dir.iter().any(|d| d.rule == "DET02"),
        "DET02 should apply everywhere: {in_test_dir:?}"
    );
}

#[test]
fn lay_use_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-flash",
        "crates/flash/src/fixture.rs",
        include_str!("fixtures/lay_bad.rs"),
    );
    assert!(bad.contains(&"LAY02"), "fired: {bad:?}");
    let ok = fired(
        "requiem-flash",
        "crates/flash/src/fixture.rs",
        include_str!("fixtures/lay_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn lay_manifest_inversion_fires_and_legal_dep_is_clean() {
    let toml = "[package]\nname = \"requiem-flash\"\n\n[dependencies]\nrequiem-ssd = { workspace = true }\n";
    let (name, deps) = analyzer::workspace::parse_manifest(toml);
    let info = CrateInfo {
        name,
        manifest_rel: "crates/flash/Cargo.toml".to_string(),
        deps,
        files: Vec::new(),
    };
    let diags = rules::layering::check_manifest(&info);
    assert!(
        diags.iter().any(|d| d.rule == "LAY01"),
        "flash → ssd should invert the DAG: {diags:?}"
    );

    let toml = "[package]\nname = \"requiem-flash\"\n\n[dependencies]\nrequiem-sim = { workspace = true }\n\n[dev-dependencies]\nproptest = { workspace = true }\n";
    let (name, deps) = analyzer::workspace::parse_manifest(toml);
    let info = CrateInfo {
        name,
        manifest_rel: "crates/flash/Cargo.toml".to_string(),
        deps,
        files: Vec::new(),
    };
    let diags = rules::layering::check_manifest(&info);
    assert!(diags.is_empty(), "legal dep flagged: {diags:?}");
}

#[test]
fn prb_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-block",
        "crates/block/src/fixture.rs",
        include_str!("fixtures/prb_bad.rs"),
    );
    assert!(bad.contains(&"PRB01"), "fired: {bad:?}");
    assert!(bad.contains(&"PRB02"), "fired: {bad:?}");
    let ok = fired(
        "requiem-block",
        "crates/block/src/fixture.rs",
        include_str!("fixtures/prb_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn tim_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/tim_bad.rs"),
    );
    assert!(bad.contains(&"TIM01"), "fired: {bad:?}");
    assert!(bad.contains(&"TIM02"), "fired: {bad:?}");
    let ok = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/tim_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn tim_rules_scope_excludes_sim_and_bench() {
    for (pkg, rel) in [
        ("requiem-sim", "crates/sim/src/fixture.rs"),
        ("requiem-bench", "crates/bench/src/fixture.rs"),
    ] {
        let diags = fired(pkg, rel, include_str!("fixtures/tim_bad.rs"));
        assert!(
            diags.iter().all(|r| !r.starts_with("TIM")),
            "{pkg} should be outside TIM scope: {diags:?}"
        );
    }
}

#[test]
fn pan_fixture_fires_in_protected_paths_only() {
    let text = include_str!("fixtures/pan_bad.rs");
    let bad = fired("requiem-ssd", "crates/ssd/src/controller/fixture.rs", text);
    assert_eq!(
        bad.iter().filter(|r| **r == "PAN01").count(),
        2,
        "unwrap + panic! expected: {bad:?}"
    );
    // same text outside the protected paths: policy does not apply
    let elsewhere = fired("requiem-ssd", "crates/ssd/src/metrics.rs", text);
    assert!(
        elsewhere.iter().all(|r| *r != "PAN01"),
        "PAN01 outside protected paths: {elsewhere:?}"
    );
    let ok = fired(
        "requiem-ssd",
        "crates/ssd/src/controller/fixture.rs",
        include_str!("fixtures/pan_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn uns_fixture_fires_and_crate_root_check_wants_forbid() {
    let bad = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/uns_bad.rs"),
    );
    assert!(bad.contains(&"UNS01"), "fired: {bad:?}");

    let info = CrateInfo {
        name: "requiem-ssd".to_string(),
        manifest_rel: "crates/ssd/Cargo.toml".to_string(),
        deps: Vec::new(),
        files: Vec::new(),
    };
    let naked = lexer::lex("pub fn f() {}\n");
    let diags = rules::unsafety::check_crate_root(&info, Some(&naked), "crates/ssd/src/lib.rs");
    assert!(diags.iter().any(|d| d.rule == "UNS02"), "{diags:?}");
    let fortified = lexer::lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
    let diags = rules::unsafety::check_crate_root(&info, Some(&fortified), "crates/ssd/src/lib.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lay3_callgraph_fixture_fires_and_twin_is_clean() {
    let api = include_str!("fixtures/lay3_api.rs");
    // the same call edges, linted once from below (flash → ssd inverts
    // the DAG) and once from above (db → ssd is the architecture)
    let bad = fired_files(&[
        ("requiem-ssd", "crates/ssd/src/fixture_api.rs", api),
        (
            "requiem-flash",
            "crates/flash/src/fixture.rs",
            include_str!("fixtures/lay3_bad.rs"),
        ),
    ]);
    assert_eq!(
        bad.iter().filter(|r| **r == "LAY03").count(),
        3,
        "method + type-owner edges expected: {bad:?}"
    );
    let ok = fired_files(&[
        ("requiem-ssd", "crates/ssd/src/fixture_api.rs", api),
        (
            "requiem-db",
            "crates/db/src/fixture.rs",
            include_str!("fixtures/lay3_ok.rs"),
        ),
    ]);
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn ios_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-db",
        "crates/db/src/fixture.rs",
        include_str!("fixtures/ios_bad.rs"),
    );
    assert!(bad.contains(&"IOS01"), "fired: {bad:?}");
    assert_eq!(
        bad.iter().filter(|r| **r == "IOS02").count(),
        3,
        "discard + unconsumed + projection expected: {bad:?}"
    );
    let ok = fired(
        "requiem-db",
        "crates/db/src/fixture.rs",
        include_str!("fixtures/ios_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn clk_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-db",
        "crates/db/src/fixture.rs",
        include_str!("fixtures/clk_bad.rs"),
    );
    assert_eq!(
        bad.iter().filter(|r| **r == "CLK01").count(),
        1,
        "one stale reuse expected: {bad:?}"
    );
    let ok = fired(
        "requiem-db",
        "crates/db/src/fixture.rs",
        include_str!("fixtures/clk_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

#[test]
fn prb3_path_fixture_fires_and_twin_is_clean() {
    let bad = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/prb3_bad.rs"),
    );
    assert_eq!(
        bad.iter().filter(|r| **r == "PRB03").count(),
        3,
        "`?` leak + fall-through leak + dropped statement expected: {bad:?}"
    );
    let ok = fired(
        "requiem-ssd",
        "crates/ssd/src/fixture.rs",
        include_str!("fixtures/prb3_ok.rs"),
    );
    assert!(ok.is_empty(), "clean twin fired: {ok:?}");
}

/// The real workspace must lint *completely* clean: zero diagnostics —
/// not merely zero denied — and zero stale allowlist entries. This is
/// the `-D --deny-stale` contract CI enforces.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = analyzer::load_allowlist(&root.join("lint.allow.toml")).expect("allowlist parses");
    let report = analyzer::run(&root, allow).expect("lint runs");
    let all: Vec<String> = report
        .diagnostics
        .iter()
        .map(|(d, _)| d.to_string())
        .collect();
    assert!(
        all.is_empty(),
        "workspace has diagnostics (the tree must be clean under -D):\n{}",
        all.join("\n")
    );
    let stale: Vec<String> = report
        .unused_allows
        .iter()
        .map(|e| format!("{} {} ({})", e.rule, e.path, e.reason))
        .collect();
    assert!(
        stale.is_empty(),
        "stale allowlist entries:\n{}",
        stale.join("\n")
    );
}
