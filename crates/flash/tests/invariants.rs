//! Property-based tests of the flash constraints C1–C4.
//!
//! These drive a [`Lun`] with arbitrary operation sequences and assert that
//! the model's state machine never violates the paper's constraints — and
//! that legal sequences never fail below rated endurance.
//!
//! C3 semantics under test: pages within a block must be programmed in
//! strictly ascending order; skipping pages is allowed (ONFI), programming
//! at or below the write point is not — unless the page is dirty, in which
//! case C2 takes precedence.

use proptest::prelude::*;
use requiem_flash::{FlashError, FlashSpec, Lun, PagePayload, PageState};

/// Arbitrary op against a tiny geometry.
#[derive(Debug, Clone)]
enum Op {
    Read { plane: u32, block: u32, page: u32 },
    Program { plane: u32, block: u32, page: u32 },
    Erase { plane: u32, block: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // geometry used below: 2 planes x 4 blocks x 8 pages
    prop_oneof![
        (0..2u32, 0..4u32, 0..8u32).prop_map(|(plane, block, page)| Op::Read {
            plane,
            block,
            page
        }),
        (0..2u32, 0..4u32, 0..8u32).prop_map(|(plane, block, page)| Op::Program {
            plane,
            block,
            page
        }),
        (0..2u32, 0..4u32).prop_map(|(plane, block)| Op::Erase { plane, block }),
    ]
}

fn tiny_spec() -> FlashSpec {
    let mut spec = FlashSpec::mlc_small();
    spec.geometry = requiem_flash::Geometry::new(2, 4, 8, 512);
    spec
}

#[derive(Clone, Default)]
struct ShadowBlock {
    wp: u32,
    programmed: [bool; 8],
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A shadow model tracking (write point, programmed set) must always
    /// agree with the Lun, and the Lun must accept exactly the legal
    /// programs.
    #[test]
    fn state_machine_agrees_with_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let spec = tiny_spec();
        let g = spec.geometry.clone();
        let mut lun = Lun::new(0, spec, 1234);
        let mut shadow: Vec<ShadowBlock> =
            vec![ShadowBlock::default(); g.total_blocks() as usize];

        for op in ops {
            match op {
                Op::Read { plane, block, page } => {
                    let a = g.page_addr(plane, block, page);
                    let out = lun.read(a);
                    // fresh device, zero wear: reads never fail
                    prop_assert!(out.is_ok());
                    let bidx = g.block_index(g.block_of(a)) as usize;
                    let payload = out.unwrap().payload;
                    if shadow[bidx].programmed[page as usize] {
                        prop_assert_ne!(payload, PagePayload::Empty);
                    } else {
                        prop_assert_eq!(payload, PagePayload::Empty);
                    }
                }
                Op::Program { plane, block, page } => {
                    let a = g.page_addr(plane, block, page);
                    let bidx = g.block_index(g.block_of(a)) as usize;
                    let legal = page >= shadow[bidx].wp;
                    let res = lun.program(a, PagePayload::Tag(u64::from(page) + 1));
                    if legal {
                        prop_assert!(res.is_ok(), "legal program rejected: {:?}", res);
                        shadow[bidx].wp = page + 1;
                        shadow[bidx].programmed[page as usize] = true;
                    } else {
                        prop_assert!(res.is_err(), "illegal program accepted at {a:?}");
                        match res.unwrap_err() {
                            FlashError::ProgramDirtyPage { .. } => {
                                prop_assert!(shadow[bidx].programmed[page as usize]);
                            }
                            FlashError::NonSequentialProgram { expected, .. } => {
                                // a skipped (gap) page below the write point
                                prop_assert!(!shadow[bidx].programmed[page as usize]);
                                prop_assert_eq!(expected, shadow[bidx].wp);
                                prop_assert!(page < shadow[bidx].wp);
                            }
                            other => prop_assert!(false, "unexpected error {other}"),
                        }
                    }
                }
                Op::Erase { plane, block } => {
                    let b = g.block_addr(plane, block);
                    let before = lun.block_state(b).erase_count;
                    lun.erase(b).unwrap(); // fresh device: never fails
                    prop_assert_eq!(lun.block_state(b).erase_count, before + 1);
                    let bidx = g.block_index(b) as usize;
                    shadow[bidx] = ShadowBlock::default();
                }
            }
        }

        // final consistency: page states agree with the shadow
        for b in g.blocks() {
            let bidx = g.block_index(b) as usize;
            for a in g.pages_of(b) {
                let expect = if shadow[bidx].programmed[a.page as usize] {
                    PageState::Programmed
                } else {
                    PageState::Free
                };
                prop_assert_eq!(lun.page_state(a), expect);
            }
        }
    }

    /// Payloads survive arbitrary interleavings: whatever tag was last
    /// programmed to a page reads back until the block is erased.
    #[test]
    fn payload_durability(seq in proptest::collection::vec((0..4u32, 0..8u32), 1..100)) {
        let spec = tiny_spec();
        let g = spec.geometry.clone();
        let mut lun = Lun::new(0, spec, 99);
        // interpretation: (block, n) -> program next n pages of block 'block'
        // on plane 0, erasing first if full; token = unique counter
        let mut token = 1u64;
        let mut expected: std::collections::HashMap<(u32, u32), u64> = Default::default();
        for (block, n) in seq {
            for _ in 0..=n {
                let wp = lun.block_state(g.block_addr(0, block)).write_point;
                if wp >= g.pages_per_block {
                    lun.erase(g.block_addr(0, block)).unwrap();
                    expected.retain(|&(b, _), _| b != block);
                    continue;
                }
                lun.program(g.page_addr(0, block, wp), PagePayload::Tag(token)).unwrap();
                expected.insert((block, wp), token);
                token += 1;
            }
        }
        for ((block, page), tok) in expected {
            let got = lun.read(g.page_addr(0, block, page)).unwrap().payload;
            prop_assert_eq!(got, PagePayload::Tag(tok));
        }
    }

    /// Geometry ppn mapping is a bijection for arbitrary shapes.
    #[test]
    fn ppn_bijection(planes in 1..4u32, blocks in 1..20u32, pages in 1..32u32) {
        let g = requiem_flash::Geometry::new(planes, blocks, pages, 512);
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.total_pages() {
            let a = g.addr(requiem_flash::Ppn(i));
            prop_assert!(g.contains(a));
            prop_assert_eq!(g.ppn(a).0, i);
            prop_assert!(seen.insert(a), "duplicate address {a:?}");
        }
    }
}
