//! Physical layout of one LUN and its address types.
//!
//! A LUN (logical unit, usually one die) is structured as
//! `planes × blocks-per-plane × pages-per-block × page-size`. Multi-plane
//! layouts permit plane-parallel operations (an SSD-level optimization); at
//! this layer planes are simply an addressing dimension.

use serde::{Deserialize, Serialize};

/// Physical layout parameters of a LUN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of planes in the LUN (typically 1, 2 or 4).
    pub planes: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block (paper: 64–256).
    pub pages_per_block: u32,
    /// User-data bytes per page (paper: 512–4096; modern chips larger).
    pub page_size: u32,
}

/// Address of a page within a LUN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// Plane index.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

/// Address of an erase block within a LUN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Plane index.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
}

/// A flat physical page number within one LUN — the dense index form of
/// [`PageAddr`], handy as a map key or array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ppn(pub u64);

impl Geometry {
    /// Construct a geometry; all dimensions must be non-zero.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(planes: u32, blocks_per_plane: u32, pages_per_block: u32, page_size: u32) -> Self {
        assert!(planes > 0, "geometry needs >=1 plane");
        assert!(blocks_per_plane > 0, "geometry needs >=1 block per plane");
        assert!(pages_per_block > 0, "geometry needs >=1 page per block");
        assert!(page_size > 0, "geometry needs non-zero page size");
        Geometry {
            planes,
            blocks_per_plane,
            pages_per_block,
            page_size,
        }
    }

    /// Total erase blocks in the LUN.
    #[inline]
    pub fn total_blocks(&self) -> u32 {
        self.planes * self.blocks_per_plane
    }

    /// Total pages in the LUN.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() as u64 * self.pages_per_block as u64
    }

    /// Bytes in one erase block.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Build a checked [`PageAddr`].
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn page_addr(&self, plane: u32, block: u32, page: u32) -> PageAddr {
        assert!(plane < self.planes, "plane {plane} out of range");
        assert!(block < self.blocks_per_plane, "block {block} out of range");
        assert!(page < self.pages_per_block, "page {page} out of range");
        PageAddr { plane, block, page }
    }

    /// Build a checked [`BlockAddr`].
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn block_addr(&self, plane: u32, block: u32) -> BlockAddr {
        assert!(plane < self.planes, "plane {plane} out of range");
        assert!(block < self.blocks_per_plane, "block {block} out of range");
        BlockAddr { plane, block }
    }

    /// True if the address lies inside this geometry.
    pub fn contains(&self, a: PageAddr) -> bool {
        a.plane < self.planes && a.block < self.blocks_per_plane && a.page < self.pages_per_block
    }

    /// True if the block address lies inside this geometry.
    pub fn contains_block(&self, a: BlockAddr) -> bool {
        a.plane < self.planes && a.block < self.blocks_per_plane
    }

    /// Dense block index of a [`BlockAddr`] in `[0, total_blocks)`.
    #[inline]
    pub fn block_index(&self, a: BlockAddr) -> u32 {
        a.plane * self.blocks_per_plane + a.block
    }

    /// Inverse of [`Geometry::block_index`].
    #[inline]
    pub fn block_from_index(&self, idx: u32) -> BlockAddr {
        debug_assert!(idx < self.total_blocks());
        BlockAddr {
            plane: idx / self.blocks_per_plane,
            block: idx % self.blocks_per_plane,
        }
    }

    /// Dense physical page number of a [`PageAddr`] in `[0, total_pages)`.
    #[inline]
    pub fn ppn(&self, a: PageAddr) -> Ppn {
        let block_idx = self.block_index(BlockAddr {
            plane: a.plane,
            block: a.block,
        }) as u64;
        Ppn(block_idx * self.pages_per_block as u64 + a.page as u64)
    }

    /// Inverse of [`Geometry::ppn`].
    #[inline]
    pub fn addr(&self, ppn: Ppn) -> PageAddr {
        debug_assert!(ppn.0 < self.total_pages());
        let block_idx = (ppn.0 / self.pages_per_block as u64) as u32;
        let page = (ppn.0 % self.pages_per_block as u64) as u32;
        let b = self.block_from_index(block_idx);
        PageAddr {
            plane: b.plane,
            block: b.block,
            page,
        }
    }

    /// The block containing a page.
    #[inline]
    pub fn block_of(&self, a: PageAddr) -> BlockAddr {
        BlockAddr {
            plane: a.plane,
            block: a.block,
        }
    }

    /// Iterate over every block address in plane-major order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (0..self.total_blocks()).map(|i| self.block_from_index(i))
    }

    /// Iterate over every page address of one block in program order.
    pub fn pages_of(&self, b: BlockAddr) -> impl Iterator<Item = PageAddr> + '_ {
        (0..self.pages_per_block).map(move |page| PageAddr {
            plane: b.plane,
            block: b.block,
            page,
        })
    }
}

impl std::fmt::Display for PageAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pl{}/blk{}/pg{}", self.plane, self.block, self.page)
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pl{}/blk{}", self.plane, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Geometry {
        Geometry::new(2, 64, 16, 4096)
    }

    #[test]
    fn totals() {
        let g = g();
        assert_eq!(g.total_blocks(), 128);
        assert_eq!(g.total_pages(), 2048);
        assert_eq!(g.block_bytes(), 64 * 1024);
    }

    #[test]
    fn ppn_roundtrip_all_pages() {
        let g = g();
        for i in 0..g.total_pages() {
            let a = g.addr(Ppn(i));
            assert!(g.contains(a));
            assert_eq!(g.ppn(a), Ppn(i));
        }
    }

    #[test]
    fn block_index_roundtrip() {
        let g = g();
        for i in 0..g.total_blocks() {
            let b = g.block_from_index(i);
            assert!(g.contains_block(b));
            assert_eq!(g.block_index(b), i);
        }
    }

    #[test]
    #[should_panic(expected = "page 16 out of range")]
    fn page_addr_bounds_checked() {
        g().page_addr(0, 0, 16);
    }

    #[test]
    #[should_panic(expected = "needs >=1 plane")]
    fn zero_planes_rejected() {
        Geometry::new(0, 1, 1, 512);
    }

    #[test]
    fn pages_of_block_in_program_order() {
        let g = g();
        let b = g.block_addr(1, 3);
        let pages: Vec<_> = g.pages_of(b).collect();
        assert_eq!(pages.len(), 16);
        assert_eq!(pages[0], g.page_addr(1, 3, 0));
        assert_eq!(pages[15], g.page_addr(1, 3, 15));
    }

    #[test]
    fn blocks_iterates_all() {
        let g = g();
        assert_eq!(g.blocks().count(), 128);
    }

    #[test]
    fn display_formats() {
        let g = g();
        assert_eq!(g.page_addr(1, 2, 3).to_string(), "pl1/blk2/pg3");
        assert_eq!(g.block_addr(1, 2).to_string(), "pl1/blk2");
    }
}
