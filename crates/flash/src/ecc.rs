//! Error-correction model.
//!
//! SSD controllers wrap every flash page in an ECC codeword (BCH in the
//! paper's era, LDPC later). The paper's myth 1 notes that *"the necessary
//! error management … should take place within a device controller"* — so
//! the model belongs here, below the FTL, invisible to the host.
//!
//! We model ECC statistically: a page read draws a raw bit-error count from
//! a binomial (approximated by a Poisson, accurate for small p and large n)
//! with rate `RBER × page_bits`. If the count exceeds the per-page
//! correction capability, the read is uncorrectable.

use requiem_sim::SimRng;
use serde::{Deserialize, Serialize};

/// ECC capability configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccConfig {
    /// Correctable bits per 1 KiB sector.
    pub correctable_per_1k: u32,
    /// Human-readable scheme name (reporting only).
    pub scheme: EccScheme,
}

/// ECC scheme family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccScheme {
    /// Bose–Chaudhuri–Hocquenghem, the 2012-era standard.
    Bch,
    /// Low-density parity check, higher capability.
    Ldpc,
}

impl EccConfig {
    /// 8-bit BCH per 1 KiB — SLC-class.
    pub fn bch_8_per_1k() -> Self {
        EccConfig {
            correctable_per_1k: 8,
            scheme: EccScheme::Bch,
        }
    }

    /// 24-bit BCH per 1 KiB — MLC-class (c. 2012).
    pub fn bch_24_per_1k() -> Self {
        EccConfig {
            correctable_per_1k: 24,
            scheme: EccScheme::Bch,
        }
    }

    /// 40-bit LDPC per 1 KiB — TLC-class.
    pub fn ldpc_40_per_1k() -> Self {
        EccConfig {
            correctable_per_1k: 40,
            scheme: EccScheme::Ldpc,
        }
    }

    /// Correctable bits for a whole page of `page_size` bytes.
    pub fn correctable_for_page(&self, page_size: u32) -> u32 {
        let sectors = page_size.div_ceil(1024);
        sectors * self.correctable_per_1k
    }

    /// Draw a raw bit-error count for one page read.
    ///
    /// Poisson(λ = rber × bits) sampled by inversion; exact for the small λ
    /// regime flash operates in (λ ≪ capability except near wear-out).
    pub fn sample_raw_errors(&self, rber: f64, page_size: u32, rng: &mut SimRng) -> u32 {
        let bits = page_size as f64 * 8.0;
        let lambda = (rber * bits).max(0.0);
        if lambda == 0.0 {
            return 0;
        }
        // Knuth inversion for modest λ; for large λ fall back to the
        // normal approximation (wear far past end of life).
        if lambda < 64.0 {
            let l = (-lambda).exp();
            let mut k = 0u32;
            let mut p = 1.0;
            loop {
                p *= rng.unit();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 100_000 {
                    return k; // numeric guard; unreachable in practice
                }
            }
        } else {
            let z = normal_sample(rng);
            let x = lambda + lambda.sqrt() * z;
            x.max(0.0).round() as u32
        }
    }

    /// Decide a read outcome: `(raw_errors, correctable?)`.
    pub fn decode(&self, rber: f64, page_size: u32, rng: &mut SimRng) -> (u32, bool) {
        let raw = self.sample_raw_errors(rber, page_size, rng);
        (raw, raw <= self.correctable_for_page(page_size))
    }
}

/// Standard normal via Box–Muller (only used in the far-worn regime).
fn normal_sample(rng: &mut SimRng) -> f64 {
    let u1 = rng.unit().max(f64::MIN_POSITIVE);
    let u2 = rng.unit();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_capability_scales_with_sectors() {
        let ecc = EccConfig::bch_24_per_1k();
        assert_eq!(ecc.correctable_for_page(1024), 24);
        assert_eq!(ecc.correctable_for_page(4096), 96);
        assert_eq!(ecc.correctable_for_page(4097), 120); // rounds up
    }

    #[test]
    fn fresh_flash_reads_are_clean() {
        let ecc = EccConfig::bch_24_per_1k();
        let mut rng = SimRng::from_seed(1);
        // MLC fresh rber=1e-7 → λ ≈ 0.0033 per 4KiB page; ~all zero errors
        let mut total = 0u32;
        for _ in 0..1000 {
            let (raw, ok) = ecc.decode(1e-7, 4096, &mut rng);
            total += raw;
            assert!(ok);
        }
        assert!(total < 20, "total={total}");
    }

    #[test]
    fn worn_flash_exceeds_capability() {
        let ecc = EccConfig::bch_24_per_1k();
        let mut rng = SimRng::from_seed(2);
        // RBER 1e-2 → λ ≈ 328 per 4KiB page ≫ 96 correctable
        let mut failures = 0;
        for _ in 0..100 {
            let (_, ok) = ecc.decode(1e-2, 4096, &mut rng);
            if !ok {
                failures += 1;
            }
        }
        assert_eq!(failures, 100);
    }

    #[test]
    fn poisson_mean_roughly_lambda() {
        let ecc = EccConfig::bch_24_per_1k();
        let mut rng = SimRng::from_seed(3);
        // λ = 1e-4 * 32768 = 3.2768
        let n = 10_000;
        let sum: u64 = (0..n)
            .map(|_| ecc.sample_raw_errors(1e-4, 4096, &mut rng) as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.2768).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn large_lambda_uses_normal_path() {
        let ecc = EccConfig::bch_24_per_1k();
        let mut rng = SimRng::from_seed(4);
        // λ = 0.01 * 32768 ≈ 327.7 — exercises the normal branch
        let n = 2_000;
        let sum: u64 = (0..n)
            .map(|_| ecc.sample_raw_errors(0.01, 4096, &mut rng) as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 327.68).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn zero_rber_zero_errors() {
        let ecc = EccConfig::bch_8_per_1k();
        let mut rng = SimRng::from_seed(5);
        assert_eq!(ecc.sample_raw_errors(0.0, 4096, &mut rng), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ecc = EccConfig::ldpc_40_per_1k();
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        for _ in 0..100 {
            assert_eq!(
                ecc.sample_raw_errors(1e-5, 4096, &mut a),
                ecc.sample_raw_errors(1e-5, 4096, &mut b)
            );
        }
    }
}
