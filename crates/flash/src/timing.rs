//! Flash operation latencies.
//!
//! Latency constants reflect c. 2012 datasheets (ONFI-class dies), the
//! hardware generation the paper discusses:
//!
//! | cell | read (tR) | program (tPROG) | erase (tBERS) |
//! |------|-----------|-----------------|---------------|
//! | SLC  | 25 µs     | 200 µs          | 1.5 ms        |
//! | MLC  | 50 µs     | 600 µs / 1.2 ms | 3 ms          |
//! | TLC  | 75 µs     | 900 µs / 2.1 ms | 4 ms          |
//!
//! MLC/TLC program times are *paired-page* asymmetric: the cells of a
//! word-line hold multiple bits, and the "fast" (LSB) pages program much
//! faster than the "slow" (MSB) pages. The 3 ms erase is the paper's own
//! number for a read stalling behind an erase (myth 3).

use requiem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Latency model of one flash die.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashTiming {
    /// Page read (array-to-register), tR.
    pub read: SimDuration,
    /// Fast-page program (LSB pages), tPROG fast.
    pub program_fast: SimDuration,
    /// Slow-page program (MSB pages), tPROG slow. Equal to
    /// `program_fast` for SLC.
    pub program_slow: SimDuration,
    /// Block erase, tBERS.
    pub erase: SimDuration,
    /// How many consecutive pages share a speed class (pairing stride).
    /// With stride 2: pages 0,1 fast; 2,3 slow; 4,5 fast; …
    /// Stride 0 disables pairing (all pages fast).
    pub pairing_stride: u32,
}

impl FlashTiming {
    /// SLC timings: uniform fast programs.
    pub fn slc() -> Self {
        FlashTiming {
            read: SimDuration::from_micros(25),
            program_fast: SimDuration::from_micros(200),
            program_slow: SimDuration::from_micros(200),
            erase: SimDuration::from_micros(1_500),
            pairing_stride: 0,
        }
    }

    /// MLC timings with fast/slow paired pages.
    pub fn mlc() -> Self {
        FlashTiming {
            read: SimDuration::from_micros(50),
            program_fast: SimDuration::from_micros(600),
            program_slow: SimDuration::from_micros(1_200),
            erase: SimDuration::from_micros(3_000),
            pairing_stride: 2,
        }
    }

    /// TLC timings: slowest, largest fast/slow asymmetry.
    pub fn tlc() -> Self {
        FlashTiming {
            read: SimDuration::from_micros(75),
            program_fast: SimDuration::from_micros(900),
            program_slow: SimDuration::from_micros(2_100),
            erase: SimDuration::from_micros(4_000),
            pairing_stride: 2,
        }
    }

    /// Program latency for a page index within its block, applying paired-
    /// page asymmetry.
    pub fn program(&self, page_in_block: u32) -> SimDuration {
        if self.pairing_stride == 0 {
            return self.program_fast;
        }
        // groups of `stride` pages alternate fast/slow
        let group = page_in_block / self.pairing_stride;
        if group % 2 == 0 {
            self.program_fast
        } else {
            self.program_slow
        }
    }

    /// Mean program latency across a block (used for capacity planning).
    pub fn program_mean(&self) -> SimDuration {
        if self.pairing_stride == 0 {
            self.program_fast
        } else {
            (self.program_fast + self.program_slow) / 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_density() {
        let slc = FlashTiming::slc();
        let mlc = FlashTiming::mlc();
        let tlc = FlashTiming::tlc();
        assert!(slc.read < mlc.read && mlc.read < tlc.read);
        assert!(slc.program_mean() < mlc.program_mean());
        assert!(mlc.program_mean() < tlc.program_mean());
        assert!(slc.erase < mlc.erase && mlc.erase < tlc.erase);
    }

    #[test]
    fn paper_numbers_hold() {
        // myth 3's "wait 3ms for the completion of an erase" is MLC tBERS
        assert_eq!(FlashTiming::mlc().erase, SimDuration::from_millis(3));
        // chip-level reads are much cheaper than programs (myth 3 premise)
        let mlc = FlashTiming::mlc();
        assert!(mlc.program_mean().as_nanos() >= 10 * mlc.read.as_nanos());
    }

    #[test]
    fn paired_pages_alternate() {
        let t = FlashTiming::mlc(); // stride 2
        assert_eq!(t.program(0), t.program_fast);
        assert_eq!(t.program(1), t.program_fast);
        assert_eq!(t.program(2), t.program_slow);
        assert_eq!(t.program(3), t.program_slow);
        assert_eq!(t.program(4), t.program_fast);
    }

    #[test]
    fn slc_has_uniform_programs() {
        let t = FlashTiming::slc();
        for p in 0..8 {
            assert_eq!(t.program(p), t.program_fast);
        }
        assert_eq!(t.program_mean(), t.program_fast);
    }

    #[test]
    fn mean_is_midpoint_for_paired() {
        let t = FlashTiming::mlc();
        assert_eq!(t.program_mean(), SimDuration::from_micros(900));
    }
}
