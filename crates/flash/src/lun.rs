//! The LUN: the stateful flash die model and unit of operation interleaving.
//!
//! *"LUNs are the unit of operation interleaving, i.e., operations on
//! distinct LUNs can be executed in parallel, while operations on a same
//! LUN are executed serially."* (§2.2)
//!
//! A [`Lun`] owns the page/block state machine and enforces C1–C4. It is a
//! *semantic + timing oracle*: every successful operation returns the
//! duration it would occupy the die. Serialization of operations in time is
//! the caller's job (in `requiem-ssd`, a [`requiem_sim::Resource`] per LUN).

use requiem_sim::time::SimDuration;
use requiem_sim::{FaultView, SimRng};

use crate::error::FlashError;
use crate::geometry::{BlockAddr, Geometry, PageAddr};
use crate::FlashSpec;

/// State of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased, ready to program.
    Free,
    /// Programmed with live or stale data (liveness is FTL-level knowledge;
    /// the chip only knows "programmed").
    Programmed,
}

/// What a page holds. Real chips hold 4 KiB of bytes plus out-of-band
/// metadata; simulations rarely need the bytes. [`PagePayload::Tag`] carries
/// a compact token (e.g. the logical page number an FTL stored there, which
/// is how real FTLs rebuild their mapping after power loss). Byte payloads
/// are available for end-to-end data-integrity tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PagePayload {
    /// Erased / never written.
    #[default]
    Empty,
    /// Compact token payload (cheap, the common case in experiments).
    Tag(u64),
    /// FTL out-of-band metadata: the logical page stored here plus a
    /// monotonic write sequence number — exactly what real FTLs keep in
    /// the spare area so the mapping can be rebuilt after power loss.
    Oob {
        /// Logical page number.
        lpn: u64,
        /// Global write sequence (newest wins during rebuild).
        seq: u64,
    },
    /// Full byte payload (used by the database integrity tests).
    Bytes(Box<[u8]>),
}

/// Outcome of a program or erase: how long the die is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// Die-busy time for the operation.
    pub duration: SimDuration,
}

/// Outcome of a read: duration, payload, and the raw bit errors the ECC
/// corrected (observable by controllers that track block health).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Die-busy time (tR). Transfer time is a channel concern.
    pub duration: SimDuration,
    /// The stored payload.
    pub payload: PagePayload,
    /// Raw bit errors corrected by ECC on this read.
    pub corrected_errors: u32,
}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
pub struct BlockState {
    /// P/E cycles sustained (C4).
    pub erase_count: u32,
    /// Next page index the write point expects (C3).
    pub write_point: u32,
    /// True once the block has failed and been retired.
    pub bad: bool,
    /// Page reads since the last erase (read-disturb accumulator).
    pub reads_since_erase: u64,
}

struct Block {
    state: BlockState,
    pages: Vec<PageState>,
    payloads: Vec<PagePayload>,
}

/// One flash die with full state tracking.
pub struct Lun {
    id: u32,
    spec: FlashSpec,
    blocks: Vec<Block>,
    rng: SimRng,
    /// Counters for reporting.
    reads: u64,
    programs: u64,
    erases: u64,
    /// Deterministic fault-injection schedules for this unit
    /// ([`FaultView::none`] by default — bit-exact identity).
    faults: FaultView,
}

impl std::fmt::Debug for Lun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lun")
            .field("id", &self.id)
            .field("geometry", &self.spec.geometry)
            .field("reads", &self.reads)
            .field("programs", &self.programs)
            .field("erases", &self.erases)
            .finish()
    }
}

impl Lun {
    /// Create a fresh (fully erased) LUN. `seed` feeds the error-injection
    /// stream; LUNs with different ids derive different streams.
    pub fn new(id: u32, spec: FlashSpec, seed: u64) -> Self {
        let nblocks = spec.geometry.total_blocks() as usize;
        let ppb = spec.geometry.pages_per_block as usize;
        let blocks = (0..nblocks)
            .map(|_| Block {
                state: BlockState {
                    erase_count: 0,
                    write_point: 0,
                    bad: false,
                    reads_since_erase: 0,
                },
                pages: vec![PageState::Free; ppb],
                payloads: vec![PagePayload::Empty; ppb],
            })
            .collect();
        let rng = SimRng::from_seed(seed).derive(&format!("lun{id}"));
        Lun {
            id,
            spec,
            blocks,
            rng,
            reads: 0,
            programs: 0,
            erases: 0,
            faults: FaultView::none(),
        }
    }

    /// Install a deterministic fault view (from
    /// [`requiem_sim::FaultPlan::unit_view`]). The identity view keeps
    /// the LUN bit-identical to a fault-oblivious build: the RBER
    /// multiplier is 1.0 (exact in IEEE-754) and the empty schedules
    /// never match an operation index, so no extra randomness is drawn.
    pub fn apply_faults(&mut self, view: FaultView) {
        self.faults = view;
    }

    /// The installed fault view.
    pub fn faults(&self) -> &FaultView {
        &self.faults
    }

    /// This LUN's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The LUN's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.spec.geometry
    }

    /// The LUN's full spec.
    pub fn spec(&self) -> &FlashSpec {
        &self.spec
    }

    fn block(&self, b: BlockAddr) -> &Block {
        &self.blocks[self.spec.geometry.block_index(b) as usize]
    }

    fn block_mut(&mut self, b: BlockAddr) -> &mut Block {
        let idx = self.spec.geometry.block_index(b) as usize;
        &mut self.blocks[idx]
    }

    /// Bookkeeping for one block.
    pub fn block_state(&self, b: BlockAddr) -> &BlockState {
        &self.block(b).state
    }

    /// State of one page.
    pub fn page_state(&self, a: PageAddr) -> PageState {
        self.block(self.spec.geometry.block_of(a)).pages[a.page as usize]
    }

    /// Wear ratio of a block: `erase_count / endurance`.
    pub fn wear_ratio(&self, b: BlockAddr) -> f64 {
        self.block(b).state.erase_count as f64 / self.spec.endurance() as f64
    }

    /// `(reads, programs, erases)` issued so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.reads, self.programs, self.erases)
    }

    /// Read one page (C1: page granularity).
    ///
    /// Reading an erased page is legal and returns
    /// [`PagePayload::Empty`] (all-ones on real flash). Wear raises the raw
    /// bit error rate; if errors exceed ECC capability the read fails with
    /// [`FlashError::UncorrectableRead`].
    pub fn read(&mut self, a: PageAddr) -> Result<ReadOutcome, FlashError> {
        if !self.spec.geometry.contains(a) {
            return Err(FlashError::OutOfRange { addr: a });
        }
        let baddr = self.spec.geometry.block_of(a);
        if self.block(baddr).state.bad {
            return Err(FlashError::BadBlock { block: baddr });
        }
        self.reads += 1;
        self.block_mut(baddr).state.reads_since_erase += 1;
        let wear = self.wear_ratio(baddr);
        let disturb = self
            .spec
            .cell
            .read_disturb_factor(self.block(baddr).state.reads_since_erase);
        let rber = self.spec.cell.rber(wear) * disturb * self.faults.rber_multiplier;
        let page_size = self.spec.geometry.page_size;
        let (raw, correctable) = self.spec.ecc.decode(rber, page_size, &mut self.rng);
        if !correctable {
            return Err(FlashError::UncorrectableRead {
                addr: a,
                raw_errors: raw,
                correctable: self.spec.ecc.correctable_for_page(page_size),
            });
        }
        let block = self.block(baddr);
        Ok(ReadOutcome {
            duration: self.spec.timing.read,
            payload: block.payloads[a.page as usize].clone(),
            corrected_errors: raw,
        })
    }

    /// A calibrated recovery re-read: the controller shifts read
    /// reference voltages (`rber_derate` < 1.0 lowers the effective raw
    /// bit error rate) and/or falls back to a stronger soft decode
    /// (`capability_boost` > 1.0 raises the correctable-bit budget).
    /// Draws the same per-read randomness as [`Lun::read`]; only ever
    /// called by recovery pipelines, so zero-fault runs that never see
    /// an uncorrectable read consume no extra randomness.
    pub fn recovery_read(
        &mut self,
        a: PageAddr,
        rber_derate: f64,
        capability_boost: f64,
    ) -> Result<ReadOutcome, FlashError> {
        if !self.spec.geometry.contains(a) {
            return Err(FlashError::OutOfRange { addr: a });
        }
        let baddr = self.spec.geometry.block_of(a);
        if self.block(baddr).state.bad {
            return Err(FlashError::BadBlock { block: baddr });
        }
        self.reads += 1;
        self.block_mut(baddr).state.reads_since_erase += 1;
        let wear = self.wear_ratio(baddr);
        let disturb = self
            .spec
            .cell
            .read_disturb_factor(self.block(baddr).state.reads_since_erase);
        let rber = self.spec.cell.rber(wear) * disturb * self.faults.rber_multiplier * rber_derate;
        let page_size = self.spec.geometry.page_size;
        let (raw, _) = self.spec.ecc.decode(rber, page_size, &mut self.rng);
        let capability = self.spec.ecc.correctable_for_page(page_size);
        let boosted = (capability as f64 * capability_boost) as u32;
        if raw > boosted {
            return Err(FlashError::UncorrectableRead {
                addr: a,
                raw_errors: raw,
                correctable: boosted,
            });
        }
        let block = self.block(baddr);
        Ok(ReadOutcome {
            duration: self.spec.timing.read,
            payload: block.payloads[a.page as usize].clone(),
            corrected_errors: raw,
        })
    }

    /// The stored payload of a page, bypassing the media error model —
    /// what a controller reconstructs when XOR parity across the stripe
    /// resolves a page the ECC could not. Timing and failure modelling
    /// of the rebuild is the controller's job; this accessor only hands
    /// back the bytes the parity math would produce. Draws no
    /// randomness.
    pub fn parity_reconstruct(&self, a: PageAddr) -> Option<PagePayload> {
        if !self.spec.geometry.contains(a) {
            return None;
        }
        let baddr = self.spec.geometry.block_of(a);
        Some(self.block(baddr).payloads[a.page as usize].clone())
    }

    /// Program one page (C1; enforces C2 and C3).
    ///
    /// Past rated endurance, programs fail probabilistically
    /// ([`FlashError::ProgramFailed`]); the controller is expected to
    /// retire the block.
    pub fn program(&mut self, a: PageAddr, payload: PagePayload) -> Result<OpOutcome, FlashError> {
        if !self.spec.geometry.contains(a) {
            return Err(FlashError::OutOfRange { addr: a });
        }
        let baddr = self.spec.geometry.block_of(a);
        let wear = self.wear_ratio(baddr);
        let endurance_exceeded = wear > 1.0;
        let block = self.block_mut(baddr);
        if block.state.bad {
            return Err(FlashError::BadBlock { block: baddr });
        }
        if block.pages[a.page as usize] != PageState::Free {
            return Err(FlashError::ProgramDirtyPage { addr: a });
        }
        // C3: pages must be programmed in ascending order within a block.
        // ONFI permits *skipping* pages but never going back below the
        // write point.
        if a.page < block.state.write_point {
            return Err(FlashError::NonSequentialProgram {
                addr: a,
                expected: block.state.write_point,
            });
        }
        // scheduled fault injection: the n-th program issued to this
        // unit fails (empty schedule = no-op, no randomness drawn)
        if self
            .faults
            .program_fail
            .binary_search(&self.programs)
            .is_ok()
        {
            self.programs += 1;
            return Err(FlashError::ProgramFailed { addr: a });
        }
        // wear-induced program failure: ramps from 0 at rated life
        if endurance_exceeded {
            let p_fail = ((wear - 1.0) * 0.5).min(0.9);
            if self.rng.chance(p_fail) {
                self.programs += 1;
                return Err(FlashError::ProgramFailed { addr: a });
            }
        }
        let block = self.block_mut(baddr);
        block.pages[a.page as usize] = PageState::Programmed;
        block.payloads[a.page as usize] = payload;
        block.state.write_point = a.page + 1;
        self.programs += 1;
        Ok(OpOutcome {
            duration: self.spec.timing.program(a.page),
        })
    }

    /// Erase one block (resets all pages to free; C4: counts wear).
    ///
    /// Past rated endurance, erases fail probabilistically and mark the
    /// block bad ([`FlashError::EraseFailed`]).
    pub fn erase(&mut self, b: BlockAddr) -> Result<OpOutcome, FlashError> {
        if !self.spec.geometry.contains_block(b) {
            return Err(FlashError::OutOfRange {
                addr: PageAddr {
                    plane: b.plane,
                    block: b.block,
                    page: 0,
                },
            });
        }
        let endurance = self.spec.endurance();
        if self.block(b).state.bad {
            return Err(FlashError::BadBlock { block: b });
        }
        // scheduled fault injection: the n-th erase issued to this unit
        // fails and retires the block (empty schedule = no-op)
        if self.faults.erase_fail.binary_search(&self.erases).is_ok() {
            self.erases += 1;
            let count = {
                let block = self.block_mut(b);
                block.state.erase_count += 1;
                block.state.bad = true;
                block.state.erase_count
            };
            return Err(FlashError::EraseFailed {
                block: b,
                erase_count: count,
            });
        }
        self.erases += 1;
        let count = {
            let block = self.block_mut(b);
            block.state.erase_count += 1;
            block.state.erase_count
        };
        let wear = count as f64 / endurance as f64;
        if wear > 1.0 {
            let p_fail = ((wear - 1.0) * 0.5).min(0.9);
            if self.rng.chance(p_fail) {
                self.block_mut(b).state.bad = true;
                return Err(FlashError::EraseFailed {
                    block: b,
                    erase_count: count,
                });
            }
        }
        let block = self.block_mut(b);
        block.state.write_point = 0;
        block.state.reads_since_erase = 0;
        block.pages.iter_mut().for_each(|p| *p = PageState::Free);
        block
            .payloads
            .iter_mut()
            .for_each(|p| *p = PagePayload::Empty);
        Ok(OpOutcome {
            duration: self.spec.timing.erase,
        })
    }

    /// Administratively mark a block bad (factory bad blocks, scan results).
    pub fn mark_bad(&mut self, b: BlockAddr) {
        self.block_mut(b).state.bad = true;
    }

    /// Count of non-bad blocks.
    pub fn good_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| !b.state.bad).count() as u32
    }

    /// Maximum erase count across blocks (wear-leveling metric).
    pub fn max_erase_count(&self) -> u32 {
        self.blocks
            .iter()
            .map(|b| b.state.erase_count)
            .max()
            .unwrap_or(0)
    }

    /// Mean erase count across blocks.
    pub fn mean_erase_count(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks
            .iter()
            .map(|b| b.state.erase_count as f64)
            .sum::<f64>()
            / self.blocks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lun() -> Lun {
        Lun::new(0, FlashSpec::mlc_small(), 7)
    }

    #[test]
    fn fresh_lun_is_all_free() {
        let mut l = lun();
        let g = l.geometry().clone();
        for b in g.blocks() {
            assert_eq!(l.block_state(b).erase_count, 0);
            assert!(!l.block_state(b).bad);
        }
        let r = l.read(g.page_addr(0, 0, 0)).unwrap();
        assert_eq!(r.payload, PagePayload::Empty);
    }

    #[test]
    fn program_then_read_roundtrips_payload() {
        let mut l = lun();
        let a = l.geometry().page_addr(1, 3, 0);
        l.program(a, PagePayload::Tag(99)).unwrap();
        assert_eq!(l.read(a).unwrap().payload, PagePayload::Tag(99));
        assert_eq!(l.page_state(a), PageState::Programmed);
    }

    #[test]
    fn c2_program_dirty_page_rejected() {
        let mut l = lun();
        let a = l.geometry().page_addr(0, 0, 0);
        l.program(a, PagePayload::Tag(1)).unwrap();
        let err = l.program(a, PagePayload::Tag(2)).unwrap_err();
        assert!(matches!(err, FlashError::ProgramDirtyPage { .. }));
    }

    #[test]
    fn c3_descending_program_rejected_but_gaps_allowed() {
        let mut l = lun();
        // skipping ahead is legal (ONFI allows gaps)…
        let skip = l.geometry().page_addr(0, 0, 5);
        l.program(skip, PagePayload::Tag(1)).unwrap();
        // …but going back below the write point is not
        let back = l.geometry().page_addr(0, 0, 2);
        let err = l.program(back, PagePayload::Tag(2)).unwrap_err();
        assert_eq!(
            err,
            FlashError::NonSequentialProgram {
                addr: back,
                expected: 6
            }
        );
        // skipped pages read as empty
        let gap = l.geometry().page_addr(0, 0, 3);
        assert_eq!(l.read(gap).unwrap().payload, PagePayload::Empty);
    }

    #[test]
    fn erase_resets_write_point_and_pages() {
        let mut l = lun();
        let g = l.geometry().clone();
        let b = g.block_addr(0, 2);
        for p in 0..g.pages_per_block {
            l.program(g.page_addr(0, 2, p), PagePayload::Tag(p as u64))
                .unwrap();
        }
        // block full: next program violates C2
        assert!(l
            .program(g.page_addr(0, 2, 0), PagePayload::Tag(0))
            .is_err());
        l.erase(b).unwrap();
        assert_eq!(l.block_state(b).erase_count, 1);
        assert_eq!(l.block_state(b).write_point, 0);
        assert_eq!(
            l.read(g.page_addr(0, 2, 3)).unwrap().payload,
            PagePayload::Empty
        );
        // and the block can be rewritten from page 0
        l.program(g.page_addr(0, 2, 0), PagePayload::Tag(42))
            .unwrap();
    }

    #[test]
    fn c4_wear_eventually_kills_block() {
        // use TLC (5000 cycles) and hammer one block well past endurance
        let mut l = Lun::new(0, FlashSpec::tlc_small(), 3);
        let b = l.geometry().block_addr(0, 0);
        let mut died = None;
        for i in 0..20_000u32 {
            match l.erase(b) {
                Ok(_) => {}
                Err(FlashError::EraseFailed { erase_count, .. }) => {
                    died = Some((i, erase_count));
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let (_, count) = died.expect("block should die past endurance");
        assert!(count > 5_000, "died too early: {count}");
        assert!(l.block_state(b).bad);
        // further ops rejected
        assert!(matches!(l.erase(b), Err(FlashError::BadBlock { .. })));
        assert!(matches!(
            l.read(l.geometry().page_addr(0, 0, 0)),
            Err(FlashError::BadBlock { .. })
        ));
        assert_eq!(l.good_blocks(), l.geometry().total_blocks() - 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut l = lun();
        let bad = PageAddr {
            plane: 9,
            block: 0,
            page: 0,
        };
        assert!(matches!(l.read(bad), Err(FlashError::OutOfRange { .. })));
        assert!(matches!(
            l.program(bad, PagePayload::Empty),
            Err(FlashError::OutOfRange { .. })
        ));
    }

    #[test]
    fn durations_follow_timing_model() {
        let mut l = lun();
        let g = l.geometry().clone();
        let t = l.spec().timing.clone();
        assert_eq!(l.read(g.page_addr(0, 0, 0)).unwrap().duration, t.read);
        for p in 0..4 {
            let d = l
                .program(g.page_addr(0, 1, p), PagePayload::Tag(0))
                .unwrap()
                .duration;
            assert_eq!(d, t.program(p));
        }
        assert_eq!(l.erase(g.block_addr(0, 1)).unwrap().duration, t.erase);
    }

    #[test]
    fn op_counts_track() {
        let mut l = lun();
        let g = l.geometry().clone();
        l.program(g.page_addr(0, 0, 0), PagePayload::Tag(0))
            .unwrap();
        l.read(g.page_addr(0, 0, 0)).unwrap();
        l.read(g.page_addr(0, 0, 0)).unwrap();
        l.erase(g.block_addr(0, 0)).unwrap();
        assert_eq!(l.op_counts(), (2, 1, 1));
    }

    #[test]
    fn wear_metrics() {
        let mut l = lun();
        let g = l.geometry().clone();
        l.erase(g.block_addr(0, 0)).unwrap();
        l.erase(g.block_addr(0, 0)).unwrap();
        l.erase(g.block_addr(0, 1)).unwrap();
        assert_eq!(l.max_erase_count(), 2);
        let expected_mean = 3.0 / g.total_blocks() as f64;
        assert!((l.mean_erase_count() - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn mark_bad_is_respected() {
        let mut l = lun();
        let b = l.geometry().block_addr(1, 1);
        l.mark_bad(b);
        assert!(matches!(l.erase(b), Err(FlashError::BadBlock { .. })));
    }

    #[test]
    fn read_counter_accumulates_and_erase_resets_it() {
        let mut l = lun();
        let g = l.geometry().clone();
        let b = g.block_addr(0, 0);
        l.program(g.page_addr(0, 0, 0), PagePayload::Tag(1))
            .unwrap();
        for _ in 0..5 {
            l.read(g.page_addr(0, 0, 0)).unwrap();
        }
        assert_eq!(l.block_state(b).reads_since_erase, 5);
        l.erase(b).unwrap();
        assert_eq!(l.block_state(b).reads_since_erase, 0);
    }

    #[test]
    fn bytes_payload_roundtrip() {
        let mut l = lun();
        let a = l.geometry().page_addr(0, 0, 0);
        let data: Box<[u8]> = vec![0xAB; 64].into_boxed_slice();
        l.program(a, PagePayload::Bytes(data.clone())).unwrap();
        assert_eq!(l.read(a).unwrap().payload, PagePayload::Bytes(data));
    }

    #[test]
    fn scheduled_program_fault_fires_deterministically() {
        let run = || {
            let mut l = lun();
            l.apply_faults(
                requiem_sim::FaultPlan::none()
                    .with_program_fail(0, vec![1])
                    .unit_view(0),
            );
            let g = l.geometry().clone();
            let r0 = l.program(g.page_addr(0, 0, 0), PagePayload::Tag(0)).is_ok();
            let r1 = l
                .program(g.page_addr(0, 0, 1), PagePayload::Tag(1))
                .is_err();
            let r2 = l.program(g.page_addr(0, 0, 1), PagePayload::Tag(1)).is_ok();
            (r0, r1, r2, l.op_counts())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault-injected runs must replay identically");
        assert_eq!(a, (true, true, true, (0, 3, 0)));
    }

    #[test]
    fn scheduled_erase_fault_retires_block() {
        let mut l = lun();
        l.apply_faults(
            requiem_sim::FaultPlan::none()
                .with_erase_fail(0, vec![0])
                .unit_view(0),
        );
        let b = l.geometry().block_addr(0, 0);
        assert!(matches!(l.erase(b), Err(FlashError::EraseFailed { .. })));
        assert!(l.block_state(b).bad);
        // the schedule named only erase 0: the next block erases fine
        assert!(l.erase(l.geometry().block_addr(0, 1)).is_ok());
    }

    #[test]
    fn rber_elevation_makes_reads_uncorrectable() {
        let mut l = lun();
        let a = l.geometry().page_addr(0, 0, 0);
        l.program(a, PagePayload::Tag(7)).unwrap();
        // enormous multiplier: ECC capability is exceeded on every read
        l.apply_faults(requiem_sim::FaultPlan::uniform_rber(1e9).unit_view(0));
        assert!(matches!(
            l.read(a),
            Err(FlashError::UncorrectableRead { .. })
        ));
        // a strong-enough recovery derate brings it back
        let rec = l.recovery_read(a, 1e-9, 1.5).unwrap();
        assert_eq!(rec.payload, PagePayload::Tag(7));
        // parity reconstruction sees the bytes without the error model
        assert_eq!(l.parity_reconstruct(a), Some(PagePayload::Tag(7)));
    }

    #[test]
    fn identity_view_changes_nothing() {
        let trace = |inject: bool| {
            let mut l = lun();
            if inject {
                l.apply_faults(requiem_sim::FaultPlan::none().unit_view(0));
            }
            let g = l.geometry().clone();
            let mut out = Vec::new();
            for p in 0..4 {
                out.push(format!(
                    "{:?}",
                    l.program(g.page_addr(0, 0, p), PagePayload::Tag(p as u64))
                ));
                out.push(format!("{:?}", l.read(g.page_addr(0, 0, p))));
            }
            out.push(format!("{:?}", l.erase(g.block_addr(0, 0))));
            out
        };
        assert_eq!(trace(false), trace(true));
    }
}
