//! Flash operation errors.
//!
//! Constraint violations (C1–C3) are *programming errors in the caller* —
//! an FTL that triggers them is buggy — but they are reported as values,
//! not panics, because the paper's myth 1 discussion hinges on what happens
//! when software above the chip (or a host bypassing the FTL) is allowed to
//! violate them. Media failures (C4 aftermath) are genuine runtime events
//! any controller must handle.

use crate::geometry::{BlockAddr, PageAddr};

/// Errors returned by flash chip operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// C2 violation: programming a page that is not in the erased state.
    ProgramDirtyPage {
        /// Offending page.
        addr: PageAddr,
    },
    /// C3 violation: programming out of sequential order within a block.
    NonSequentialProgram {
        /// Offending page.
        addr: PageAddr,
        /// The page index the block's write point expected.
        expected: u32,
    },
    /// Address outside the LUN geometry.
    OutOfRange {
        /// Offending page.
        addr: PageAddr,
    },
    /// Operation issued to a block previously marked bad.
    BadBlock {
        /// The bad block.
        block: BlockAddr,
    },
    /// The erase failed and the block has now been marked bad (C4 wear-out).
    EraseFailed {
        /// The newly bad block.
        block: BlockAddr,
        /// P/E cycles sustained before failure.
        erase_count: u32,
    },
    /// The program operation failed (wear-induced); the block should be
    /// retired by the controller after salvaging live data.
    ProgramFailed {
        /// Offending page.
        addr: PageAddr,
    },
    /// Read saw more raw bit errors than the ECC can correct. The payload
    /// is lost unless the controller holds redundancy elsewhere.
    UncorrectableRead {
        /// Offending page.
        addr: PageAddr,
        /// Raw bit errors the decoder saw.
        raw_errors: u32,
        /// Correction capability it had.
        correctable: u32,
    },
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::ProgramDirtyPage { addr } => {
                write!(f, "C2 violation: program to non-erased page {addr}")
            }
            FlashError::NonSequentialProgram { addr, expected } => write!(
                f,
                "C3 violation: program to {addr}, write point expected page {expected}"
            ),
            FlashError::OutOfRange { addr } => write!(f, "address {addr} out of range"),
            FlashError::BadBlock { block } => write!(f, "operation on bad block {block}"),
            FlashError::EraseFailed { block, erase_count } => write!(
                f,
                "erase failed on {block} after {erase_count} P/E cycles; block marked bad"
            ),
            FlashError::ProgramFailed { addr } => write!(f, "program failed at {addr}"),
            FlashError::UncorrectableRead {
                addr,
                raw_errors,
                correctable,
            } => write!(
                f,
                "uncorrectable read at {addr}: {raw_errors} raw errors > {correctable} correctable"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    #[test]
    fn display_mentions_constraint_ids() {
        let g = Geometry::new(1, 4, 4, 512);
        let e = FlashError::ProgramDirtyPage {
            addr: g.page_addr(0, 1, 2),
        };
        assert!(e.to_string().contains("C2"));
        let e = FlashError::NonSequentialProgram {
            addr: g.page_addr(0, 1, 2),
            expected: 0,
        };
        assert!(e.to_string().contains("C3"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let g = Geometry::new(1, 4, 4, 512);
        takes_err(&FlashError::OutOfRange {
            addr: g.page_addr(0, 0, 0),
        });
    }
}
