//! A flash chip: a package of one or more LUNs sharing a chip-enable.
//!
//! At this layer the chip is a container; the interleaving consequences of
//! sharing a channel are modelled by `requiem-ssd`. Figure 1 of the paper
//! assumes "1 LUN per chip" — [`FlashChip::single_lun`] builds exactly that.

use crate::lun::Lun;
use crate::FlashSpec;

/// A package of LUNs (dies).
pub struct FlashChip {
    id: u32,
    luns: Vec<Lun>,
}

impl std::fmt::Debug for FlashChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlashChip")
            .field("id", &self.id)
            .field("luns", &self.luns.len())
            .finish()
    }
}

impl FlashChip {
    /// Create a chip with `luns` dies of identical `spec`. LUN ids are
    /// globally unique across chips: `chip_id * luns + i`.
    pub fn new(id: u32, luns: u32, spec: FlashSpec, seed: u64) -> Self {
        assert!(luns > 0, "chip needs >=1 LUN");
        FlashChip {
            id,
            luns: (0..luns)
                .map(|i| Lun::new(id * luns + i, spec.clone(), seed))
                .collect(),
        }
    }

    /// A chip with exactly one LUN (Figure 1's assumption).
    pub fn single_lun(id: u32, spec: FlashSpec, seed: u64) -> Self {
        Self::new(id, 1, spec, seed)
    }

    /// This chip's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of LUNs in the package.
    pub fn lun_count(&self) -> usize {
        self.luns.len()
    }

    /// Access one LUN.
    pub fn lun(&self, idx: usize) -> &Lun {
        &self.luns[idx]
    }

    /// Mutable access to one LUN.
    pub fn lun_mut(&mut self, idx: usize) -> &mut Lun {
        &mut self.luns[idx]
    }

    /// Iterate over LUNs.
    pub fn luns(&self) -> impl Iterator<Item = &Lun> {
        self.luns.iter()
    }

    /// Total user capacity of the package in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.luns.iter().map(|l| l.spec().capacity_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lun::PagePayload;

    #[test]
    fn chip_contains_independent_luns() {
        let mut chip = FlashChip::new(0, 2, FlashSpec::mlc_small(), 11);
        let a = chip.lun(0).geometry().page_addr(0, 0, 0);
        chip.lun_mut(0).program(a, PagePayload::Tag(1)).unwrap();
        // LUN 1 unaffected
        assert_eq!(chip.lun_mut(1).read(a).unwrap().payload, PagePayload::Empty);
        assert_eq!(
            chip.lun_mut(0).read(a).unwrap().payload,
            PagePayload::Tag(1)
        );
    }

    #[test]
    fn lun_ids_globally_unique() {
        let c0 = FlashChip::new(0, 2, FlashSpec::mlc_small(), 1);
        let c1 = FlashChip::new(1, 2, FlashSpec::mlc_small(), 1);
        let ids: Vec<u32> = c0.luns().chain(c1.luns()).map(|l| l.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_sums_luns() {
        let chip = FlashChip::new(0, 4, FlashSpec::mlc_small(), 1);
        assert_eq!(
            chip.capacity_bytes(),
            4 * FlashSpec::mlc_small().capacity_bytes()
        );
    }

    #[test]
    fn single_lun_constructor() {
        let chip = FlashChip::single_lun(3, FlashSpec::slc_small(), 1);
        assert_eq!(chip.lun_count(), 1);
        assert_eq!(chip.id(), 3);
    }

    #[test]
    #[should_panic(expected = "needs >=1 LUN")]
    fn zero_luns_rejected() {
        FlashChip::new(0, 0, FlashSpec::mlc_small(), 1);
    }
}
