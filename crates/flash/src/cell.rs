//! Flash cell technology: bits per cell, endurance, raw bit error rate.
//!
//! The paper (§2.2) notes the density trend — more bits per cell, smaller
//! process — and its cost: *"Increased density also incurs reduced cell
//! lifetime (5000 cycles for triple-level-cell flash), and raw performance
//! decreases."* This module encodes that trade-off: each [`CellKind`]
//! carries an endurance budget and a wear-dependent raw bit error rate
//! (RBER) curve that the ECC model consumes.

use serde::{Deserialize, Serialize};

/// Flash cell technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Single-level cell: 1 bit/cell, fastest, ~100 000 P/E cycles.
    Slc,
    /// Multi-level cell: 2 bits/cell, ~10 000 P/E cycles.
    Mlc,
    /// Triple-level cell: 3 bits/cell, ~5 000 P/E cycles (the paper's figure).
    Tlc,
}

impl CellKind {
    /// Bits stored per cell.
    pub fn bits_per_cell(self) -> u32 {
        match self {
            CellKind::Slc => 1,
            CellKind::Mlc => 2,
            CellKind::Tlc => 3,
        }
    }

    /// Rated program/erase cycles before the block is considered worn out.
    pub fn endurance(self) -> u32 {
        match self {
            CellKind::Slc => 100_000,
            CellKind::Mlc => 10_000,
            CellKind::Tlc => 5_000,
        }
    }

    /// Raw bit error rate at zero wear (fresh block).
    ///
    /// Values follow published characterization studies: SLC ~1e-9,
    /// MLC ~1e-7, TLC ~1e-6 fresh.
    pub fn base_rber(self) -> f64 {
        match self {
            CellKind::Slc => 1e-9,
            CellKind::Mlc => 1e-7,
            CellKind::Tlc => 1e-6,
        }
    }

    /// RBER growth factor at rated endurance. RBER grows exponentially with
    /// wear; at 100 % of rated cycles it is `base × growth`.
    pub fn rber_growth_at_endurance(self) -> f64 {
        match self {
            CellKind::Slc => 100.0,
            CellKind::Mlc => 1_000.0,
            CellKind::Tlc => 3_000.0,
        }
    }

    /// Raw bit error rate at a given wear ratio (`erase_count / endurance`).
    ///
    /// Exponential interpolation: `base · growthʷ`. Wear beyond 1.0 keeps
    /// compounding, modelling operation past rated life.
    pub fn rber(self, wear_ratio: f64) -> f64 {
        let w = wear_ratio.max(0.0);
        self.base_rber() * self.rber_growth_at_endurance().powf(w)
    }

    /// Reads-per-block budget before read disturb roughly doubles the
    /// raw bit error rate. Denser cells disturb sooner.
    pub fn read_disturb_budget(self) -> u64 {
        match self {
            CellKind::Slc => 1_000_000,
            CellKind::Mlc => 250_000,
            CellKind::Tlc => 100_000,
        }
    }

    /// Multiplicative RBER factor after `reads` page reads since the last
    /// erase: `2^(reads / budget)` — the exponential drift observed in
    /// characterization studies.
    pub fn read_disturb_factor(self, reads: u64) -> f64 {
        2f64.powf(reads as f64 / self.read_disturb_budget() as f64)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Slc => "SLC",
            CellKind::Mlc => "MLC",
            CellKind::Tlc => "TLC",
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_endurance_tradeoff_monotone() {
        // more bits per cell => fewer cycles and higher error rates,
        // exactly the trend §2.2 describes
        assert!(CellKind::Slc.endurance() > CellKind::Mlc.endurance());
        assert!(CellKind::Mlc.endurance() > CellKind::Tlc.endurance());
        assert!(CellKind::Slc.base_rber() < CellKind::Mlc.base_rber());
        assert!(CellKind::Mlc.base_rber() < CellKind::Tlc.base_rber());
        assert_eq!(CellKind::Tlc.endurance(), 5_000); // paper's number
    }

    #[test]
    fn rber_grows_with_wear() {
        for kind in [CellKind::Slc, CellKind::Mlc, CellKind::Tlc] {
            let fresh = kind.rber(0.0);
            let half = kind.rber(0.5);
            let worn = kind.rber(1.0);
            assert!(fresh < half && half < worn, "{kind}");
            let expected = kind.base_rber() * kind.rber_growth_at_endurance();
            assert!((worn / expected - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rber_past_endurance_keeps_growing() {
        let k = CellKind::Mlc;
        assert!(k.rber(2.0) > k.rber(1.0));
    }

    #[test]
    fn negative_wear_clamped() {
        let k = CellKind::Mlc;
        assert_eq!(k.rber(-1.0), k.rber(0.0));
    }

    #[test]
    fn read_disturb_compounds_and_orders_by_density() {
        for kind in [CellKind::Slc, CellKind::Mlc, CellKind::Tlc] {
            assert!((kind.read_disturb_factor(0) - 1.0).abs() < 1e-12);
            let budget = kind.read_disturb_budget();
            assert!((kind.read_disturb_factor(budget) - 2.0).abs() < 1e-9);
            assert!((kind.read_disturb_factor(2 * budget) - 4.0).abs() < 1e-9);
        }
        // denser cells disturb sooner
        assert!(CellKind::Tlc.read_disturb_budget() < CellKind::Mlc.read_disturb_budget());
        assert!(CellKind::Mlc.read_disturb_budget() < CellKind::Slc.read_disturb_budget());
    }

    #[test]
    fn bits_per_cell() {
        assert_eq!(CellKind::Slc.bits_per_cell(), 1);
        assert_eq!(CellKind::Mlc.bits_per_cell(), 2);
        assert_eq!(CellKind::Tlc.bits_per_cell(), 3);
    }
}
