//! # requiem-flash — a NAND flash memory model
//!
//! This crate models flash memory at the level the paper's §2.2 describes:
//! *"a complex assembly of a huge number of flash cells, organized by pages
//! (512 to 4096 bytes per page), blocks (64 to 256 pages per block) and
//! sometimes arranged in multiple planes."*
//!
//! The model enforces the paper's four constraints as hard invariants:
//!
//! * **C1** — reads and writes are performed at the granularity of a page.
//!   (The API only exposes page-granular [`Lun::read`]/[`Lun::program`].)
//! * **C2** — a block must be erased before any of its pages can be
//!   overwritten. (Programming a non-free page is a [`FlashError`].)
//! * **C3** — writes must be sequential within a block. (Programming any
//!   page other than the block's write point is a [`FlashError`].)
//! * **C4** — flash supports a limited number of erase cycles. (Erase
//!   counts are tracked per block; wear drives the raw-bit-error-rate model
//!   and eventually produces bad blocks.)
//!
//! The crate is purely *semantic + timing oracle*: operations validate
//! state, mutate it, and report how long they take ([`timing::FlashTiming`]).
//! *When* operations run — channel arbitration, LUN interleaving — is the
//! job of `requiem-ssd`, which the paper argues is exactly the part that the
//! block device interface hides (myth 1: a device is not a chip).
//!
//! ## Quick example
//!
//! ```
//! use requiem_flash::{FlashSpec, Lun, PagePayload};
//!
//! let spec = FlashSpec::mlc_small();
//! let mut lun = Lun::new(0, spec.clone(), 42);
//! let block = lun.geometry().block_addr(0, 0);
//! // C3: program pages in order
//! for page in 0..4 {
//!     let addr = lun.geometry().page_addr(0, 0, page);
//!     let outcome = lun.program(addr, PagePayload::Tag(page as u64)).unwrap();
//!     assert_eq!(outcome.duration, spec.timing.program(page));
//! }
//! let addr = lun.geometry().page_addr(0, 0, 2);
//! let read = lun.read(addr).unwrap();
//! assert_eq!(read.payload, PagePayload::Tag(2));
//! lun.erase(block).unwrap();
//! assert_eq!(lun.block_state(block).erase_count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod chip;
pub mod ecc;
pub mod error;
pub mod geometry;
pub mod lun;
pub mod timing;

pub use cell::CellKind;
pub use chip::FlashChip;
pub use ecc::EccConfig;
pub use error::FlashError;
pub use geometry::{BlockAddr, Geometry, PageAddr, Ppn};
pub use lun::{Lun, OpOutcome, PagePayload, PageState, ReadOutcome};
pub use timing::FlashTiming;

use serde::{Deserialize, Serialize};

/// A complete specification of one flash die (LUN): geometry + cell
/// technology + timing + ECC. Bundled so device builders pass one value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashSpec {
    /// Physical layout.
    pub geometry: Geometry,
    /// Cell technology (drives endurance and error rates).
    pub cell: CellKind,
    /// Operation latencies.
    pub timing: FlashTiming,
    /// Error-correction capability.
    pub ecc: EccConfig,
    /// Override the cell technology's rated endurance (accelerated-aging
    /// experiments and end-of-life tests). `None` uses [`CellKind::endurance`].
    #[serde(default)]
    pub endurance_override: Option<u32>,
}

impl FlashSpec {
    /// A realistic c. 2012 MLC die: 4 KiB pages, 128 pages/block,
    /// 2 planes × 1024 blocks ⇒ 1 GiB per LUN.
    pub fn mlc_1gib() -> Self {
        FlashSpec {
            geometry: Geometry::new(2, 1024, 128, 4096),
            cell: CellKind::Mlc,
            timing: FlashTiming::mlc(),
            ecc: EccConfig::bch_24_per_1k(),
            endurance_override: None,
        }
    }

    /// A small MLC die for fast tests: 2 planes × 64 blocks × 16 pages ×
    /// 4 KiB ⇒ 8 MiB per LUN.
    pub fn mlc_small() -> Self {
        FlashSpec {
            geometry: Geometry::new(2, 64, 16, 4096),
            cell: CellKind::Mlc,
            timing: FlashTiming::mlc(),
            ecc: EccConfig::bch_24_per_1k(),
            endurance_override: None,
        }
    }

    /// SLC variant of [`FlashSpec::mlc_small`] (fast, high endurance).
    pub fn slc_small() -> Self {
        FlashSpec {
            geometry: Geometry::new(2, 64, 16, 4096),
            cell: CellKind::Slc,
            timing: FlashTiming::slc(),
            ecc: EccConfig::bch_8_per_1k(),
            endurance_override: None,
        }
    }

    /// TLC variant: dense, slow, 5 000-cycle endurance (the paper's figure).
    pub fn tlc_small() -> Self {
        FlashSpec {
            geometry: Geometry::new(2, 64, 16, 4096),
            cell: CellKind::Tlc,
            timing: FlashTiming::tlc(),
            ecc: EccConfig::ldpc_40_per_1k(),
            endurance_override: None,
        }
    }

    /// Effective rated P/E cycles (override or the cell technology's).
    pub fn endurance(&self) -> u32 {
        self.endurance_override
            .unwrap_or_else(|| self.cell.endurance())
    }

    /// Bytes of user data per LUN.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.total_pages() * self.geometry.page_size as u64
    }
}
