//! Workload drivers: push patterns into a device and measure.
//!
//! The closed-loop driver maintains a fixed number of outstanding requests
//! (queue depth) — the way uFLIP and real storage benchmarks (fio) exercise
//! devices. It runs on the SSD's [`QueuePair`]: requests are submitted
//! tagged, admitted by the device-side in-flight window, and reaped from
//! the completion queue out of submission order; each reaped completion
//! frees a slot and the next request is submitted at the reap instant.
//! Queue depth is how hosts *expose* device parallelism; §2.1's point
//! that *"SSDs require a high level of parallelism"* shows up as IOPS
//! scaling with queue depth. At queue depth 1 the loop is bit-identical
//! to the serialized driver ([`run_closed_loop_serialized`]), which is
//! kept as the pre-queue-pair reference.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{ExpInterarrival, Histogram, SimRng};
use requiem_ssd::{IoRequest, Lpn, QueuePair, Ssd};
use serde::{Deserialize, Serialize};

use crate::pattern::AddressPattern;

/// Read/write mix of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoMix {
    /// Fraction of operations that are reads (0.0 = pure write, 1.0 = pure
    /// read).
    pub read_fraction: f64,
}

impl IoMix {
    /// 100 % writes.
    pub fn write_only() -> Self {
        IoMix { read_fraction: 0.0 }
    }

    /// 100 % reads.
    pub fn read_only() -> Self {
        IoMix { read_fraction: 1.0 }
    }

    /// A mixed workload.
    pub fn mixed(read_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        IoMix { read_fraction }
    }
}

/// Result of one driver run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Operations issued.
    pub ops: u64,
    /// Reads among them.
    pub reads: u64,
    /// Virtual time from first submission to last completion.
    pub makespan: SimDuration,
    /// Operations per second of virtual time.
    pub iops: f64,
    /// Payload megabytes per second (page-size × ops / makespan).
    pub mb_per_s: f64,
    /// Per-op end-to-end latency.
    pub latency: Histogram,
}

impl DriverReport {
    /// Pretty one-line summary.
    pub fn summary_line(&self) -> String {
        let s = self.latency.summary();
        format!(
            "{} ops in {} — {:.0} IOPS, {:.1} MB/s, lat p50 {} p99 {} max {}",
            self.ops,
            self.makespan,
            self.iops,
            self.mb_per_s,
            SimDuration::from_nanos(s.p50),
            SimDuration::from_nanos(s.p99),
            SimDuration::from_nanos(s.max),
        )
    }
}

/// Run `ops` operations against `ssd` with `queue_depth` outstanding on
/// a [`QueuePair`], drawing addresses from `pattern` and read/write
/// decisions from `mix`.
///
/// The loop keeps exactly `queue_depth` commands in flight: while below
/// depth it submits immediately (all ramp-up commands fire at
/// `start_at`); at full depth it reaps the earliest completion from the
/// CQ — which is generally **not** the oldest submission — and submits
/// the next command at the reap instant. Same-LBA hazards and the
/// device-side window are enforced by the queue pair.
///
/// Returns throughput/latency measured over the run (from `start_at` to the
/// last completion).
///
/// # Panics
/// Panics if `queue_depth == 0` or an I/O fails (the drivers address only
/// exported pages, so failures indicate device exhaustion).
pub fn run_closed_loop(
    ssd: &mut Ssd,
    pattern: &mut AddressPattern,
    mix: IoMix,
    queue_depth: usize,
    ops: u64,
    seed: u64,
    start_at: SimTime,
) -> DriverReport {
    assert!(queue_depth > 0, "queue depth must be at least 1");
    let mut rng = SimRng::from_seed(seed).derive("driver-mix");
    let mut latency = Histogram::new();
    let mut qp = QueuePair::new(queue_depth);
    let mut in_flight = 0usize;
    let mut issued = 0u64;
    let mut reads = 0u64;
    let mut last_done = start_at;

    while issued < ops {
        // when at full depth, reap the earliest completion
        let now = if in_flight >= queue_depth {
            let c = qp.pop().expect("completions outstanding");
            latency.record_duration(c.latency());
            last_done = last_done.max(c.done);
            in_flight -= 1;
            c.done
        } else {
            // ramp-up: the first `queue_depth` requests all fire at start
            start_at
        };
        let lba = pattern.next_addr();
        let is_read = rng.chance(mix.read_fraction);
        let req = if is_read {
            reads += 1;
            IoRequest::read(lba)
        } else {
            IoRequest::write(lba)
        };
        qp.submit(ssd, now, req).expect("driver io failed");
        in_flight += 1;
        issued += 1;
    }
    // drain the tail
    while let Some(c) = qp.pop() {
        latency.record_duration(c.latency());
        last_done = last_done.max(c.done);
    }
    let makespan = last_done.since(start_at);
    let secs = makespan.as_secs_f64().max(1e-12);
    let page = ssd.config().flash.geometry.page_size as f64;
    DriverReport {
        ops,
        reads,
        makespan,
        iops: ops as f64 / secs,
        mb_per_s: ops as f64 * page / (1024.0 * 1024.0) / secs,
        latency,
    }
}

/// The pre-queue-pair closed loop: drives the device through the
/// serialized `read`/`write` API, tracking outstanding completions in a
/// host-side heap. Kept as the reference implementation — at any queue
/// depth 1 run, [`run_closed_loop`] must reproduce it bit-for-bit
/// (asserted by `exp11_qd_sweep` and the driver tests).
pub fn run_closed_loop_serialized(
    ssd: &mut Ssd,
    pattern: &mut AddressPattern,
    mix: IoMix,
    queue_depth: usize,
    ops: u64,
    seed: u64,
    start_at: SimTime,
) -> DriverReport {
    assert!(queue_depth > 0, "queue depth must be at least 1");
    let mut rng = SimRng::from_seed(seed).derive("driver-mix");
    let mut latency = Histogram::new();
    let mut outstanding: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new();
    let mut issued = 0u64;
    let mut reads = 0u64;
    let mut last_done = start_at;

    while issued < ops {
        // when at full depth, wait for the earliest completion
        let now = if outstanding.len() >= queue_depth {
            let Reverse(t) = outstanding.pop().expect("outstanding non-empty");
            t
        } else {
            // ramp-up: the first `queue_depth` requests all fire at start
            start_at
        };
        let lpn = Lpn(pattern.next_addr());
        let is_read = rng.chance(mix.read_fraction);
        let completion = if is_read {
            reads += 1;
            ssd.read(now, lpn).expect("driver read failed")
        } else {
            ssd.write(now, lpn).expect("driver write failed")
        };
        latency.record_duration(completion.latency);
        outstanding.push(Reverse(completion.done));
        last_done = last_done.max(completion.done);
        issued += 1;
    }
    let makespan = last_done.since(start_at);
    let secs = makespan.as_secs_f64().max(1e-12);
    let page = ssd.config().flash.geometry.page_size as f64;
    DriverReport {
        ops,
        reads,
        makespan,
        iops: ops as f64 / secs,
        mb_per_s: ops as f64 * page / (1024.0 * 1024.0) / secs,
        latency,
    }
}

/// Run `ops` operations open-loop at an offered rate of `iops`
/// (exponentially-distributed inter-arrival times, seeded). Unlike the
/// closed loop, arrivals do not wait for completions, so latency includes
/// queueing — the harness for offered-load vs latency curves.
///
/// # Panics
/// Panics if `iops <= 0` or an I/O fails.
#[allow(clippy::too_many_arguments)] // mirrors run_closed_loop
pub fn run_open_loop(
    ssd: &mut Ssd,
    pattern: &mut AddressPattern,
    mix: IoMix,
    iops: f64,
    ops: u64,
    seed: u64,
    start_at: SimTime,
) -> DriverReport {
    let arrivals = ExpInterarrival::per_second(iops);
    let mut rng = SimRng::from_seed(seed).derive("driver-open");
    let mut latency = Histogram::new();
    let mut now = start_at;
    let mut last_done = start_at;
    let mut reads = 0u64;
    for _ in 0..ops {
        let lpn = Lpn(pattern.next_addr());
        let is_read = rng.chance(mix.read_fraction);
        let completion = if is_read {
            reads += 1;
            ssd.read(now, lpn).expect("driver read failed")
        } else {
            ssd.write(now, lpn).expect("driver write failed")
        };
        latency.record_duration(completion.latency);
        last_done = last_done.max(completion.done);
        now += arrivals.sample(&mut rng);
    }
    let makespan = last_done.since(start_at);
    let secs = makespan.as_secs_f64().max(1e-12);
    let page = ssd.config().flash.geometry.page_size as f64;
    DriverReport {
        ops,
        reads,
        makespan,
        iops: ops as f64 / secs,
        mb_per_s: ops as f64 * page / (1024.0 * 1024.0) / secs,
        latency,
    }
}

/// Precondition helper: fill the first `pages` LPNs sequentially so reads
/// and overwrites have data to hit. Returns the drain time.
pub fn precondition_sequential(ssd: &mut Ssd, pages: u64, start_at: SimTime) -> SimTime {
    let mut t = start_at;
    for lpn in 0..pages {
        let c = ssd.write(t, Lpn(lpn)).expect("precondition write failed");
        t = c.done;
    }
    ssd.drain_time().max(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use requiem_ssd::SsdConfig;

    fn device() -> Ssd {
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        Ssd::new(cfg)
    }

    #[test]
    fn report_counts_match() {
        let mut ssd = device();
        let mut pat = AddressPattern::new(Pattern::Sequential, 512, 1);
        let r = run_closed_loop(
            &mut ssd,
            &mut pat,
            IoMix::write_only(),
            4,
            256,
            1,
            SimTime::ZERO,
        );
        assert_eq!(r.ops, 256);
        assert_eq!(r.reads, 0);
        assert_eq!(r.latency.count(), 256);
        assert!(r.iops > 0.0);
        assert!(r.makespan > SimDuration::ZERO);
    }

    #[test]
    fn higher_queue_depth_increases_write_throughput() {
        // §2.1: parallelism is required to reach nominal bandwidth
        let mut iops = Vec::new();
        for qd in [1usize, 8, 32] {
            let mut ssd = device();
            let mut pat = AddressPattern::new(Pattern::Sequential, 2048, 1);
            let r = run_closed_loop(
                &mut ssd,
                &mut pat,
                IoMix::write_only(),
                qd,
                1024,
                1,
                SimTime::ZERO,
            );
            iops.push(r.iops);
        }
        assert!(
            iops[1] > iops[0] * 2.0,
            "QD8 should far exceed QD1: {iops:?}"
        );
        assert!(iops[2] > iops[1], "QD32 >= QD8: {iops:?}");
    }

    #[test]
    fn mixed_workload_respects_fraction() {
        let mut ssd = device();
        let t = precondition_sequential(&mut ssd, 512, SimTime::ZERO);
        let mut pat = AddressPattern::new(Pattern::UniformRandom, 512, 2);
        let r = run_closed_loop(&mut ssd, &mut pat, IoMix::mixed(0.7), 4, 1000, 2, t);
        let frac = r.reads as f64 / r.ops as f64;
        assert!((0.63..=0.77).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn precondition_then_read_hits_flash() {
        let mut ssd = device();
        let t = precondition_sequential(&mut ssd, 128, SimTime::ZERO);
        let mut pat = AddressPattern::new(Pattern::Sequential, 128, 3);
        let r = run_closed_loop(&mut ssd, &mut pat, IoMix::read_only(), 2, 128, 3, t);
        assert_eq!(ssd.metrics().unmapped_reads, 0);
        assert_eq!(r.reads, 128);
    }

    /// Histogram fingerprint for bit-identity comparisons.
    fn fingerprint(r: &DriverReport) -> (u64, u64, u64, u64, u64) {
        let s = r.latency.summary();
        (
            r.latency.count(),
            s.p50,
            s.p99,
            s.max,
            r.makespan.as_nanos(),
        )
    }

    #[test]
    fn qd1_queue_pair_matches_serialized_driver() {
        // The queue-pair loop at depth 1 must reproduce the serialized
        // reference bit-for-bit: same completions, same histogram, same
        // makespan, same device metrics.
        for mix in [IoMix::write_only(), IoMix::mixed(0.5)] {
            let mut a = device();
            let ta = precondition_sequential(&mut a, 256, SimTime::ZERO);
            let mut pa = AddressPattern::new(Pattern::UniformRandom, 256, 7);
            let ra = run_closed_loop_serialized(&mut a, &mut pa, mix, 1, 300, 7, ta);

            let mut b = device();
            let tb = precondition_sequential(&mut b, 256, SimTime::ZERO);
            let mut pb = AddressPattern::new(Pattern::UniformRandom, 256, 7);
            let rb = run_closed_loop(&mut b, &mut pb, mix, 1, 300, 7, tb);

            assert_eq!(fingerprint(&ra), fingerprint(&rb));
            assert_eq!(ra.reads, rb.reads);
            assert_eq!(a.metrics().host_reads, b.metrics().host_reads);
            assert_eq!(a.metrics().host_writes, b.metrics().host_writes);
            assert_eq!(a.drain_time(), b.drain_time());
        }
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let run = || {
            let mut ssd = device();
            let t = precondition_sequential(&mut ssd, 512, SimTime::ZERO);
            let mut pat = AddressPattern::new(Pattern::UniformRandom, 512, 11);
            let r = run_closed_loop(&mut ssd, &mut pat, IoMix::mixed(0.6), 8, 500, 11, t);
            (fingerprint(&r), r.reads, ssd.drain_time())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        let mut ssd = device();
        let mut pat = AddressPattern::new(Pattern::Sequential, 16, 1);
        run_closed_loop(
            &mut ssd,
            &mut pat,
            IoMix::write_only(),
            0,
            1,
            1,
            SimTime::ZERO,
        );
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use crate::pattern::Pattern;
    use requiem_ssd::SsdConfig;

    #[test]
    fn open_loop_latency_explodes_past_saturation() {
        // classic offered-load curve: below capacity, latency ~= service
        // time; above capacity, the queue grows without bound
        let run = |iops: f64| -> u64 {
            let mut cfg = SsdConfig::modern();
            cfg.buffer.capacity_pages = 0;
            let mut ssd = Ssd::new(cfg);
            let span = ssd.capacity().exported_pages;
            let mut pat = AddressPattern::new(Pattern::Sequential, span, 1);
            let r = run_open_loop(
                &mut ssd,
                &mut pat,
                IoMix::write_only(),
                iops,
                2000,
                1,
                SimTime::ZERO,
            );
            r.latency.p99()
        };
        let light = run(5_000.0);
        let overloaded = run(200_000.0);
        assert!(
            overloaded > 10 * light,
            "overload p99 {overloaded} should dwarf light-load p99 {light}"
        );
    }

    #[test]
    fn open_loop_achieves_offered_rate_below_saturation() {
        let mut ssd = Ssd::new(SsdConfig::modern());
        let span = ssd.capacity().exported_pages;
        let mut pat = AddressPattern::new(Pattern::Sequential, span, 2);
        let r = run_open_loop(
            &mut ssd,
            &mut pat,
            IoMix::write_only(),
            10_000.0,
            2000,
            2,
            SimTime::ZERO,
        );
        assert!(
            (r.iops - 10_000.0).abs() / 10_000.0 < 0.15,
            "achieved {} vs offered 10k",
            r.iops
        );
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn open_loop_rejects_zero_rate() {
        let mut ssd = Ssd::new(SsdConfig::modern());
        let mut pat = AddressPattern::new(Pattern::Sequential, 16, 1);
        run_open_loop(
            &mut ssd,
            &mut pat,
            IoMix::write_only(),
            0.0,
            1,
            1,
            SimTime::ZERO,
        );
    }
}
