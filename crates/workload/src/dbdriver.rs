//! Closed-loop OLTP driver over the completion-driven database engine.
//!
//! [`crate::driver`] pushes raw page I/O into an [`requiem_ssd::Ssd`];
//! this module is the same closed-loop discipline one layer up: it feeds
//! a TPC-B-flavoured transaction mix ([`crate::oltp`]) into
//! [`requiem_db::Database::run_concurrent`], which keeps N transactions
//! in flight over the batched read path and the shared group commit.
//! Transaction *concurrency* is the database's queue depth — the §2.1
//! argument ("SSDs require a high level of parallelism") restated at the
//! storage-manager interface.
//!
//! Everything is pre-generated before the run so the device timeline is
//! a pure function of `(seed, config)` — the determinism CI job diffs
//! experiment output byte-for-byte.

use requiem_db::{Database, ExecConfig, ExecReport, PersistenceBackend, TxnInput};

use crate::oltp::{OltpGen, Txn};

/// Record slots per page assumed by the `(page, slot)` mapping — matches
/// `DbConfig::slots_per_page` in every experiment that uses this driver.
pub const DRIVER_SLOTS_PER_PAGE: u16 = 16;

/// Map one generated transaction onto the engine's access triples. The
/// record slot is derived from the page id (`page % 16`) — the same
/// convention the synergy experiment (E7) uses, so workloads are
/// comparable across the serialized and completion-driven paths.
pub fn txn_to_input(txn: &Txn) -> TxnInput {
    TxnInput {
        accesses: txn
            .accesses
            .iter()
            .map(|a| {
                (
                    a.page,
                    (a.page % u64::from(DRIVER_SLOTS_PER_PAGE)) as u16,
                    a.dirty,
                )
            })
            .collect(),
        log_bytes: txn.log_bytes,
    }
}

/// Pre-generate `count` transactions as executor inputs.
pub fn oltp_inputs(gen: &mut OltpGen, count: u64) -> Vec<TxnInput> {
    (0..count).map(|_| txn_to_input(&gen.next_txn())).collect()
}

/// Run `count` OLTP transactions through `db` as a closed loop of
/// `cfg.concurrency` in-flight transactions. The database must already
/// be loaded.
pub fn run_oltp_closed_loop<B: PersistenceBackend>(
    db: &mut Database<B>,
    gen: &mut OltpGen,
    count: u64,
    cfg: &ExecConfig,
) -> ExecReport {
    let inputs = oltp_inputs(gen, count);
    db.run_concurrent(&inputs, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oltp::OltpConfig;
    use requiem_db::{DbConfig, LegacyBackend};
    use requiem_ssd::SsdConfig;

    fn small_db() -> Database<LegacyBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: 64,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let mut db = Database::new(cfg, LegacyBackend::new(ssd_cfg, 256, 64));
        db.load();
        db
    }

    fn oltp() -> OltpGen {
        OltpGen::new(
            OltpConfig {
                data_pages: 256,
                ..OltpConfig::default()
            },
            13,
        )
    }

    #[test]
    fn inputs_are_deterministic_and_well_formed() {
        let a = oltp_inputs(&mut oltp(), 50);
        let b = oltp_inputs(&mut oltp(), 50);
        assert_eq!(a, b, "same seed, same inputs");
        assert!(a.iter().all(|t| t
            .accesses
            .iter()
            .all(|&(p, s, _)| p < 256 && s < DRIVER_SLOTS_PER_PAGE)));
    }

    #[test]
    fn closed_loop_runs_the_mix_to_completion() {
        let mut db = small_db();
        let report = run_oltp_closed_loop(
            &mut db,
            &mut oltp(),
            40,
            &ExecConfig {
                concurrency: 4,
                ..ExecConfig::serialized()
            },
        );
        assert_eq!(report.txns, 40);
        assert_eq!(db.stats().commits, 40);
        assert!(report.tps > 0.0);
        assert_eq!(
            report.read_only_latency.count() + report.update_latency.count(),
            40,
            "every txn lands in exactly one class histogram"
        );
    }

    #[test]
    fn closed_loop_qd1_matches_serialized_execute() {
        let inputs = oltp_inputs(&mut oltp(), 40);
        let mut serial = small_db();
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = small_db();
        run_oltp_closed_loop(&mut conc, &mut oltp(), 40, &ExecConfig::serialized());
        assert_eq!(conc.now(), serial.now(), "QD-1 identity through the driver");
        assert_eq!(conc.txn_latency(), serial.txn_latency());
    }
}
