//! Address-pattern generators (uFLIP-style).
//!
//! A pattern is an infinite iterator of logical page numbers over a space
//! of `span` pages. All randomness is seeded ([`requiem_sim::SimRng`]), so
//! a pattern replays identically across runs and devices — the property
//! uFLIP's "sound measurements" methodology (the paper's ref [3]) insists
//! on.

use requiem_sim::SimRng;
use serde::{Deserialize, Serialize};

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The shape of an address pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// `base, base+1, base+2, …` wrapping at the span.
    Sequential,
    /// Uniform random over the span.
    UniformRandom,
    /// Zipfian over the span with exponent `theta` (0 = uniform, ~0.99 =
    /// classic YCSB skew).
    Zipfian {
        /// Skew exponent.
        theta: f64,
    },
    /// `base, base+stride, base+2·stride, …` wrapping at the span. A
    /// stride equal to the LUN count defeats static striping — the uFLIP
    /// pattern that exposes placement policies.
    Strided {
        /// Address increment per access.
        stride: u64,
    },
    /// A fraction `hot_fraction` of the span receives `hot_probability`
    /// of the accesses (random within each region).
    HotCold {
        /// Fraction of the span that is hot (0, 1].
        hot_fraction: f64,
        /// Probability an access goes to the hot region.
        hot_probability: f64,
    },
}

/// A seeded, replayable generator of page addresses in `[0, span)`.
pub struct AddressPattern {
    pattern: Pattern,
    span: u64,
    cursor: u64,
    rng: SimRng,
    /// Precomputed generalized harmonic number for zipf sampling.
    zipf_harmonic: f64,
    /// Multiplier coprime to `span`, scattering zipf ranks over the space
    /// as a bijection.
    zipf_mult: u64,
}

impl std::fmt::Debug for AddressPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AddressPattern({:?}, span={})", self.pattern, self.span)
    }
}

impl AddressPattern {
    /// Create a pattern over `span` pages with a seeded RNG.
    ///
    /// # Panics
    /// Panics if `span == 0` or pattern parameters are out of range.
    pub fn new(pattern: Pattern, span: u64, seed: u64) -> Self {
        assert!(span > 0, "pattern needs a non-empty span");
        if let Pattern::HotCold {
            hot_fraction,
            hot_probability,
        } = &pattern
        {
            assert!(
                *hot_fraction > 0.0 && *hot_fraction <= 1.0,
                "hot fraction must be in (0, 1]"
            );
            assert!(
                (0.0..=1.0).contains(hot_probability),
                "hot probability must be in [0, 1]"
            );
        }
        if let Pattern::Strided { stride } = &pattern {
            assert!(*stride > 0, "stride must be positive");
        }
        let zipf_harmonic = match &pattern {
            Pattern::Zipfian { theta } => {
                assert!(*theta >= 0.0, "zipf theta must be non-negative");
                // generalized harmonic number H_{span, theta}; cap the sum
                // work for huge spans by integral approximation past 10^6
                let n = span.min(1_000_000);
                let mut h = 0.0;
                for i in 1..=n {
                    h += 1.0 / (i as f64).powf(*theta);
                }
                if span > n {
                    // ∫ x^-theta dx from n to span
                    let a = n as f64;
                    let b = span as f64;
                    h += if (*theta - 1.0).abs() < 1e-9 {
                        (b / a).ln()
                    } else {
                        (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
                    };
                }
                h
            }
            _ => 0.0,
        };
        // pick a scatter multiplier coprime to the span so the rank →
        // address map is a bijection (hot ranks land on distinct pages)
        let mut zipf_mult = 0x9E37_79B9u64 | 1;
        while gcd(zipf_mult, span) != 1 {
            zipf_mult += 2;
        }
        AddressPattern {
            pattern,
            span,
            cursor: 0,
            rng: SimRng::from_seed(seed).derive("pattern"),
            zipf_harmonic,
            zipf_mult,
        }
    }

    /// The address space size.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Next address in `[0, span)`.
    pub fn next_addr(&mut self) -> u64 {
        match &self.pattern {
            Pattern::Sequential => {
                let a = self.cursor % self.span;
                self.cursor += 1;
                a
            }
            Pattern::Strided { stride } => {
                let a = self.cursor % self.span;
                self.cursor = self.cursor.wrapping_add(*stride);
                a
            }
            Pattern::UniformRandom => self.rng.below(self.span),
            Pattern::Zipfian { theta } => {
                // inverse-CDF by bisection over ranks (ranks permuted by a
                // multiplicative hash so hot pages are spread over the span)
                let theta = *theta;
                let u = self.rng.unit() * self.zipf_harmonic;
                let mut acc = 0.0;
                let mut rank = self.span; // fallback: coldest
                let n = self.span.min(1_000_000);
                for i in 1..=n {
                    acc += 1.0 / (i as f64).powf(theta);
                    if acc >= u {
                        rank = i;
                        break;
                    }
                }
                // scatter ranks over the address space deterministically
                // (bijective affine map: gcd(mult, span) == 1)
                rank.wrapping_mul(self.zipf_mult) % self.span
            }
            Pattern::HotCold {
                hot_fraction,
                hot_probability,
            } => {
                let hot_pages = ((self.span as f64 * hot_fraction).ceil() as u64).max(1);
                if self.rng.chance(*hot_probability) {
                    self.rng.below(hot_pages)
                } else if hot_pages < self.span {
                    hot_pages + self.rng.below(self.span - hot_pages)
                } else {
                    self.rng.below(self.span)
                }
            }
        }
    }

    /// Take the next `n` addresses as a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_addr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps() {
        let mut p = AddressPattern::new(Pattern::Sequential, 4, 1);
        assert_eq!(p.take_vec(6), vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn strided_pattern() {
        let mut p = AddressPattern::new(Pattern::Strided { stride: 3 }, 8, 1);
        assert_eq!(p.take_vec(4), vec![0, 3, 6, 1]);
    }

    #[test]
    fn uniform_random_in_range_and_covers() {
        let mut p = AddressPattern::new(Pattern::UniformRandom, 16, 2);
        let v = p.take_vec(1000);
        assert!(v.iter().all(|&a| a < 16));
        let distinct: std::collections::BTreeSet<_> = v.iter().collect();
        assert_eq!(distinct.len(), 16, "1000 draws over 16 pages hit all");
    }

    #[test]
    fn uniform_replays_with_same_seed() {
        let mut a = AddressPattern::new(Pattern::UniformRandom, 100, 7);
        let mut b = AddressPattern::new(Pattern::UniformRandom, 100, 7);
        assert_eq!(a.take_vec(50), b.take_vec(50));
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut p = AddressPattern::new(Pattern::Zipfian { theta: 0.99 }, 1000, 3);
        let v = p.take_vec(10_000);
        assert!(v.iter().all(|&a| a < 1000));
        // the most popular page should take far more than 1/1000 of accesses
        let mut counts = std::collections::BTreeMap::new();
        for a in v {
            *counts.entry(a).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 400, "zipf 0.99 hottest page got only {max}/10000");
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let mut p = AddressPattern::new(Pattern::Zipfian { theta: 0.0 }, 100, 3);
        let v = p.take_vec(10_000);
        let mut counts = std::collections::BTreeMap::new();
        for a in v {
            *counts.entry(a).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max < 250, "theta=0 should be near-uniform, max={max}");
    }

    #[test]
    fn hot_cold_concentrates() {
        let mut p = AddressPattern::new(
            Pattern::HotCold {
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
            1000,
            4,
        );
        let v = p.take_vec(10_000);
        let hot_hits = v.iter().filter(|&&a| a < 100).count();
        assert!(
            (8_500..=9_500).contains(&hot_hits),
            "expected ~90% hot hits, got {hot_hits}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty span")]
    fn zero_span_rejected() {
        AddressPattern::new(Pattern::Sequential, 0, 1);
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn bad_hot_fraction_rejected() {
        AddressPattern::new(
            Pattern::HotCold {
                hot_fraction: 1.5,
                hot_probability: 0.5,
            },
            10,
            1,
        );
    }
}
