//! A TPC-B-flavoured OLTP transaction mix.
//!
//! The §3 experiments need a workload with the two access classes the
//! paper's principle P1 separates:
//!
//! * **synchronous** — the commit-time log force (and buffer steals under
//!   memory pressure);
//! * **asynchronous** — data page reads and lazy data page write-back.
//!
//! Each generated transaction touches a configurable number of data pages
//! (read-modify-write on zipfian-skewed accounts) and appends one log
//! record. How those translate into device operations is up to the
//! consumer (`requiem-db`'s backends differ exactly there).

use requiem_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::pattern::{AddressPattern, Pattern};

/// Parameters of the OLTP mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OltpConfig {
    /// Data pages touched (read + dirtied) per transaction.
    pub pages_per_txn: u32,
    /// Fraction of touched pages that are only read (not dirtied).
    pub read_only_fraction: f64,
    /// Log bytes appended per transaction.
    pub log_bytes_per_txn: u32,
    /// Number of data pages in the database.
    pub data_pages: u64,
    /// Zipfian skew of data accesses.
    pub theta: f64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        OltpConfig {
            pages_per_txn: 4,
            read_only_fraction: 0.5,
            log_bytes_per_txn: 256,
            data_pages: 4096,
            theta: 0.8,
        }
    }
}

/// One page access within a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccess {
    /// Which data page.
    pub page: u64,
    /// Whether the transaction dirties it.
    pub dirty: bool,
}

/// One generated transaction.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Transaction id (monotonic).
    pub id: u64,
    /// Data page accesses, in order.
    pub accesses: Vec<PageAccess>,
    /// Log record size for the commit.
    pub log_bytes: u32,
}

/// Generator of transactions.
pub struct OltpGen {
    cfg: OltpConfig,
    pattern: AddressPattern,
    rng: SimRng,
    next_id: u64,
}

impl std::fmt::Debug for OltpGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OltpGen(next_id={})", self.next_id)
    }
}

impl OltpGen {
    /// Create a generator.
    pub fn new(cfg: OltpConfig, seed: u64) -> Self {
        let pattern =
            AddressPattern::new(Pattern::Zipfian { theta: cfg.theta }, cfg.data_pages, seed);
        OltpGen {
            cfg,
            pattern,
            rng: SimRng::from_seed(seed).derive("oltp"),
            next_id: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &OltpConfig {
        &self.cfg
    }

    /// Generate the next transaction.
    pub fn next_txn(&mut self) -> Txn {
        let id = self.next_id;
        self.next_id += 1;
        let accesses = (0..self.cfg.pages_per_txn)
            .map(|_| PageAccess {
                page: self.pattern.next_addr(),
                dirty: !self.rng.chance(self.cfg.read_only_fraction),
            })
            .collect();
        Txn {
            id,
            accesses,
            log_bytes: self.cfg.log_bytes_per_txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txns_have_monotonic_ids_and_right_shape() {
        let mut g = OltpGen::new(OltpConfig::default(), 1);
        let a = g.next_txn();
        let b = g.next_txn();
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert_eq!(a.accesses.len(), 4);
        assert_eq!(a.log_bytes, 256);
        assert!(a.accesses.iter().all(|p| p.page < 4096));
    }

    #[test]
    fn dirty_fraction_tracks_config() {
        let cfg = OltpConfig {
            read_only_fraction: 0.25,
            ..OltpConfig::default()
        };
        let mut g = OltpGen::new(cfg, 2);
        let mut dirty = 0u32;
        let mut total = 0u32;
        for _ in 0..1000 {
            for a in g.next_txn().accesses {
                total += 1;
                if a.dirty {
                    dirty += 1;
                }
            }
        }
        let frac = dirty as f64 / total as f64;
        assert!((0.70..=0.80).contains(&frac), "dirty fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = OltpGen::new(OltpConfig::default(), 3);
        let mut b = OltpGen::new(OltpConfig::default(), 3);
        for _ in 0..100 {
            let (x, y) = (a.next_txn(), b.next_txn());
            assert_eq!(x.accesses, y.accesses);
        }
    }

    #[test]
    fn skew_makes_some_pages_hot() {
        let mut g = OltpGen::new(
            OltpConfig {
                theta: 0.99,
                data_pages: 1000,
                ..OltpConfig::default()
            },
            4,
        );
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..2500 {
            for a in g.next_txn().accesses {
                *counts.entry(a.page).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 200, "hottest page only {max}/10000 accesses");
    }
}
