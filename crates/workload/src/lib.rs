//! # requiem-workload — I/O pattern generation and workload drivers
//!
//! The paper's myth-busting methodology comes from uFLIP (refs [2, 3, 6]):
//! submit carefully-constructed *I/O patterns* — sequential, random,
//! strided, mixed — and observe how the device responds. This crate
//! regenerates those patterns and adds the access-skew and transaction
//! mixes the database-side experiments need:
//!
//! * [`pattern`] — address-pattern generators (sequential, uniform random,
//!   zipfian, strided, hot/cold) over a page space.
//! * [`driver`] — closed-loop (queue-depth) and open-loop (arrival-rate)
//!   drivers that push patterns into a [`requiem_ssd::Ssd`] and collect
//!   throughput/latency.
//! * [`oltp`] — a TPC-B-flavoured transaction mix used by the §3
//!   experiments (log writes + data page reads/writes per transaction).
//! * [`dbdriver`] — a closed-loop driver feeding the OLTP mix into
//!   `requiem-db`'s completion-driven executor (N transactions in
//!   flight — queue depth at the storage-manager interface).
//! * [`sharded`] — a million-client zipfian mix partitioned over N
//!   executor shards, with a knob for the fraction of transactions
//!   forced to span shards (the two-phase-ledger path in E17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbdriver;
pub mod driver;
pub mod oltp;
pub mod pattern;
pub mod sharded;

pub use dbdriver::{oltp_inputs, run_oltp_closed_loop, txn_to_input};
pub use driver::{
    precondition_sequential, run_closed_loop, run_closed_loop_serialized, run_open_loop,
    DriverReport, IoMix,
};
pub use pattern::{AddressPattern, Pattern};
pub use sharded::{ShardedOltpConfig, ShardedOltpGen};
