//! A sharded, million-client OLTP mix with a cross-shard knob.
//!
//! The shard sweep (E17) partitions the keyspace over N executor shards
//! by page residue (`page % N`). To exercise that topology the workload
//! needs two things [`crate::oltp`] does not model:
//!
//! * **clients** — transactions come from a large population (default one
//!   million) selected with zipfian skew; each client hashes to a home
//!   page, so access skew follows client popularity rather than raw page
//!   addresses. This is the "millions of application-level clients" shape
//!   the paper's §3 OLTP argument assumes.
//! * **a cross-shard mix knob** — with probability `cross_shard_ratio` a
//!   transaction is *guaranteed* to span at least two residue classes
//!   (it runs through the two-phase ledger); otherwise every access is
//!   clamped to the home client's residue class (it commits locally).
//!
//! Output is the same [`Txn`] shape the single-executor driver consumes,
//! so [`crate::dbdriver::txn_to_input`] works unchanged and the QD-1 ×
//! 1-shard identity experiment can replay an identical stream through
//! the serialized path.

use requiem_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::oltp::{PageAccess, Txn};
use crate::pattern::{AddressPattern, Pattern};

/// Parameters of the sharded client mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedOltpConfig {
    /// Client population size (zipfian-selected).
    pub clients: u64,
    /// Zipfian skew of client popularity.
    pub theta: f64,
    /// Number of executor shards (`page % shards` partition).
    pub shards: usize,
    /// Fraction of transactions forced to span >= 2 shards.
    pub cross_shard_ratio: f64,
    /// Data pages touched per transaction.
    pub pages_per_txn: u32,
    /// Fraction of touched pages that are only read (not dirtied).
    pub read_only_fraction: f64,
    /// Log bytes appended per transaction.
    pub log_bytes_per_txn: u32,
    /// Number of data pages in the database (must divide by `shards`).
    pub data_pages: u64,
}

impl Default for ShardedOltpConfig {
    fn default() -> Self {
        ShardedOltpConfig {
            clients: 1 << 20,
            theta: 0.8,
            shards: 1,
            cross_shard_ratio: 0.0,
            pages_per_txn: 4,
            read_only_fraction: 0.5,
            log_bytes_per_txn: 256,
            data_pages: 4096,
        }
    }
}

/// SplitMix64 finalizer — a fixed, stateless client-to-page hash, so a
/// client's accesses cluster on the same pages across transactions.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generator of sharded client transactions.
pub struct ShardedOltpGen {
    cfg: ShardedOltpConfig,
    clients: AddressPattern,
    rng: SimRng,
    next_id: u64,
}

impl std::fmt::Debug for ShardedOltpGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedOltpGen(next_id={}, shards={})",
            self.next_id, self.cfg.shards
        )
    }
}

impl ShardedOltpGen {
    /// Create a generator.
    ///
    /// # Panics
    /// If `shards` is zero, `data_pages` does not divide evenly into
    /// `shards` residue classes, or a nonzero `cross_shard_ratio` is
    /// combined with multiple shards but single-access transactions.
    /// (With one shard the ratio is inert: every transaction is local.)
    pub fn new(cfg: ShardedOltpConfig, seed: u64) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(
            cfg.data_pages % cfg.shards as u64 == 0,
            "data_pages must split evenly over shards"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.cross_shard_ratio),
            "cross_shard_ratio must be a probability"
        );
        if cfg.cross_shard_ratio > 0.0 && cfg.shards >= 2 {
            // with one shard the knob is inert — every txn is local
            assert!(
                cfg.pages_per_txn >= 2,
                "cross-shard txns need >= 2 accesses"
            );
        }
        let clients = AddressPattern::new(Pattern::Zipfian { theta: cfg.theta }, cfg.clients, seed);
        ShardedOltpGen {
            cfg,
            clients,
            rng: SimRng::from_seed(seed).derive("sharded-oltp"),
            next_id: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedOltpConfig {
        &self.cfg
    }

    /// Which shard a page belongs to (`page % shards`).
    pub fn shard_of(&self, page: u64) -> usize {
        (page % self.cfg.shards as u64) as usize
    }

    /// Clamp a page into shard `s`'s residue class, preserving its
    /// position within the class.
    fn clamp(&self, page: u64, s: usize) -> u64 {
        let n = self.cfg.shards as u64;
        page - (page % n) + s as u64
    }

    /// Generate the next transaction.
    ///
    /// A zipfian-selected client hashes to the transaction's first page;
    /// follow-on accesses are fresh client hashes. Single-shard
    /// transactions clamp every access into the home page's residue
    /// class; cross-shard transactions clamp the second access into the
    /// *next* residue class, guaranteeing at least two participants.
    pub fn next_txn(&mut self) -> Txn {
        let id = self.next_id;
        self.next_id += 1;
        let n = self.cfg.shards;
        let cross = n >= 2 && self.rng.chance(self.cfg.cross_shard_ratio);
        let mut accesses = Vec::with_capacity(self.cfg.pages_per_txn as usize);
        let mut home = 0usize;
        for i in 0..self.cfg.pages_per_txn {
            let client = self.clients.next_addr();
            let raw = mix64(client) % self.cfg.data_pages;
            let page = if i == 0 {
                home = self.shard_of(raw);
                raw
            } else if cross && i == 1 {
                self.clamp(raw, (home + 1) % n)
            } else if cross {
                raw
            } else {
                self.clamp(raw, home)
            };
            accesses.push(PageAccess {
                page,
                dirty: !self.rng.chance(self.cfg.read_only_fraction),
            });
        }
        Txn {
            id,
            accesses,
            log_bytes: self.cfg.log_bytes_per_txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn shards_touched(t: &Txn, n: usize) -> BTreeSet<usize> {
        t.accesses
            .iter()
            .map(|a| (a.page % n as u64) as usize)
            .collect()
    }

    #[test]
    fn single_shard_default_never_crosses() {
        let mut g = ShardedOltpGen::new(
            ShardedOltpConfig {
                shards: 4,
                cross_shard_ratio: 0.0,
                ..ShardedOltpConfig::default()
            },
            7,
        );
        for _ in 0..500 {
            let t = g.next_txn();
            assert_eq!(shards_touched(&t, 4).len(), 1, "txn must stay home");
            assert!(t.accesses.iter().all(|a| a.page < 4096));
        }
    }

    #[test]
    fn cross_ratio_one_always_spans_two_shards() {
        let mut g = ShardedOltpGen::new(
            ShardedOltpConfig {
                shards: 4,
                cross_shard_ratio: 1.0,
                ..ShardedOltpConfig::default()
            },
            8,
        );
        for _ in 0..500 {
            let t = g.next_txn();
            assert!(
                shards_touched(&t, 4).len() >= 2,
                "cross txn must span >= 2 shards"
            );
        }
    }

    #[test]
    fn cross_ratio_tracks_the_knob() {
        let mut g = ShardedOltpGen::new(
            ShardedOltpConfig {
                shards: 4,
                cross_shard_ratio: 0.2,
                ..ShardedOltpConfig::default()
            },
            9,
        );
        let crossed = (0..4000)
            .filter(|_| shards_touched(&g.next_txn(), 4).len() >= 2)
            .count();
        let frac = crossed as f64 / 4000.0;
        // Clamping cannot *remove* accidental same-residue collisions on
        // the cross path, so the measured rate sits at the knob plus a
        // small collision-free margin.
        assert!((0.15..=0.35).contains(&frac), "cross fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ShardedOltpConfig {
            shards: 8,
            cross_shard_ratio: 0.3,
            ..ShardedOltpConfig::default()
        };
        let mut a = ShardedOltpGen::new(cfg.clone(), 3);
        let mut b = ShardedOltpGen::new(cfg, 3);
        for _ in 0..200 {
            let (x, y) = (a.next_txn(), b.next_txn());
            assert_eq!(x.accesses, y.accesses);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn client_skew_concentrates_pages() {
        let mut g = ShardedOltpGen::new(
            ShardedOltpConfig {
                theta: 0.99,
                clients: 1 << 20,
                ..ShardedOltpConfig::default()
            },
            11,
        );
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..2500 {
            for a in g.next_txn().accesses {
                *counts.entry(a.page).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 50, "popular clients should make hot pages, max {max}");
    }
}
