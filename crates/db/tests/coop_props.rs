//! Property tests for the cooperating-logs storage manager (ISSUE 6):
//!
//! 1. **No page is lost or misdirected across arbitrary `Migrated`
//!    upcall interleavings** — for any sequence of writes, steals,
//!    atomic batches, frees, forces, truncations, and (batched) reads
//!    on a device churned to the edge of garbage collection, every page
//!    the host believes bound is readable at its current handle. A read
//!    is validated by the device's back-pointer check, so a clean
//!    status is proof the handle still names *that* page — migrations
//!    may have moved it arbitrarily, the upcall patches must have kept
//!    up exactly.
//! 2. **Fixed-seed bit-identical replay** — the same input sequence
//!    driven twice through fresh managers produces byte-identical
//!    device metrics, page tables, and clocks. Determinism is what
//!    makes the identity anchor (E14d) and the CI double-run diff
//!    meaningful for the nameless path too.

use proptest::prelude::*;
use requiem_db::wal::Lsn;
use requiem_db::{
    CoopLogBackend, Database, DbConfig, ExecConfig, GroupCommitPolicy, PageId, PersistenceBackend,
    PrefetchConfig, StorageManager, TxnInput, WalBackend, PAGE_SIZE,
};
use requiem_iface::nameless::NamelessConfig;
use requiem_sim::time::SimTime;
use requiem_sim::IoStatus;
use requiem_ssd::SsdConfig;
use std::collections::BTreeSet;

const DATA_PAGES: u64 = 900;
const LOG_PAGES: u64 = 500;

/// One LUN: the live set (data + WAL names) sits at ~68% of physical
/// capacity, so uniform churn keeps the device collector active and
/// `Migrated` upcalls flowing through every operation below.
fn one_lun() -> NamelessConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 1;
    cfg.shape.chips_per_channel = 1;
    NamelessConfig::from(&cfg)
}

/// A churned manager plus its WAL port and the running LSN ledger the
/// force protocol needs (appends must arrive in LSN order).
struct Churned {
    b: CoopLogBackend,
    w: Box<dyn WalBackend>,
    lsn: u64,
    t: SimTime,
}

impl Churned {
    /// Enlist `bytes` at the next LSN and force to it.
    fn force(&mut self, bytes: u32) {
        self.lsn += u64::from(bytes);
        self.w.append(Lsn(self.lsn), bytes);
        self.t = self.w.force(self.t, Lsn(self.lsn)).done;
    }
}

/// A backend churned to the GC edge: every data page written once, then
/// a deterministic uniform rewrite storm with periodic log traffic.
fn churned_backend() -> Churned {
    let mut b = CoopLogBackend::new(one_lun(), DATA_PAGES, LOG_PAGES);
    let w = b.make_wal();
    let mut c = Churned {
        b,
        w,
        lsn: 0,
        t: SimTime::ZERO,
    };
    for p in 0..DATA_PAGES {
        c.t = c.b.page_write(c.t, PageId(p));
    }
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..1500u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        c.t = c.b.page_write(c.t, PageId((x >> 33) % DATA_PAGES));
        if i % 8 == 0 {
            c.force(PAGE_SIZE as u32);
        }
    }
    c
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Steal(u64),
    Batch(Vec<u64>),
    Free(u64),
    Force(u32),
    Truncate,
    Read(u64),
    BatchedReads(Vec<u64>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..DATA_PAGES).prop_map(Op::Write),
        (0..DATA_PAGES).prop_map(Op::Steal),
        proptest::collection::vec(0..DATA_PAGES, 1..12).prop_map(Op::Batch),
        (0..DATA_PAGES).prop_map(Op::Free),
        (64u32..2 * PAGE_SIZE as u32).prop_map(Op::Force),
        proptest::strategy::Just(Op::Truncate),
        (0..DATA_PAGES).prop_map(Op::Read),
        proptest::collection::vec(0..DATA_PAGES, 1..8).prop_map(Op::BatchedReads),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 20..120)
}

/// Drive one op sequence; returns the host's model of which pages
/// should be bound. The clock advances in `c.t`.
fn drive(c: &mut Churned, ops: &[Op]) -> BTreeSet<u64> {
    let mut bound: BTreeSet<u64> = (0..DATA_PAGES).collect();
    for op in ops {
        match op {
            Op::Write(p) => {
                c.t = c.b.page_write(c.t, PageId(*p));
                bound.insert(*p);
            }
            Op::Steal(p) => {
                c.t = c.b.steal_write(c.t, PageId(*p));
                bound.insert(*p);
            }
            Op::Batch(ps) => {
                let pages: Vec<PageId> = ps.iter().map(|&p| PageId(p)).collect();
                c.t = c.b.page_batch(c.t, &pages);
                bound.extend(ps.iter().copied());
            }
            Op::Free(p) => {
                c.b.free_page(c.t, PageId(*p));
                bound.remove(p);
            }
            Op::Force(bytes) => {
                c.force(*bytes);
            }
            Op::Truncate => {
                // everything but the last two segments is outside the
                // redo horizon — the checkpoint shape
                let horizon = c.w.stats().log_bytes.saturating_sub(2 * PAGE_SIZE as u64);
                c.w.truncate(c.t, horizon);
            }
            Op::Read(p) => {
                let (done, _status) = c.b.page_read(c.t, PageId(*p));
                c.t = c.t.max(done);
            }
            Op::BatchedReads(ps) => {
                let pages: Vec<PageId> = ps.iter().map(|&p| PageId(p)).collect();
                let tags = c.b.submit_reads(c.t, &pages);
                let mut seen = 0usize;
                while seen < tags.len() {
                    if let Some(next) = c.b.next_read_done() {
                        c.t = c.t.max(next);
                    }
                    let drained = c.b.poll(c.t).len();
                    assert!(drained > 0, "batched reads must all complete");
                    seen += drained;
                }
            }
        }
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1: whatever the interleaving of host operations and
    /// device migrations, the page table never loses or misdirects a
    /// page.
    #[test]
    fn no_page_lost_or_misdirected(ops in arb_ops()) {
        let mut c = churned_backend();
        let bound = drive(&mut c, &ops);
        prop_assert_eq!(
            c.b.rejected_writes(),
            0,
            "eager frees must keep the device out of DeviceFull"
        );
        prop_assert_eq!(
            c.b.table().len() as u64,
            bound.len() as u64,
            "host model and page table must agree on what is bound"
        );
        for &p in &bound {
            let handle = c.b.handle_of(PageId(p));
            prop_assert!(handle.is_some(), "page {} lost its handle", p);
            let (done, status) = c.b.page_read(c.t, PageId(p));
            c.t = c.t.max(done);
            prop_assert!(
                status != IoStatus::Rejected,
                "page {} unreadable at its current handle: the upcall \
                 patches fell behind the device's migrations",
                p
            );
        }
    }

    /// Property 2: the same sequence replays bit-identically — device
    /// metrics, page tables, relocation counts, clocks, everything.
    #[test]
    fn fixed_seed_replay_is_bit_identical(ops in arb_ops()) {
        let run = || {
            let mut c = churned_backend();
            drive(&mut c, &ops);
            (
                format!("{:?}", c.b.dev().metrics()),
                format!("{:?}", c.b.table().iter().collect::<Vec<_>>()),
                format!("{:?}", c.b.segs().iter().collect::<Vec<_>>()),
                format!("{:?}", c.b.stats()),
                format!("{:?}", c.w.stats()),
                c.b.relocations_patched(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }
}

/// The interleaving property, pinned to a sequence guaranteed to make
/// the collector migrate: proptest explores breadth, this anchors depth
/// (a run where `relocations_patched` is provably non-zero).
#[test]
fn migrations_actually_happen_and_patch_cleanly() {
    let mut c = churned_backend();
    let mut x = 7u64;
    for i in 0..1200u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        c.t = c.b.page_write(c.t, PageId((x >> 33) % DATA_PAGES));
        if i % 16 == 0 {
            c.force(PAGE_SIZE as u32);
        }
        if i % 300 == 299 {
            let horizon = c.w.stats().log_bytes.saturating_sub(2 * PAGE_SIZE as u64);
            c.w.truncate(c.t, horizon);
        }
    }
    assert!(
        c.b.relocations_patched() > 0,
        "the churn must provoke device GC into migrating live pages"
    );
    assert_eq!(c.b.rejected_writes(), 0);
    for p in 0..DATA_PAGES {
        let (done, status) = c.b.page_read(c.t, PageId(p));
        c.t = c.t.max(done);
        assert!(
            status != IoStatus::Rejected,
            "page {p} unreadable after {} patched migrations",
            c.b.relocations_patched()
        );
    }
}

/// Determinism must survive the *engine* too: the full database over
/// the cooperating-logs manager replays a fixed transaction sequence
/// bit-identically (the nameless half of E14's CI double-run diff).
#[test]
fn database_on_coop_logs_replays_bit_identically() {
    let inputs: Vec<TxnInput> = (0..60)
        .map(|i: u64| TxnInput {
            accesses: (0..4)
                .map(|j| {
                    let page = (i * 37 + j * 11) % 128;
                    (page, ((page % 16) as u16), j % 2 == 0)
                })
                .collect(),
            log_bytes: 200 + (i as u32 % 300),
        })
        .collect();
    let run = || {
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 2;
        let backend = CoopLogBackend::new(NamelessConfig::from(&cfg), 128, 64);
        let mut db = Database::new(
            DbConfig {
                data_pages: 128,
                buffer_frames: 48,
                checkpoint_every: 20,
                ..DbConfig::default()
            },
            backend,
        );
        db.load();
        db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        (
            db.now(),
            format!("{:?}", db.stats()),
            format!("{:?}", db.backend().dev().metrics()),
            db.backend().relocations_patched(),
        )
    };
    assert_eq!(run(), run());
}
