//! Property tests for the WAL backend split (ISSUE 7): the log's
//! durability medium must change *timing only*, never *state*.
//!
//! 1. **Crash recovery is medium-independent** — a seeded commit-heavy
//!    mix run on a flash WAL and on a PCM WAL, crashed at the end and
//!    redo-recovered, leaves every (page, slot) with the same visible
//!    owner. The two media advance the clock differently (a PCM persist
//!    is ~1µs, a flash segment force is hundreds of µs), so the set of
//!    in-flight page images lost at the crash may differ — redo replay
//!    must erase that difference.
//! 2. **Zero-latency PCM is an ordering identity** — with
//!    [`PcmTiming::zero`] the PCM WAL is the flash path minus the
//!    stalls: the durable log record sequence, the commit count, and
//!    the visible state are bit-identical to the immediate-commit flash
//!    engine.
//! 3. **The QD-1 identity survives the PCM path** — concurrency 1 +
//!    prefetch off + immediate forces on a PCM WAL replays the
//!    serialized engine bit-for-bit, clock included, exactly as
//!    exp13/14 pin for the flash WAL.

use proptest::prelude::*;
use requiem_db::{
    Database, DbConfig, ExecConfig, LegacyBackend, PcmWalConfig, TxnInput, WalConfig,
};
use requiem_pcm::PcmTiming;
use requiem_ssd::SsdConfig;

const DATA_PAGES: u64 = 96;
const SLOTS: u16 = 16;

fn bare_ssd() -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.buffer.capacity_pages = 0;
    cfg
}

/// A small pool (steals) and frequent checkpoints (truncation) so the
/// mixes exercise every WAL call site, not just the commit force.
fn db(wal: WalConfig) -> Database<LegacyBackend> {
    DbConfig::builder()
        .data_pages(DATA_PAGES)
        .log_pages(64)
        .buffer_frames(24)
        .checkpoint_every(16)
        .wal(wal)
        .build_legacy(bare_ssd())
}

fn pcm(timing: PcmTiming) -> WalConfig {
    WalConfig::Pcm(PcmWalConfig {
        bytes: 1 << 20,
        timing,
        gap_interval: 64,
    })
}

/// Commit-heavy: most accesses dirty, every transaction carries log
/// payload — the shape where the WAL medium matters most.
fn arb_txn() -> impl Strategy<Value = TxnInput> {
    (
        proptest::collection::vec((0..DATA_PAGES, 0..SLOTS, 0u8..4), 1..6),
        32u32..512,
    )
        .prop_map(|(raw, log_bytes)| TxnInput {
            accesses: raw
                .into_iter()
                .map(|(page, slot, dirty)| (page, slot, dirty > 0))
                .collect(),
            log_bytes,
        })
}

fn arb_inputs() -> impl Strategy<Value = Vec<TxnInput>> {
    proptest::collection::vec(arb_txn(), 1..40)
}

/// Every (page, slot)'s visible owner — the post-recovery ground truth.
fn owners(db: &mut Database<LegacyBackend>) -> Vec<u64> {
    (0..DATA_PAGES)
        .flat_map(|p| (0..SLOTS).map(move |s| (p, s)))
        .map(|(p, s)| db.visible_owner(p, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: flash-WAL and PCM-WAL recovery agree on every slot.
    #[test]
    fn crash_recovery_is_medium_independent(inputs in arb_inputs()) {
        let mut flash = db(WalConfig::Flash);
        let mut byte = db(pcm(PcmTiming::gen1()));
        for t in &inputs {
            flash.execute(&t.accesses, t.log_bytes);
            byte.execute(&t.accesses, t.log_bytes);
        }
        prop_assert_eq!(flash.stats().commits, byte.stats().commits);
        flash.crash();
        byte.crash();
        flash.recover();
        byte.recover();
        prop_assert_eq!(
            owners(&mut flash),
            owners(&mut byte),
            "redo recovery must erase the media timing difference"
        );
    }

    /// Property 2: PCM at zero latency == immediate-commit flash, as
    /// state machines (records, commits, visible slots).
    #[test]
    fn zero_latency_pcm_is_an_ordering_identity(inputs in arb_inputs()) {
        let mut flash = db(WalConfig::Flash);
        let mut byte = db(pcm(PcmTiming::zero()));
        for t in &inputs {
            flash.execute(&t.accesses, t.log_bytes);
            byte.execute(&t.accesses, t.log_bytes);
        }
        prop_assert_eq!(flash.stats().commits, byte.stats().commits);
        prop_assert_eq!(
            format!("{:?}", flash.wal().durable_records().collect::<Vec<_>>()),
            format!("{:?}", byte.wal().durable_records().collect::<Vec<_>>()),
            "the durable log must be record-for-record identical"
        );
        prop_assert_eq!(owners(&mut flash), owners(&mut byte));
    }

    /// Property 3: the QD-1 identity anchor holds with the WAL on PCM.
    #[test]
    fn qd1_identity_holds_on_the_pcm_wal(inputs in arb_inputs()) {
        let mut serial = db(pcm(PcmTiming::gen1()));
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = db(pcm(PcmTiming::gen1()));
        conc.run_concurrent(&inputs, &ExecConfig::serialized());
        prop_assert_eq!(conc.now(), serial.now());
        prop_assert_eq!(conc.stats(), serial.stats());
        prop_assert_eq!(conc.txn_latency(), serial.txn_latency());
        prop_assert_eq!(conc.commit_latency(), serial.commit_latency());
        prop_assert_eq!(
            conc.wal_backend().stats().log_forces,
            serial.wal_backend().stats().log_forces
        );
        prop_assert_eq!(
            conc.wal_backend().stats().log_bytes,
            serial.wal_backend().stats().log_bytes
        );
        let (cw, sw) = (conc.wal_backend().wear(), serial.wal_backend().wear());
        prop_assert_eq!(
            cw.map(|w| w.total_line_writes),
            sw.map(|w| w.total_line_writes),
            "start-gap wear must replay identically too"
        );
    }
}
