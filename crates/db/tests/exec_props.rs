//! Property tests for the completion-driven executor (ISSUE 5):
//!
//! 1. **Group commit never reorders LSNs** — the durability order the
//!    executor reports is exactly WAL order, for any mix, concurrency,
//!    and batching policy.
//! 2. **Coalesced fetches return identical bytes** — a workload
//!    engineered so concurrent transactions pile onto the same in-flight
//!    page reads must leave the database byte-for-byte where independent
//!    (serialized) fetches leave it.
//! 3. **The QD-1 identity holds under random access mixes** — not just
//!    for the hand-picked workloads in the unit tests.

use proptest::prelude::*;
use requiem_db::{
    Database, DbConfig, ExecConfig, GroupCommitPolicy, LegacyBackend, PersistenceBackend, TxnInput,
};
use requiem_ssd::SsdConfig;

const DATA_PAGES: u64 = 64;
const SLOTS: u16 = 16;

fn small_db(buffer_frames: usize) -> Database<LegacyBackend> {
    let cfg = DbConfig {
        data_pages: DATA_PAGES,
        buffer_frames,
        ..DbConfig::default()
    };
    let mut ssd_cfg = SsdConfig::modern();
    ssd_cfg.buffer.capacity_pages = 0;
    let mut db = Database::new(cfg, LegacyBackend::new(ssd_cfg, DATA_PAGES, 64));
    db.load();
    db
}

fn arb_txn() -> impl Strategy<Value = TxnInput> {
    (
        proptest::collection::vec((0..DATA_PAGES, 0..SLOTS, 0u8..2), 1..6),
        32u32..512,
    )
        .prop_map(|(raw, log_bytes)| TxnInput {
            accesses: raw
                .into_iter()
                .map(|(page, slot, dirty)| (page, slot, dirty == 1))
                .collect(),
            log_bytes,
        })
}

fn arb_inputs() -> impl Strategy<Value = Vec<TxnInput>> {
    proptest::collection::vec(arb_txn(), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Durability order == WAL order: the executor's reported
    /// `commit_order` is strictly increasing in LSN, covers every
    /// transaction exactly once, and every reported LSN is flushed.
    #[test]
    fn group_commit_never_reorders_lsns(
        inputs in arb_inputs(),
        concurrency in 1usize..6,
        batch in 1u32..8,
    ) {
        let mut db = small_db(16);
        let cfg = ExecConfig {
            concurrency,
            group: GroupCommitPolicy::batched(batch),
            ..ExecConfig::serialized()
        };
        let report = db.run_concurrent(&inputs, &cfg);
        prop_assert_eq!(report.commit_order.len(), inputs.len());
        for w in report.commit_order.windows(2) {
            prop_assert!(
                w[0].1 < w[1].1,
                "durability order must be strictly increasing in LSN: {:?} then {:?}",
                w[0], w[1]
            );
        }
        let mut txns: Vec<u64> = report.commit_order.iter().map(|&(t, _)| t).collect();
        txns.sort_unstable();
        txns.dedup();
        prop_assert_eq!(txns.len(), inputs.len(), "each txn commits exactly once");
        let flushed = db.wal().flushed();
        let max_lsn = report.commit_order.iter().map(|&(_, l)| l).max();
        if let (Some(f), Some(m)) = (flushed, max_lsn) {
            prop_assert!(m <= f, "every reported commit LSN must be durable");
        }
    }

    /// Coalescing must be invisible in the bytes: a run whose demand
    /// fetches pile onto in-flight reads (tiny pool, shared hot pages,
    /// disjoint writes) ends with exactly the record owners a serialized
    /// run produces. Disjoint write sets make the final image
    /// order-independent, so any byte difference is a coalescing bug.
    #[test]
    fn coalesced_fetches_return_identical_bytes(
        hot in proptest::collection::vec(0..DATA_PAGES, 1..4),
        seed_pages in proptest::collection::vec(0..DATA_PAGES, 8..24),
        concurrency in 2usize..6,
    ) {
        // each txn reads the shared hot pages, then writes its own page
        let inputs: Vec<TxnInput> = seed_pages
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut accesses: Vec<(u64, u16, bool)> =
                    hot.iter().map(|&h| (h, (h % u64::from(SLOTS)) as u16, false)).collect();
                // unique (page, slot) per txn: page stride + slot from index
                let page = (p + i as u64) % DATA_PAGES;
                accesses.push((page, (i as u16) % SLOTS, true));
                TxnInput { accesses, log_bytes: 64 }
            })
            .collect();
        let mut serial = small_db(4);
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = small_db(4);
        conc.run_concurrent(&inputs, &ExecConfig {
            concurrency,
            ..ExecConfig::serialized()
        });
        // visible_owner is the byte-level observable: who owns each slot
        for page in 0..DATA_PAGES {
            for slot in 0..SLOTS {
                prop_assert_eq!(
                    conc.visible_owner(page, slot),
                    serial.visible_owner(page, slot),
                    "owner mismatch at page {} slot {}", page, slot
                );
            }
        }
    }

    /// The QD-1 identity under arbitrary mixes: concurrency 1 +
    /// prefetch off + immediate forces replays the serialized engine
    /// bit-for-bit — clock, stall ledger, histograms, device counters.
    #[test]
    fn qd1_identity_under_random_mixes(inputs in arb_inputs()) {
        let mut serial = small_db(16);
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = small_db(16);
        conc.run_concurrent(&inputs, &ExecConfig::serialized());
        prop_assert_eq!(conc.now(), serial.now());
        prop_assert_eq!(conc.stats(), serial.stats());
        prop_assert_eq!(conc.txn_latency(), serial.txn_latency());
        prop_assert_eq!(conc.commit_latency(), serial.commit_latency());
        prop_assert_eq!(
            conc.wal_backend().stats().log_forces,
            serial.wal_backend().stats().log_forces
        );
        prop_assert_eq!(
            conc.wal_backend().stats().log_bytes,
            serial.wal_backend().stats().log_bytes
        );
        prop_assert_eq!(
            conc.backend().stats().page_reads,
            serial.backend().stats().page_reads
        );
        prop_assert_eq!(
            conc.backend().stats().steal_writes,
            serial.backend().stats().steal_writes
        );
    }
}
