//! Property tests for the sharded execution path (PR 10):
//!
//! 1. **The QD-1 × 1-shard identity** — a one-shard [`ShardedDb`] at
//!    concurrency 1, prefetch off, immediate forces replays the
//!    serialized `execute()` engine bit for bit: clock, stall ledger,
//!    histograms, WAL bytes, device counters. This is the anchor that
//!    proves the coordinator adds *nothing* until shards and queue
//!    depth are dialed up.
//! 2. **No cross-shard commit without every prepare** — under arbitrary
//!    fault plans (program fails, elevated RBER), a durable `Commit`
//!    for a cross-shard transaction implies a durable `Prepare` on
//!    every participant, aborted transactions never leave a `Commit`
//!    anywhere, and recovery only resurrects decided transactions.
//! 3. **Deterministic replay** — the same inputs on identically built
//!    deployments produce byte-identical schedules for N ∈ {2, 4, 8}.

use proptest::prelude::*;
use proptest::strategy::Just;
use requiem_block::StackConfig;
use requiem_db::page::PageId;
use requiem_db::wal::{LogRecord, Lsn};
use requiem_db::{
    BlockStackBackend, Database, DbConfig, ExecConfig, GroupCommitPolicy, LegacyBackend,
    PersistenceBackend, ReadShim, ShardedDb, TxnDecision, TxnInput, WalBackend, WalForce, WalStats,
};
use requiem_sim::time::SimTime;
use requiem_sim::{FaultPlan, IoStatus};
use requiem_ssd::SsdConfig;

const DATA_PAGES: u64 = 64;
const SLOTS: u16 = 16;

fn sharded(n: usize, fault: FaultPlan) -> ShardedDb<BlockStackBackend> {
    let mut ssd = SsdConfig::modern();
    ssd.fault = fault;
    DbConfig::builder()
        .data_pages(DATA_PAGES)
        .log_pages(16)
        .buffer_frames(32)
        .shards(n)
        .build_sharded_stack(StackConfig::blk_mq(n as u32), ssd)
}

fn arb_txn() -> impl Strategy<Value = TxnInput> {
    (
        proptest::collection::vec((0..DATA_PAGES, 0..SLOTS, 0u8..2), 1..6),
        32u32..512,
    )
        .prop_map(|(raw, log_bytes)| TxnInput {
            accesses: raw
                .into_iter()
                .map(|(page, slot, dirty)| (page, slot, dirty == 1))
                .collect(),
            log_bytes,
        })
}

fn arb_inputs() -> impl Strategy<Value = Vec<TxnInput>> {
    proptest::collection::vec(arb_txn(), 1..24)
}

/// A fault plan mixing deterministic program fails (early write indices
/// on a few units — these land in WAL regions and turn prepare forces
/// into NO votes) with optional elevated raw bit error rates.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec((0u32..8, proptest::collection::vec(0u64..40, 0..4)), 0..4),
        prop_oneof![Just(1.0f64), Just(50.0), Just(400.0)],
    )
        .prop_map(|(fails, rber)| {
            let mut plan = if rber > 1.0 {
                FaultPlan::uniform_rber(rber)
            } else {
                FaultPlan::none()
            };
            for (unit, indices) in fails {
                if !indices.is_empty() {
                    plan = plan.with_program_fail(unit, indices);
                }
            }
            plan
        })
}

/// A WAL that forges `Unrecoverable` on every `fail_every`-th force:
/// the device's write path self-heals program failures, so genuinely
/// failing a prepare force — the NO vote the ledger must handle — needs
/// a forged status, exactly like the engine's own flaky-read tests.
struct FlakyWal {
    inner: Box<dyn WalBackend>,
    forces: u64,
    fail_every: u64,
}

impl WalBackend for FlakyWal {
    fn append(&mut self, lsn: Lsn, bytes: u32) {
        self.inner.append(lsn, bytes)
    }
    fn force(&mut self, now: SimTime, to: Lsn) -> WalForce {
        let mut f = self.inner.force(now, to);
        self.forces += 1;
        if self.fail_every > 0 && self.forces % self.fail_every == 0 {
            f.status = IoStatus::Unrecoverable;
        }
        f
    }
    fn truncate(&mut self, now: SimTime, up_to_byte: u64) {
        self.inner.truncate(now, up_to_byte)
    }
    fn recover_scan(&mut self, now: SimTime, offset: u64, bytes: u32) -> (SimTime, IoStatus) {
        self.inner.recover_scan(now, offset, bytes)
    }
    fn stats(&self) -> &WalStats {
        self.inner.stats()
    }
    fn label(&self) -> &'static str {
        "flaky-wal"
    }
}

struct FlakyWalBackend {
    inner: LegacyBackend,
    fail_every: u64,
}

impl PersistenceBackend for FlakyWalBackend {
    fn make_wal(&mut self) -> Box<dyn WalBackend> {
        Box::new(FlakyWal {
            inner: self.inner.make_wal(),
            forces: 0,
            fail_every: self.fail_every,
        })
    }
    fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.inner.page_write(now, page)
    }
    fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.inner.steal_write(now, page)
    }
    fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, IoStatus) {
        self.inner.page_read(now, page)
    }
    fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime {
        self.inner.page_batch(now, pages)
    }
    fn free_page(&mut self, now: SimTime, page: PageId) {
        self.inner.free_page(now, page)
    }
    fn read_shim(&mut self) -> Option<&mut ReadShim> {
        self.inner.read_shim()
    }
    fn submit_reads(&mut self, now: SimTime, pages: &[PageId]) -> Vec<requiem_db::CommandTag> {
        self.inner.submit_reads(now, pages)
    }
    fn poll(&mut self, now: SimTime) -> Vec<requiem_db::PageRead> {
        self.inner.poll(now)
    }
    fn next_read_done(&mut self) -> Option<SimTime> {
        self.inner.next_read_done()
    }
    fn reads_in_flight(&mut self) -> usize {
        self.inner.reads_in_flight()
    }
    fn set_read_window(&mut self, depth: usize) {
        self.inner.set_read_window(depth)
    }
    fn relax_submit_order(&mut self) {
        self.inner.relax_submit_order()
    }
    fn stats(&self) -> &requiem_db::backend::BackendStats {
        self.inner.stats()
    }
    fn label(&self) -> &'static str {
        "flaky-wal-block"
    }
}

/// A sharded deployment whose every shard drops each `fail_every`-th
/// WAL force (1 = every force fails, every prepare is a NO vote).
fn flaky_sharded(n: usize, fail_every: u64) -> ShardedDb<FlakyWalBackend> {
    let local_pages = DATA_PAGES / n as u64;
    let dbs = (0..n)
        .map(|_| {
            let cfg = requiem_db::DbConfig {
                data_pages: local_pages,
                buffer_frames: 16,
                ..requiem_db::DbConfig::default()
            };
            let mut ssd = SsdConfig::modern();
            ssd.buffer.capacity_pages = 0;
            let be = FlakyWalBackend {
                inner: LegacyBackend::new(ssd, local_pages, 64),
                fail_every,
            };
            let mut db = Database::new(cfg, be);
            db.load();
            db
        })
        .collect();
    ShardedDb::new(dbs, DATA_PAGES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// QD-1 × 1-shard == serialized `execute()`, bit for bit.
    #[test]
    fn qd1_one_shard_is_bit_identical_to_execute(inputs in arb_inputs()) {
        let mut serial = DbConfig::builder()
            .data_pages(DATA_PAGES)
            .log_pages(16)
            .buffer_frames(32)
            .build_stack(StackConfig::blk_mq(1), SsdConfig::modern());
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }

        let mut one = sharded(1, FaultPlan::none());
        let report = one.run(&inputs, &ExecConfig::serialized());

        prop_assert_eq!(report.committed, inputs.len() as u64);
        let shard = one.shard(0);
        prop_assert_eq!(shard.now(), serial.now(), "virtual clocks must match");
        prop_assert_eq!(shard.stats(), serial.stats(), "stall ledger must match");
        prop_assert_eq!(shard.txn_latency(), serial.txn_latency());
        prop_assert_eq!(shard.commit_latency(), serial.commit_latency());
        prop_assert_eq!(
            shard.wal_backend().stats().log_forces,
            serial.wal_backend().stats().log_forces
        );
        prop_assert_eq!(
            shard.wal_backend().stats().log_bytes,
            serial.wal_backend().stats().log_bytes
        );
        prop_assert_eq!(
            shard.backend().stats().page_reads,
            serial.backend().stats().page_reads
        );
        prop_assert_eq!(
            shard.backend().stats().steal_writes,
            serial.backend().stats().steal_writes
        );
        // byte-level observable: identical record owners everywhere
        let mut one = one;
        for page in 0..DATA_PAGES {
            for slot in 0..SLOTS {
                prop_assert_eq!(
                    one.shard_mut(0).visible_owner(page, slot),
                    serial.visible_owner(page, slot),
                    "owner mismatch at page {} slot {}", page, slot
                );
            }
        }
    }

    /// Two-phase safety under arbitrary fault plans: durable `Commit`
    /// for a cross-shard transaction ⇒ durable `Prepare` on every
    /// participant; an abort leaves no `Commit` anywhere.
    #[test]
    fn no_cross_shard_commit_with_missing_prepare(
        inputs in arb_inputs(),
        n in prop_oneof![Just(2usize), Just(4usize)],
        concurrency in 1usize..5,
        plan in arb_fault_plan(),
    ) {
        let mut db = sharded(n, plan);
        let cfg = ExecConfig {
            concurrency,
            group: GroupCommitPolicy::batched(2),
            ..ExecConfig::serialized()
        };
        let report = db.run(&inputs, &cfg);
        prop_assert_eq!(
            report.committed + report.aborted,
            inputs.len() as u64,
            "every global transaction must be decided"
        );

        let durable_commit = |s: usize, txn: u64| {
            db.shard(s)
                .wal()
                .durable_records()
                .any(|(_, r)| matches!(r, LogRecord::Commit { txn: t } if *t == txn))
        };
        let durable_prepare = |s: usize, txn: u64| {
            db.shard(s)
                .wal()
                .durable_records()
                .any(|(_, r)| matches!(r, LogRecord::Prepare { txn: t } if *t == txn))
        };

        for (&txn, entry) in db.ledger().entries() {
            match entry.decision {
                TxnDecision::Committed => {
                    prop_assert!(
                        durable_commit(entry.home, txn),
                        "committed txn {} missing its home Commit", txn
                    );
                    for &p in &entry.participants {
                        prop_assert!(
                            durable_prepare(p, txn),
                            "committed txn {} has no durable Prepare on shard {}", txn, p
                        );
                    }
                }
                TxnDecision::Aborted => {
                    for s in 0..n {
                        prop_assert!(
                            !durable_commit(s, txn),
                            "aborted txn {} left a Commit on shard {}", txn, s
                        );
                    }
                }
                other => prop_assert!(
                    false,
                    "txn {} left undecided after the run: {:?}", txn, other
                ),
            }
            // the commit point is the home shard's force alone
            for s in (0..n).filter(|&s| s != entry.home) {
                prop_assert!(
                    !durable_commit(s, txn),
                    "txn {} has a Commit off its home shard ({})", txn, s
                );
            }
        }

        // recovery must agree: only decided-committed transactions are
        // visible after a crash
        db.crash();
        db.recover();
        let aborted: Vec<u64> = db
            .ledger()
            .entries()
            .filter(|(_, e)| e.decision == TxnDecision::Aborted)
            .map(|(&t, _)| t)
            .collect();
        for txn in aborted {
            for s in 0..n {
                let local_pages = DATA_PAGES / n as u64;
                for page in 0..local_pages {
                    for slot in 0..SLOTS {
                        prop_assert_ne!(
                            db.shard_mut(s).visible_owner(page, slot),
                            txn,
                            "aborted txn {} visible after recovery (shard {} page {} slot {})",
                            txn, s, page, slot
                        );
                    }
                }
            }
        }
    }

    /// Typed aborts under forged force failures: a NO vote can never be
    /// followed by a durable commit, every aborted share is rolled
    /// back, and with every force failing, *every* cross-shard
    /// transaction aborts.
    #[test]
    fn forged_prepare_failures_abort_without_commits(
        inputs in arb_inputs(),
        n in prop_oneof![Just(2usize), Just(4usize)],
        fail_every in 1u64..5,
        concurrency in 1usize..5,
    ) {
        let mut db = flaky_sharded(n, fail_every);
        let cfg = ExecConfig {
            concurrency,
            ..ExecConfig::serialized()
        };
        let report = db.run(&inputs, &cfg);
        prop_assert_eq!(report.committed + report.aborted, inputs.len() as u64);
        if fail_every == 1 {
            prop_assert_eq!(
                report.aborted, report.cross_txns,
                "with every force failing, every cross-shard txn must abort"
            );
        }
        for (&txn, entry) in db.ledger().entries() {
            if entry.decision == TxnDecision::Aborted {
                for s in 0..n {
                    let no_commit = !db.shard(s).wal().durable_records().any(
                        |(_, r)| matches!(r, LogRecord::Commit { txn: t } if *t == txn),
                    );
                    prop_assert!(no_commit, "aborted txn {} left a Commit on shard {}", txn, s);
                }
                let abort_logged = db.shard(entry.home).wal().durable_records().chain(
                    db.shard(entry.home).wal().records_after(None),
                ).any(|(_, r)| matches!(r, LogRecord::Abort { txn: t } if *t == txn));
                prop_assert!(abort_logged, "aborted txn {} has no Abort record", txn);
            }
        }
        // rolled-back shares must be invisible in the final bytes
        let aborted: Vec<u64> = db
            .ledger()
            .entries()
            .filter(|(_, e)| e.decision == TxnDecision::Aborted)
            .map(|(&t, _)| t)
            .collect();
        let local_pages = DATA_PAGES / n as u64;
        for txn in aborted {
            for s in 0..n {
                for page in 0..local_pages {
                    for slot in 0..SLOTS {
                        prop_assert_ne!(
                            db.shard_mut(s).visible_owner(page, slot),
                            txn,
                            "aborted txn {} still visible on shard {}", txn, s
                        );
                    }
                }
            }
        }
    }

    /// Bit-reproducible schedules at every shard count.
    #[test]
    fn sharded_replay_is_deterministic(
        inputs in arb_inputs(),
        concurrency in 1usize..6,
    ) {
        for n in [2usize, 4, 8] {
            let cfg = ExecConfig {
                concurrency,
                ..ExecConfig::serialized()
            };
            let mut a = sharded(n, FaultPlan::none());
            let mut b = sharded(n, FaultPlan::none());
            let ra = a.run(&inputs, &cfg);
            let rb = b.run(&inputs, &cfg);
            prop_assert_eq!(ra.makespan, rb.makespan, "{} shards: makespan", n);
            prop_assert_eq!(ra.committed, rb.committed, "{} shards: committed", n);
            prop_assert_eq!(ra.forces, rb.forces, "{} shards: forces", n);
            for s in 0..n {
                prop_assert_eq!(
                    &ra.per_shard[s].commit_order,
                    &rb.per_shard[s].commit_order,
                    "{} shards: shard {} durability order", n, s
                );
                prop_assert_eq!(
                    a.shard(s).now(),
                    b.shard(s).now(),
                    "{} shards: shard {} clock", n, s
                );
                prop_assert_eq!(
                    a.shard(s).wal_backend().stats().log_bytes,
                    b.shard(s).wal_backend().stats().log_bytes,
                    "{} shards: shard {} WAL bytes", n, s
                );
            }
        }
    }
}
