//! The pluggable storage-manager layer: one trait over the block-backed
//! heap manager and the cooperating-logs manager, in the vocabulary the
//! engine's reporting needs.
//!
//! [`PersistenceBackend`] is the *traffic* contract — forces, writes,
//! reads, batches. [`StorageManager`] is the *identity* contract layered
//! on top: each manager names its handle type (what the host stores per
//! page), exposes where a page currently lives, and accounts for the
//! placement work the device did on its behalf. The type parameter makes
//! the difference between the designs a compile-time fact:
//!
//! * the block manager's handle is an [`Lpn`] — a name the host chose,
//!   fixed for the page's lifetime, with a hidden FTL indirection
//!   underneath (and `relocations_patched() == 0` forever, because the
//!   block interface has no way to tell the host anything moved);
//! * the cooperating-logs manager's handle is a [`PhysName`] — a name
//!   the *device* chose, patched in RAM whenever a
//!   [`Migrated`](requiem_iface::Upcall::Migrated) upcall reports that
//!   garbage collection moved the page.
//!
//! E14 drives the same OLTP trace through both implementations and
//! compares exactly the numbers this trait exports: end-to-end write
//! amplification and the collector's copy traffic.

use requiem_iface::nameless::PhysName;
use requiem_ssd::Lpn;

use crate::backend::{LegacyBackend, PersistenceBackend};
use crate::coop::CoopLogBackend;
use crate::page::PageId;

/// A persistence backend that can say what it stores per page and what
/// the device's collector did underneath it.
pub trait StorageManager: PersistenceBackend {
    /// What the host stores to find a page again: a host-chosen LBA on
    /// the block interface, a device-chosen [`PhysName`] on the nameless
    /// one.
    type Handle: Copy + std::fmt::Debug + PartialEq;

    /// Where `page` currently lives, if it has ever been written.
    fn handle_of(&self, page: PageId) -> Option<Self::Handle>;

    /// Migration upcalls applied to the page table. Structurally zero
    /// for block managers: the interface cannot express one.
    fn relocations_patched(&self) -> u64;

    /// Flash page programs the device performed for this manager's
    /// traffic (host writes *and* every hidden copy).
    fn device_programs(&self) -> u64;

    /// Write commands the device accepted from this manager.
    fn device_host_writes(&self) -> u64;

    /// Garbage-collection invocations inside the device.
    fn device_gc_runs(&self) -> u64;

    /// Pages the device's garbage collector relocated — the double-GC
    /// tax when a log-structured manager runs on a log-structured FTL.
    fn device_gc_moved(&self) -> u64;

    /// Device-level write amplification (physical programs per host
    /// write command).
    fn device_write_amplification(&self) -> f64;
}

impl StorageManager for LegacyBackend {
    type Handle = Lpn;

    fn handle_of(&self, page: PageId) -> Option<Self::Handle> {
        // the block manager's mapping is static arithmetic: the handle
        // exists whether or not the page was ever written, which is the
        // memory abstraction in one line
        Some(Lpn(self.data_base() + page.0))
    }

    fn relocations_patched(&self) -> u64 {
        0
    }

    fn device_programs(&self) -> u64 {
        self.ssd().metrics().flash_programs.total()
    }

    fn device_host_writes(&self) -> u64 {
        self.ssd().metrics().host_writes
    }

    fn device_gc_runs(&self) -> u64 {
        self.ssd().metrics().gc_runs
    }

    fn device_gc_moved(&self) -> u64 {
        self.ssd().metrics().gc_pages_moved
    }

    fn device_write_amplification(&self) -> f64 {
        self.ssd().metrics().write_amplification()
    }
}

impl StorageManager for CoopLogBackend {
    type Handle = PhysName;

    fn handle_of(&self, page: PageId) -> Option<Self::Handle> {
        self.table().lookup(page.0)
    }

    fn relocations_patched(&self) -> u64 {
        CoopLogBackend::relocations_patched(self)
    }

    fn device_programs(&self) -> u64 {
        self.dev().metrics().flash_programs.total()
    }

    fn device_host_writes(&self) -> u64 {
        self.dev().metrics().host_writes
    }

    fn device_gc_runs(&self) -> u64 {
        self.dev().metrics().gc_runs
    }

    fn device_gc_moved(&self) -> u64 {
        self.dev().metrics().gc_pages_moved
    }

    fn device_write_amplification(&self) -> f64 {
        self.dev().metrics().write_amplification()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_iface::nameless::NamelessConfig;
    use requiem_sim::time::SimTime;
    use requiem_ssd::SsdConfig;

    fn cfg() -> SsdConfig {
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 2;
        cfg
    }

    /// The generic code path E14 uses: anything that is a StorageManager
    /// can be asked where a page lives and what placement work happened.
    fn describe<M: StorageManager>(m: &M, page: PageId) -> (bool, u64) {
        (m.handle_of(page).is_some(), m.relocations_patched())
    }

    #[test]
    fn block_manager_handles_are_static_and_silent() {
        let mut m = LegacyBackend::new(cfg(), 64, 16);
        let (bound_before_write, _) = describe(&m, PageId(3));
        assert!(
            bound_before_write,
            "an LBA exists before any write: the memory abstraction"
        );
        let t = m.page_write(SimTime::ZERO, PageId(3));
        assert!(t > SimTime::ZERO);
        assert_eq!(
            m.relocations_patched(),
            0,
            "the block interface cannot report a relocation"
        );
    }

    #[test]
    fn coop_manager_handles_exist_only_after_write() {
        let mut m = CoopLogBackend::new(NamelessConfig::from(&cfg()), 64, 16);
        let (bound_before_write, _) = describe(&m, PageId(3));
        assert!(
            !bound_before_write,
            "no name until the device chooses one: the communication abstraction"
        );
        let t = m.page_write(SimTime::ZERO, PageId(3));
        assert!(t > SimTime::ZERO);
        let (bound_after_write, _) = describe(&m, PageId(3));
        assert!(bound_after_write);
        assert!(m.device_programs() >= 1);
    }
}
