//! One front door for database construction: [`DbBuilder`].
//!
//! Experiment binaries used to assemble a database from four loose
//! pieces — a [`DbConfig`], a backend constructor, an [`ExecConfig`],
//! and (since the WAL split) a [`WalConfig`] — and every binary
//! duplicated the same glue. The builder bundles the knobs that must
//! agree (group-commit policy, WAL medium, prefetch, concurrency) and
//! hands back a loaded [`Database`] for any of the four storage
//! managers, plus the matching [`ExecConfig`] for the closed loop.

use requiem_block::StackConfig;
use requiem_iface::nameless::NamelessConfig;
use requiem_ssd::SsdConfig;

use crate::backend::{LegacyBackend, VisionBackend};
use crate::coop::CoopLogBackend;
use crate::engine::{Database, DbConfig};
use crate::exec::ExecConfig;
use crate::prefetch::PrefetchConfig;
use crate::shard::ShardedDb;
use crate::stack_backend::BlockStackBackend;
use crate::wal::GroupCommitPolicy;
use crate::walbackend::WalConfig;

/// Builder bundling every engine-level knob; see the module docs.
/// Construct via [`DbConfig::builder`].
#[derive(Debug, Clone)]
pub struct DbBuilder {
    data_pages: u64,
    log_pages: u64,
    buffer_frames: usize,
    checkpoint_every: u64,
    group: GroupCommitPolicy,
    prefetch: PrefetchConfig,
    concurrency: usize,
    wal: WalConfig,
    shards: usize,
    cross_shard_ratio: f64,
}

impl DbConfig {
    /// Start a [`DbBuilder`] with this crate's defaults (1024 data
    /// pages, 512-segment log, 128 frames, immediate commit, prefetch
    /// off, flash WAL).
    pub fn builder() -> DbBuilder {
        DbBuilder {
            data_pages: 1024,
            log_pages: 512,
            buffer_frames: 128,
            checkpoint_every: 0,
            group: GroupCommitPolicy::immediate(),
            prefetch: PrefetchConfig::off(),
            concurrency: 1,
            wal: WalConfig::Flash,
            shards: 1,
            cross_shard_ratio: 0.0,
        }
    }
}

impl DbBuilder {
    /// Data pages in the database.
    pub fn data_pages(mut self, pages: u64) -> Self {
        self.data_pages = pages;
        self
    }

    /// Redo-log capacity in segments (block/nameless backends).
    pub fn log_pages(mut self, pages: u64) -> Self {
        self.log_pages = pages;
        self
    }

    /// Buffer pool frames.
    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.buffer_frames = frames;
        self
    }

    /// Checkpoint every N commits (0 = never).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Group-commit policy for the closed loop ([`ExecConfig::group`]);
    /// the serialized path forces every `max_txns` commits to match.
    pub fn group(mut self, group: GroupCommitPolicy) -> Self {
        self.group = group;
        self
    }

    /// Readahead policy for the closed loop.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Transactions kept in flight by the closed loop.
    pub fn concurrency(mut self, depth: usize) -> Self {
        self.concurrency = depth;
        self
    }

    /// Which medium carries the WAL (see [`WalConfig`]).
    pub fn wal(mut self, wal: WalConfig) -> Self {
        self.wal = wal;
        self
    }

    /// Executor shards for [`Self::build_sharded_stack`] (default 1:
    /// the single-executor path, bit-identical to before the knob
    /// existed). Must divide `data_pages` evenly.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard");
        self.shards = n;
        self
    }

    /// Fraction of workload transactions that should span shards
    /// (recorded for workload generators to consume; the builder itself
    /// partitions only the keyspace). Default 0.0.
    pub fn cross_shard_ratio(mut self, ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "cross_shard_ratio must be in [0, 1]"
        );
        self.cross_shard_ratio = ratio;
        self
    }

    /// The configured shard count.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The configured cross-shard transaction fraction.
    pub fn cross_ratio(&self) -> f64 {
        self.cross_shard_ratio
    }

    /// The [`ExecConfig`] matching this builder's loop knobs.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            concurrency: self.concurrency,
            prefetch: self.prefetch.clone(),
            group: self.group.clone(),
        }
    }

    /// The engine config this builder describes.
    pub fn db_config(&self) -> DbConfig {
        DbConfig {
            data_pages: self.data_pages,
            buffer_frames: self.buffer_frames,
            checkpoint_every: self.checkpoint_every,
            group_commit: self.group.max_txns.max(1),
            wal: self.wal.clone(),
            ..DbConfig::default()
        }
    }

    /// A loaded database over the legacy backend (bare block SSD,
    /// double-write journal).
    pub fn build_legacy(&self, ssd: SsdConfig) -> Database<LegacyBackend> {
        let be = LegacyBackend::new(ssd, self.data_pages, self.log_pages);
        let mut db = Database::new(self.db_config(), be);
        db.load();
        db
    }

    /// A loaded database over the composed block-layer stack.
    pub fn build_stack(&self, stack: StackConfig, ssd: SsdConfig) -> Database<BlockStackBackend> {
        let be = BlockStackBackend::new(stack, ssd, self.data_pages, self.log_pages);
        let mut db = Database::new(self.db_config(), be);
        db.load();
        db
    }

    /// A loaded [`ShardedDb`] over the composed block-layer stack: one
    /// SSD, one I/O stack, `shards()` engines — each bound to its own
    /// submission core, LBA stripe, and `data_pages / N` keyspace
    /// partition, with `buffer_frames / N` pool frames. At the default
    /// single shard this is `build_stack` wrapped in a one-element
    /// coordinator (the QD-1 × 1-shard identity anchor).
    pub fn build_sharded_stack(
        &self,
        mut stack: StackConfig,
        ssd: SsdConfig,
    ) -> ShardedDb<BlockStackBackend> {
        // every shard needs its own submission core
        stack.cores = stack.cores.max(self.shards as u32);
        let n = self.shards as u64;
        assert!(
            self.data_pages % n == 0,
            "data_pages {} must divide evenly over {} shards",
            self.data_pages,
            self.shards
        );
        let per_shard_pages = self.data_pages / n;
        let backends =
            BlockStackBackend::shards(stack, ssd, self.shards, per_shard_pages, self.log_pages);
        let cfg = DbConfig {
            data_pages: per_shard_pages,
            buffer_frames: (self.buffer_frames / self.shards).max(1),
            ..self.db_config()
        };
        let dbs = backends
            .into_iter()
            .map(|be| Database::new(cfg.clone(), be))
            .collect();
        let mut sharded = ShardedDb::new(dbs, self.data_pages);
        sharded.load();
        sharded
    }

    /// A loaded database over the cooperating-logs manager (nameless
    /// device, one collector in the stack).
    pub fn build_coop(&self, cfg: NamelessConfig) -> Database<CoopLogBackend> {
        let be = CoopLogBackend::new(cfg, self.data_pages, self.log_pages);
        let mut db = Database::new(self.db_config(), be);
        db.load();
        db
    }

    /// A loaded database over the vision backend (PCM DIMM for the
    /// synchronous path, flash atomic writes for data); `pcm_bytes` is
    /// the DIMM's log-region capacity.
    pub fn build_vision(&self, ssd: SsdConfig, pcm_bytes: u64) -> Database<VisionBackend> {
        let be = VisionBackend::new(ssd, self.data_pages, pcm_bytes);
        let mut db = Database::new(self.db_config(), be);
        db.load();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_bundles_the_knobs_that_must_agree() {
        let b = DbConfig::builder()
            .data_pages(256)
            .log_pages(64)
            .buffer_frames(32)
            .group(GroupCommitPolicy::batched(8))
            .concurrency(8)
            .wal(WalConfig::pcm());
        let exec = b.exec_config();
        assert_eq!(exec.concurrency, 8);
        assert_eq!(exec.group.max_txns, 8);
        let cfg = b.db_config();
        assert_eq!(cfg.group_commit, 8, "serialized path follows the policy");
        assert!(matches!(cfg.wal, WalConfig::Pcm(_)));
    }

    #[test]
    fn shard_knobs_default_to_the_single_executor_path() {
        let b = DbConfig::builder();
        assert_eq!(b.num_shards(), 1);
        assert_eq!(b.cross_ratio(), 0.0);
        let b = b.shards(4).cross_shard_ratio(0.25);
        assert_eq!(b.num_shards(), 4);
        assert_eq!(b.cross_ratio(), 0.25);
    }

    #[test]
    fn sharded_stack_partitions_keyspace_and_pool() {
        let b = DbConfig::builder()
            .data_pages(64)
            .log_pages(16)
            .buffer_frames(32)
            .shards(4);
        let sharded = b.build_sharded_stack(StackConfig::blk_mq(4), SsdConfig::modern());
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.data_pages(), 64);
        for s in 0..4 {
            assert_eq!(sharded.shard(s).stats().commits, 0);
        }
        // page → shard is the hash partition key % N
        assert_eq!(sharded.shard_of(5), 1);
        assert_eq!(sharded.shard_of(64 + 2), 2, "keyspace folds before hashing");
    }

    #[test]
    fn built_databases_are_loaded_and_route_the_wal() {
        let mut ssd = SsdConfig::modern();
        ssd.buffer.capacity_pages = 0;
        let b = DbConfig::builder()
            .data_pages(64)
            .log_pages(16)
            .buffer_frames(16);
        let mut flash = b.build_legacy(ssd.clone());
        assert_eq!(flash.wal_backend().label(), "flash-wal");
        let mut pcm = b.clone().wal(WalConfig::pcm()).build_legacy(ssd);
        assert_eq!(pcm.wal_backend().label(), "pcm-wal");
        // both are loaded and immediately executable
        flash.execute(&[(1, 0, true)], 128);
        pcm.execute(&[(1, 0, true)], 128);
        assert_eq!(flash.stats().commits, 1);
        assert_eq!(pcm.stats().commits, 1);
    }
}
