//! The persistence boundary: where the legacy and vision designs diverge.
//!
//! The storage manager above this trait is **identical** in both designs;
//! only the routing of its traffic classes changes:
//!
//! | traffic               | class        | Legacy                     | Vision (§3 P1/P2)            |
//! |-----------------------|--------------|----------------------------|------------------------------|
//! | buffer steal          | synchronous  | flash SSD page write       | PCM staging persist          |
//! | data write-back       | asynchronous | flash SSD page write       | flash SSD page write         |
//! | checkpoint batch      | asynchronous | double-write journal (2×)  | device atomic write (1×)     |
//! | page free             | —            | nothing (device unaware)   | TRIM                         |
//!
//! The *synchronous log path* (force / truncate / recovery scan) is no
//! longer here: it lives behind [`WalBackend`](crate::walbackend) — page
//! backends do page I/O only, and [`PersistenceBackend::make_wal`] hands
//! the engine a WAL port onto whatever medium the design routes log
//! durability to (the same flash device for legacy, a PCM DIMM for the
//! vision).

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use requiem_iface::atomic::{double_write_journal, ExtendedSsd};
use requiem_pcm::{PcmDimm, PcmTiming};
use requiem_sim::time::SimTime;
use requiem_sim::IoStatus;
use requiem_ssd::{IoClass, IoRequest, Lpn, QueuePair, Ssd, SsdConfig};

use crate::page::{PageId, PAGE_SIZE};
use crate::walbackend::{BareSsdLog, FlashWal, PcmWal, WalBackend};

/// Host tag identifying one batched read between
/// [`PersistenceBackend::submit_reads`] and [`PersistenceBackend::poll`].
pub use requiem_sim::cmd::CommandId as CommandTag;

/// One batched-read completion surfaced by [`PersistenceBackend::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRead {
    /// The tag [`PersistenceBackend::submit_reads`] returned for it.
    pub tag: CommandTag,
    /// The page that was read.
    pub page: PageId,
    /// Device completion instant (may exceed the poll instant when the
    /// host-side completion path extends past it).
    pub done: SimTime,
    /// Typed media status, exactly as for
    /// [`PersistenceBackend::page_read`].
    pub status: IoStatus,
}

/// Combine two statuses into the one the caller must act on: data loss
/// dominates a refusal, a refusal dominates a recovered read, and
/// recovered reads accumulate their step counts. Thin name for
/// [`IoStatus::combine`], kept because every backend folds statuses.
pub fn worse_status(a: IoStatus, b: IoStatus) -> IoStatus {
    a.combine(b)
}

/// Parking space backing the trait's **default** (serialized) batched-read
/// shim: completions produced synchronously by `page_read` wait here until
/// the next [`PersistenceBackend::poll`]. Backends that override the
/// batched API never need one; backends that rely on the defaults must
/// store a `ReadShim` and return it from
/// [`PersistenceBackend::read_shim`].
#[derive(Debug, Default)]
pub struct ReadShim {
    next_tag: u64,
    pending: Vec<PageRead>,
}

impl ReadShim {
    /// Park one completed read; returns its tag.
    pub fn park(&mut self, page: PageId, done: SimTime, status: IoStatus) -> CommandTag {
        self.next_tag += 1;
        let tag = CommandTag(self.next_tag);
        self.pending.push(PageRead {
            tag,
            page,
            done,
            status,
        });
        tag
    }

    /// Drain completions with `done <= now`, earliest first (ties in
    /// park order — deterministic).
    pub fn drain_ready(&mut self, now: SimTime) -> Vec<PageRead> {
        let mut ready: Vec<PageRead> = Vec::new();
        self.pending.retain(|r| {
            if r.done <= now {
                ready.push(*r);
                false
            } else {
                true
            }
        });
        ready.sort_by_key(|r| (r.done, r.tag.0));
        ready
    }

    /// Earliest parked completion instant.
    pub fn next_done(&self) -> Option<SimTime> {
        self.pending.iter().map(|r| r.done).min()
    }

    /// Parked completions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Page I/O issued by a backend, by class. Log-path counters live in
/// [`WalStats`](crate::walbackend::WalStats) since the API split.
#[derive(Debug, Default, Clone)]
pub struct BackendStats {
    /// Data page writes (async write-back).
    pub page_writes: u64,
    /// Synchronous steal writes.
    pub steal_writes: u64,
    /// Data page reads.
    pub page_reads: u64,
    /// Pages freed (trimmed where supported).
    pub frees: u64,
    /// Checkpoint batches.
    pub batches: u64,
    /// Page images the manager *meant* to persist: data page writes,
    /// including batch members. Excludes interface-imposed copies — the
    /// double-write journal's first phase is not a logical write, it is
    /// the block interface's tax. Together with the WAL's
    /// `logical_writes` this is the denominator of end-to-end write
    /// amplification (`flash programs / logical_writes`).
    pub logical_writes: u64,
}

/// The *page* persistence service a storage manager runs on. Log
/// durability is not a side effect of this trait: the engine obtains a
/// [`WalBackend`] from [`PersistenceBackend::make_wal`] and talks to it
/// directly.
pub trait PersistenceBackend {
    /// Build the WAL backend this design routes synchronous log
    /// persistence to, sharing the backend's device where the design
    /// calls for it (the stacked-log pathology only exists when log and
    /// data compete for the same flash). Called once by the engine at
    /// construction.
    fn make_wal(&mut self) -> Box<dyn WalBackend>;

    /// Asynchronous write-back of one data page; returns its completion
    /// (the caller does not have to wait).
    fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime;

    /// Synchronous steal write of a dirty page under memory pressure;
    /// returns the instant the evicting request may proceed.
    fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime;

    /// Synchronous read of one data page. Returns the completion instant
    /// and the typed media status: [`IoStatus::Unrecoverable`] means the
    /// device exhausted its whole recovery pipeline (retry ladder, ECC
    /// escalation, parity rebuild) and the page image is LOST — the
    /// engine above must reconstruct it from the durable log or surface
    /// the error. [`IoStatus::RecoveredAfterRetry`] means the bytes are
    /// good but the latency already includes the device's recovery work.
    fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, IoStatus);

    /// Write a batch of pages that must be torn-write safe (checkpoint
    /// flush). Returns the batch completion.
    fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime;

    /// Tell the device a page's contents are dead.
    fn free_page(&mut self, now: SimTime, page: PageId);

    /// Traffic statistics.
    fn stats(&self) -> &BackendStats;

    /// Short label for reports.
    fn label(&self) -> &'static str;

    /// Attach a cross-layer [`Probe`](requiem_sim::Probe) so the devices
    /// underneath decompose the storage manager's I/O into spans.
    /// Backends without an instrumented device ignore it.
    fn attach_probe(&mut self, probe: requiem_sim::Probe) {
        let _ = probe;
    }

    /// Switch the underlying device to multi-queue submission semantics:
    /// commands from different submitters may arrive out of global time
    /// order (NVMe only orders within one submission queue). Called by
    /// the sharded coordinator on every shard backend; backends without
    /// a device-level submit-order check ignore it.
    fn relax_submit_order(&mut self) {}

    // -- batched asynchronous read path (completion-driven engine) ------
    //
    // The methods below are the queue-pair form of `page_read`: submit a
    // batch without waiting, reap completions out of submission order.
    // Every backend in this crate overrides them with a genuinely
    // overlapped implementation (QueuePair / IoStack); the provided
    // defaults are a *serialized* shim over `page_read` so existing
    // synchronous backends keep working unchanged — each read runs to
    // completion at submit time and its completion is parked in the
    // backend's [`ReadShim`] until the next poll.

    /// Scratch state backing the default serialized shim. Backends that
    /// override the batched API leave this at `None`; backends that rely
    /// on the default `submit_reads`/`poll` must store a [`ReadShim`]
    /// and return it here.
    fn read_shim(&mut self) -> Option<&mut ReadShim> {
        None
    }

    /// Submit a batch of data-page reads without waiting for any of
    /// them; returns one tag per page, in order. Completions surface
    /// through [`PersistenceBackend::poll`].
    ///
    /// # Panics
    /// The default shim panics if the backend provides no [`ReadShim`]
    /// (completions would be silently lost otherwise).
    fn submit_reads(&mut self, now: SimTime, pages: &[PageId]) -> Vec<CommandTag> {
        // default shim: serialized — each read completes before the next
        // is issued, so there is no overlap, but the completion-driven
        // engine above still works correctly.
        let reads: Vec<(PageId, SimTime, IoStatus)> = pages
            .iter()
            .map(|&p| {
                let (done, status) = self.page_read(now, p);
                (p, done, status)
            })
            .collect();
        let shim = self.read_shim().expect(
            "default batched-read shim needs a ReadShim (override read_shim or the batched API)",
        );
        reads
            .into_iter()
            .map(|(p, done, status)| shim.park(p, done, status))
            .collect()
    }

    /// Reap batched-read completions whose device finish is `<= now`,
    /// earliest finish first. A returned [`PageRead::done`] may exceed
    /// `now` when the backend charges host-side completion work past the
    /// poll instant — the caller processes each read at its own `done`.
    fn poll(&mut self, now: SimTime) -> Vec<PageRead> {
        match self.read_shim() {
            Some(shim) => shim.drain_ready(now),
            None => Vec::new(),
        }
    }

    /// Finish instant of the earliest batched read still in flight
    /// (`None` when nothing is outstanding) — the completion-driven
    /// engine's next wake-up time.
    fn next_read_done(&mut self) -> Option<SimTime> {
        self.read_shim().and_then(|s| s.next_done())
    }

    /// Batched reads submitted but not yet reaped.
    fn reads_in_flight(&mut self) -> usize {
        self.read_shim().map(|s| s.len()).unwrap_or(0)
    }

    /// Configure the device-side in-flight window (queue depth) used by
    /// the batched read path. Call only while no batched reads are in
    /// flight. The serialized default shim ignores it (its depth is
    /// effectively 1).
    fn set_read_window(&mut self, depth: usize) {
        let _ = depth;
    }
}

// ---------------------------------------------------------------------
// Legacy: everything through the block interface of one flash SSD
// ---------------------------------------------------------------------

/// The conservative design: one flash SSD behind the block interface
/// carries the log, the data, and a double-write journal.
pub struct LegacyBackend {
    /// Shared with the WAL port ([`make_wal`](PersistenceBackend::make_wal)):
    /// log forces land on the same device as the page traffic.
    ssd: Rc<RefCell<Ssd>>,
    /// LBA layout.
    log_pages: u64,
    data_base: u64,
    journal_base: u64,
    data_pages: u64,
    /// Use TRIM on frees (off by default: legacy stacks rarely did).
    pub use_trim: bool,
    stats: BackendStats,
    /// Queue pair for the batched read path (depth set by
    /// [`PersistenceBackend::set_read_window`]).
    qp: QueuePair,
    /// Reads the device refused outright, completed at their submit
    /// instant with [`IoStatus::Rejected`].
    rejects: Vec<PageRead>,
    /// Tag namespace for batched reads (pre-assigned so rejected
    /// commands keep a stable tag).
    next_tag: u64,
}

impl std::fmt::Debug for LegacyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LegacyBackend")
            .field("stats", &self.stats)
            .finish()
    }
}

impl LegacyBackend {
    /// Lay out `data_pages` of data, `log_pages` of circular log, and an
    /// equal-size journal area on one device.
    ///
    /// # Panics
    /// Panics if the device is too small for the layout.
    pub fn new(cfg: SsdConfig, data_pages: u64, log_pages: u64) -> Self {
        let ssd = Ssd::new(cfg);
        let exported = ssd.capacity().exported_pages;
        let needed = log_pages + 2 * data_pages;
        assert!(
            needed <= exported,
            "device too small: need {needed} pages, exported {exported}"
        );
        LegacyBackend {
            ssd: Rc::new(RefCell::new(ssd)),
            log_pages,
            data_base: log_pages,
            journal_base: log_pages + data_pages,
            data_pages,
            use_trim: false,
            stats: BackendStats::default(),
            qp: QueuePair::new(1),
            rejects: Vec::new(),
            next_tag: 0,
        }
    }

    /// The underlying device (for write-amplification reporting).
    pub fn ssd(&self) -> Ref<'_, Ssd> {
        self.ssd.borrow()
    }

    /// First LBA of the data region (the static page → LBA arithmetic).
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    fn data_lpn(&self, page: PageId) -> Lpn {
        assert!(page.0 < self.data_pages, "page id beyond data region");
        Lpn(self.data_base + page.0)
    }
}

impl PersistenceBackend for LegacyBackend {
    fn make_wal(&mut self) -> Box<dyn WalBackend> {
        // the log shares the device with the page traffic: the classic
        // small-synchronous-write problem, and the FTL drags dead WAL
        // through GC until truncation trims it
        Box::new(FlashWal::new(
            BareSsdLog::new(Rc::clone(&self.ssd), self.log_pages),
            self.log_pages,
        ))
    }

    fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.page_writes += 1;
        self.stats.logical_writes += 1;
        let lpn = self.data_lpn(page);
        // write-back: nobody waits on this completion
        self.ssd
            .borrow_mut()
            .io(now, IoRequest::write(lpn.0).class(IoClass::Background))
            .expect("data write failed")
            .done
    }

    fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.steal_writes += 1;
        self.stats.logical_writes += 1;
        let lpn = self.data_lpn(page);
        self.ssd
            .borrow_mut()
            .io(now, IoRequest::write(lpn.0))
            .expect("steal write failed")
            .done
    }

    fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, IoStatus) {
        self.stats.page_reads += 1;
        let lpn = self.data_lpn(page);
        // a refused command (worn-out device, protocol violation) surfaces
        // as a typed Rejected status instead of tearing the engine down
        match self.ssd.borrow_mut().io(now, IoRequest::read(lpn.0)) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime {
        if pages.is_empty() {
            return now;
        }
        self.stats.batches += 1;
        self.stats.page_writes += pages.len() as u64;
        self.stats.logical_writes += pages.len() as u64;
        // torn-write safety through the block interface = double-write
        // journal: journal copies, barrier, then in-place writes
        let lpns: Vec<Lpn> = pages.iter().map(|&p| self.data_lpn(p)).collect();
        double_write_journal(
            &mut self.ssd.borrow_mut(),
            now,
            &lpns,
            Lpn(self.journal_base),
        )
        .expect("journal batch failed")
        .done
    }

    fn free_page(&mut self, now: SimTime, page: PageId) {
        self.stats.frees += 1;
        if self.use_trim {
            let lpn = self.data_lpn(page);
            self.ssd
                .borrow_mut()
                .io(now, IoRequest::trim(lpn.0).class(IoClass::Background))
                .expect("trim failed");
        }
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "legacy-block"
    }

    fn attach_probe(&mut self, probe: requiem_sim::Probe) {
        self.ssd.borrow_mut().attach_probe(probe);
    }

    fn relax_submit_order(&mut self) {
        self.ssd.borrow_mut().relax_submit_order();
    }

    fn submit_reads(&mut self, now: SimTime, pages: &[PageId]) -> Vec<CommandTag> {
        pages
            .iter()
            .map(|&p| {
                self.stats.page_reads += 1;
                self.next_tag += 1;
                let tag = CommandTag(self.next_tag);
                let lpn = self.data_lpn(p);
                let req = IoRequest::read(lpn.0).tag(tag);
                if self
                    .qp
                    .submit(&mut self.ssd.borrow_mut(), now, req)
                    .is_err()
                {
                    self.rejects.push(PageRead {
                        tag,
                        page: p,
                        done: now,
                        status: IoStatus::Rejected,
                    });
                }
                tag
            })
            .collect()
    }

    fn poll(&mut self, now: SimTime) -> Vec<PageRead> {
        let data_base = self.data_base;
        let mut out: Vec<PageRead> = std::mem::take(&mut self.rejects);
        out.extend(self.qp.poll(now).into_iter().map(|c| PageRead {
            tag: c.tag,
            page: PageId(c.lba - data_base),
            done: c.done,
            status: c.status,
        }));
        out
    }

    fn next_read_done(&mut self) -> Option<SimTime> {
        let r = self.rejects.iter().map(|r| r.done).min();
        match (r, self.qp.next_done()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn reads_in_flight(&mut self) -> usize {
        self.rejects.len() + self.qp.pending()
    }

    fn set_read_window(&mut self, depth: usize) {
        debug_assert!(
            self.qp.pending() == 0 && self.rejects.is_empty(),
            "window change with reads in flight"
        );
        self.qp = QueuePair::new(depth.max(1));
    }
}

// ---------------------------------------------------------------------
// Vision: PCM for synchronous persistence, extended flash for the rest
// ---------------------------------------------------------------------

/// The paper's design: log and steals go to byte-addressable PCM on the
/// memory bus; data traffic goes to flash through an extended interface
/// (atomic batches instead of a journal, TRIM on frees).
pub struct VisionBackend {
    /// Shared with the PCM WAL ([`make_wal`](PersistenceBackend::make_wal)):
    /// one DIMM carries the log region and the steal-staging region.
    pcm: Rc<RefCell<PcmDimm>>,
    flash: ExtendedSsd,
    data_pages: u64,
    /// Circular log region in PCM (bytes), handed to the WAL.
    log_capacity: u64,
    /// Staging region base for steal writes (after the log region).
    staging_base: u64,
    staging_slots: u64,
    staging_next: u64,
    stats: BackendStats,
    /// Queue pair for the batched read path (over the inner flash SSD).
    qp: QueuePair,
    /// Refused reads, completed at submit with [`IoStatus::Rejected`].
    rejects: Vec<PageRead>,
    /// Tag namespace for batched reads.
    next_tag: u64,
}

impl std::fmt::Debug for VisionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VisionBackend")
            .field("stats", &self.stats)
            .finish()
    }
}

impl VisionBackend {
    /// `pcm_bytes` of PCM split into a log region (¾) and a steal-staging
    /// region (¼); data pages on the flash device.
    ///
    /// # Panics
    /// Panics if the flash device cannot hold `data_pages`.
    pub fn new(cfg: SsdConfig, data_pages: u64, pcm_bytes: u64) -> Self {
        let flash = ExtendedSsd::new(Ssd::new(cfg));
        assert!(
            data_pages <= flash.inner().capacity().exported_pages,
            "flash device too small"
        );
        let log_capacity = pcm_bytes * 3 / 4;
        let staging_bytes = pcm_bytes - log_capacity;
        VisionBackend {
            pcm: Rc::new(RefCell::new(PcmDimm::new(
                pcm_bytes,
                PcmTiming::gen1(),
                100,
            ))),
            flash,
            data_pages,
            log_capacity,
            staging_base: log_capacity,
            staging_slots: staging_bytes / PAGE_SIZE as u64,
            staging_next: 0,
            stats: BackendStats::default(),
            qp: QueuePair::new(1),
            rejects: Vec::new(),
            next_tag: 0,
        }
    }

    /// The PCM module (for latency and wear reporting).
    pub fn pcm(&self) -> Ref<'_, PcmDimm> {
        self.pcm.borrow()
    }

    /// The flash device (for write-amplification reporting).
    pub fn flash(&self) -> &ExtendedSsd {
        &self.flash
    }

    fn data_lpn(&self, page: PageId) -> Lpn {
        assert!(page.0 < self.data_pages, "page id beyond data region");
        Lpn(page.0)
    }
}

impl PersistenceBackend for VisionBackend {
    fn make_wal(&mut self) -> Box<dyn WalBackend> {
        // P1: synchronous log persistence goes to the memory bus. The
        // WAL owns the DIMM's log region; steals keep staging above it.
        Box::new(PcmWal::with_dimm(
            Rc::clone(&self.pcm),
            0,
            self.log_capacity,
        ))
    }

    fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.page_writes += 1;
        self.stats.logical_writes += 1;
        let lpn = self.data_lpn(page);
        self.flash.write(now, lpn).expect("data write failed").done
    }

    fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.steal_writes += 1;
        self.stats.logical_writes += 1;
        // stage the dirty page in PCM (synchronous, ~20 µs for 4 KiB)…
        let slot = self.staging_next % self.staging_slots.max(1);
        self.staging_next += 1;
        let offset = self.staging_base + slot * PAGE_SIZE as u64;
        let mut pcm = self.pcm.borrow_mut();
        let durable = pcm.persist(now, offset, &[0u8; 64]); // header line
        let durable = pcm.persist(durable, offset, &vec![0xEEu8; PAGE_SIZE - 64]);
        drop(pcm);
        // …then write back to flash lazily (does not block the caller)
        let lpn = self.data_lpn(page);
        let _bg = self.flash.write(durable, lpn).expect("write-back failed");
        durable
    }

    fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, IoStatus) {
        self.stats.page_reads += 1;
        let lpn = self.data_lpn(page);
        match self.flash.read(now, lpn) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime {
        if pages.is_empty() {
            return now;
        }
        self.stats.batches += 1;
        self.stats.page_writes += pages.len() as u64;
        self.stats.logical_writes += pages.len() as u64;
        // torn-write safety is a device guarantee: atomic batch, 1× I/O
        let lpns: Vec<Lpn> = pages.iter().map(|&p| self.data_lpn(p)).collect();
        self.flash
            .write_atomic(now, &lpns)
            .expect("atomic batch failed")
            .done
    }

    fn free_page(&mut self, now: SimTime, page: PageId) {
        self.stats.frees += 1;
        let lpn = self.data_lpn(page);
        self.flash.trim(now, lpn).expect("trim failed");
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "vision-split"
    }

    fn attach_probe(&mut self, probe: requiem_sim::Probe) {
        self.flash.inner_mut().attach_probe(probe);
    }

    fn submit_reads(&mut self, now: SimTime, pages: &[PageId]) -> Vec<CommandTag> {
        pages
            .iter()
            .map(|&p| {
                self.stats.page_reads += 1;
                self.next_tag += 1;
                let tag = CommandTag(self.next_tag);
                let lpn = self.data_lpn(p);
                let req = IoRequest::read(lpn.0).tag(tag);
                if self.qp.submit(self.flash.inner_mut(), now, req).is_err() {
                    self.rejects.push(PageRead {
                        tag,
                        page: p,
                        done: now,
                        status: IoStatus::Rejected,
                    });
                }
                tag
            })
            .collect()
    }

    fn poll(&mut self, now: SimTime) -> Vec<PageRead> {
        let mut out: Vec<PageRead> = std::mem::take(&mut self.rejects);
        out.extend(self.qp.poll(now).into_iter().map(|c| PageRead {
            tag: c.tag,
            page: PageId(c.lba),
            done: c.done,
            status: c.status,
        }));
        out
    }

    fn next_read_done(&mut self) -> Option<SimTime> {
        let r = self.rejects.iter().map(|r| r.done).min();
        match (r, self.qp.next_done()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn reads_in_flight(&mut self) -> usize {
        self.rejects.len() + self.qp.pending()
    }

    fn set_read_window(&mut self, depth: usize) {
        debug_assert!(
            self.qp.pending() == 0 && self.rejects.is_empty(),
            "window change with reads in flight"
        );
        self.qp = QueuePair::new(depth.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Lsn;
    use requiem_sim::time::SimDuration;

    fn small_cfg() -> SsdConfig {
        // conservative legacy device: write cache disabled (a common DBA
        // setting when cache durability is not trusted); the buffered
        // variant is explored as an ablation in experiment E7
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        cfg
    }

    fn legacy() -> LegacyBackend {
        LegacyBackend::new(small_cfg(), 1024, 64)
    }

    fn vision() -> VisionBackend {
        VisionBackend::new(small_cfg(), 1024, 1 << 20)
    }

    /// Fill data and WAL to ~56% of one LUN's physical capacity,
    /// checkpoint (optionally truncating), then churn the data pages
    /// with uniform random overwrites. Without truncation the
    /// dead-in-WAL segments stay FTL-valid — they shrink the effective
    /// spare area and the collector drags them along on every pass;
    /// with truncation they are reclaimed for free. Returns
    /// `(gc_pages_moved, host_writes, log_trims)`.
    fn log_churn(truncate: bool) -> (u64, u64, u64) {
        let mut cfg = small_cfg();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 1;
        let mut b = LegacyBackend::new(cfg, 600, 550);
        let mut w = b.make_wal();
        let mut t = SimTime::ZERO;
        for p in 0..600u64 {
            t = b.page_write(t, PageId(p));
        }
        for i in 0..700u64 {
            w.append(Lsn(i + 1), PAGE_SIZE as u32);
            t = w.force(t, Lsn(i + 1)).done;
        }
        if truncate {
            // the checkpoint horizon sits just below the tail: all but
            // the newest segments are outside redo and die in bulk
            let horizon = w.stats().log_bytes.saturating_sub(2 * PAGE_SIZE as u64);
            w.truncate(t, horizon);
        }
        let mut x = 42u64;
        for _ in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t = b.page_write(t, PageId(x % 600));
        }
        let ssd = b.ssd();
        let m = ssd.metrics();
        (m.gc_pages_moved, m.host_writes, w.stats().log_trims)
    }

    #[test]
    fn checkpoint_truncation_reclaims_log_without_host_copy() {
        // satellite contract: the block-backed path honors the trim
        // contract too — truncated WAL segments are reclaimed by the
        // device's collector for free, not carried as live data, and the
        // host never writes a byte to make that happen
        let (moved_plain, writes_plain, trims_plain) = log_churn(false);
        let (moved_trim, writes_trim, trims) = log_churn(true);
        assert_eq!(trims_plain, 0);
        assert!(trims > 0, "truncation sent trims");
        assert_eq!(
            writes_plain, writes_trim,
            "reclaim costs zero host copies — the command stream is unchanged"
        );
        assert!(
            moved_trim < moved_plain,
            "collector stops copying dead WAL: moved {moved_trim} vs {moved_plain}"
        );
    }

    #[test]
    fn log_force_latency_gap() {
        // the P1 headline: a 256-byte commit force is ~3 orders of
        // magnitude faster on the PCM path
        let mut l = legacy();
        let mut v = vision();
        let mut wl = l.make_wal();
        let mut wv = v.make_wal();
        wl.append(Lsn(1), 256);
        wv.append(Lsn(1), 256);
        let tl = wl.force(SimTime::ZERO, Lsn(1)).done.since(SimTime::ZERO);
        let tv = wv.force(SimTime::ZERO, Lsn(1)).done.since(SimTime::ZERO);
        assert!(
            tl.as_nanos() > 10 * tv.as_nanos(),
            "legacy {tl} vs vision {tv}"
        );
        assert!(tv < SimDuration::from_micros(5), "vision force {tv}");
    }

    #[test]
    fn legacy_wal_spills_onto_the_shared_device() {
        let mut l = legacy();
        let mut w = l.make_wal();
        let before = l.ssd().metrics().host_writes;
        // 10 KiB of log = 3 page writes, visible on the *backend's* SSD:
        // the WAL port shares the device with the page traffic
        w.append(Lsn(1), 10 * 1024);
        w.force(SimTime::ZERO, Lsn(1));
        let after = l.ssd().metrics().host_writes;
        assert_eq!(after - before, 3);
    }

    #[test]
    fn batch_io_volume_2x_vs_1x() {
        let mut l = legacy();
        let mut v = vision();
        let pages: Vec<PageId> = (0..8).map(PageId).collect();
        l.page_batch(SimTime::ZERO, &pages);
        v.page_batch(SimTime::ZERO, &pages);
        assert_eq!(l.ssd().metrics().host_writes, 16, "double-write journal");
        assert_eq!(
            v.flash().inner().metrics().host_writes,
            8,
            "atomic batch writes once"
        );
    }

    #[test]
    fn steal_blocks_only_for_pcm_time_on_vision() {
        let mut l = legacy();
        let mut v = vision();
        let tl = l.steal_write(SimTime::ZERO, PageId(1)).since(SimTime::ZERO);
        let tv = v.steal_write(SimTime::ZERO, PageId(1)).since(SimTime::ZERO);
        assert!(
            tv.as_nanos() * 2 < tl.as_nanos(),
            "vision steal {tv} should be well under legacy {tl}"
        );
        // and the flash write-back still happened in the background
        assert_eq!(v.flash().inner().metrics().host_writes, 1);
    }

    #[test]
    fn frees_trim_on_vision_only_by_default() {
        let mut l = legacy();
        let mut v = vision();
        l.free_page(SimTime::ZERO, PageId(3));
        v.free_page(SimTime::ZERO, PageId(3));
        assert_eq!(l.ssd().metrics().host_trims, 0);
        assert_eq!(v.flash().inner().metrics().host_trims, 1);
        assert_eq!(l.stats().frees, 1);
        assert_eq!(v.stats().frees, 1);
    }

    #[test]
    fn reads_work_on_both() {
        let mut l = legacy();
        let mut v = vision();
        let t1 = l.page_write(SimTime::ZERO, PageId(0));
        let (t2, st) = l.page_read(t1, PageId(0));
        assert!(t2 > t1);
        assert_eq!(st, IoStatus::Ok);
        let t1 = v.page_write(SimTime::ZERO, PageId(0));
        let (t2, st) = v.page_read(t1, PageId(0));
        assert!(t2 > t1);
        assert_eq!(st, IoStatus::Ok);
        assert_eq!(l.stats().page_reads, 1);
        assert_eq!(v.stats().page_reads, 1);
    }

    #[test]
    fn wal_stats_accumulate_on_the_vision_path() {
        let mut v = vision();
        let mut w = v.make_wal();
        w.append(Lsn(1), 100);
        let f = w.force(SimTime::ZERO, Lsn(1));
        w.append(Lsn(2), 100);
        w.force(f.done, Lsn(2));
        assert_eq!(w.stats().log_forces, 2);
        assert_eq!(w.stats().log_bytes, 200);
        assert_eq!(w.label(), "pcm-wal");
        // the wal's persists land on the backend's shared DIMM
        assert_eq!(v.pcm().persisted_bytes(), 200);
    }
}
