//! The database engine: transactions over the buffer pool, WAL, and a
//! persistence backend — plus crash/recovery.
//!
//! The engine is deliberately identical for both backends; every design
//! difference lives below [`PersistenceBackend`]. Virtual time advances
//! only on synchronous waits: page-read misses, buffer steals, and commit
//! log forces. Data write-backs and checkpoints are charged to the device
//! timeline but do not block the engine (they interfere with later reads
//! through device queueing — the paper's GC/IO interference made visible).
//!
//! Recovery is commit-consistent redo: on restart, replay the durable
//! log's updates of committed transactions onto the durable page images,
//! LSN-guarded for idempotence.

use std::collections::{BTreeMap, BTreeSet};

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::Histogram;

use crate::backend::PersistenceBackend;
use crate::buffer::{BufferPool, EvictOutcome};
use crate::page::{PageId, SlottedPage};
use crate::wal::{LogRecord, Lsn, Wal};
use crate::walbackend::{PcmWal, WalBackend, WalConfig};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer pool frames.
    pub buffer_frames: usize,
    /// Data pages in the database.
    pub data_pages: u64,
    /// Fixed record slots per page (pre-formatted at load).
    pub slots_per_page: u16,
    /// Fixed record size in bytes.
    pub record_size: usize,
    /// Checkpoint every N transactions (0 = never).
    pub checkpoint_every: u64,
    /// Group commit: force the log once every N commits (1 = force every
    /// commit). Commits between forces complete immediately but are NOT
    /// durable until the group force — a crash loses them (recovery
    /// honestly reflects this).
    pub group_commit: u32,
    /// Which medium carries the WAL: [`WalConfig::Flash`] asks the page
    /// backend for a port onto its own device
    /// ([`PersistenceBackend::make_wal`] — flash for the block backends,
    /// the shared DIMM for the vision backend), [`WalConfig::Pcm`]
    /// routes the synchronous-persistence path to a standalone
    /// byte-addressable PCM DIMM (the paper's P1) while page data keeps
    /// streaming to flash.
    pub wal: WalConfig,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_frames: 128,
            data_pages: 1024,
            slots_per_page: 16,
            record_size: 100,
            checkpoint_every: 0,
            group_commit: 1,
            wal: WalConfig::Flash,
        }
    }
}

/// Result of one executed transaction.
#[derive(Debug, Clone, Copy)]
pub struct TxnOutcome {
    /// The transaction id.
    pub txn: u64,
    /// End-to-end latency (reads + steals + commit force).
    pub latency: SimDuration,
    /// The commit force's share.
    pub commit_force: SimDuration,
}

/// Aggregate engine statistics.
///
/// `PartialEq`/`Eq` so the QD-1 identity (experiments, proptests) can
/// assert the whole stall ledger matches at once.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Transactions committed.
    pub commits: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Time stalled on page reads.
    pub read_stall: SimDuration,
    /// Time stalled on buffer steals.
    pub steal_stall: SimDuration,
    /// Time stalled on commit forces.
    pub commit_stall: SimDuration,
    /// Page reads the device served only after running its recovery
    /// pipeline (retry ladder / ECC escalation / parity rebuild): the
    /// bytes were good, but the read stall already includes the
    /// recovery latency.
    pub media_recoveries: u64,
    /// Page reads the device could NOT recover: the engine rebuilt the
    /// page image from the durable log (media-failure redo).
    pub media_failures: u64,
    /// Log forces whose combined device status was a failure. The stall
    /// was still paid and the in-memory ledger advances (this simulation
    /// models timing and status, not host-RAM data loss) — the counter
    /// makes the broken durability promise visible.
    pub wal_force_failures: u64,
}

/// The storage engine over a persistence backend.
///
/// Fields are `pub(crate)` so the completion-driven executor
/// ([`crate::exec`]) can drive the same state machine without an
/// intermediate accessor layer — the two execution modes must share
/// every byte of engine state for the QD-1 identity to hold.
pub struct Database<B: PersistenceBackend> {
    pub(crate) cfg: DbConfig,
    pub(crate) backend: B,
    /// The synchronous-persistence path: log durability is a service of
    /// its own, no longer a side effect of the page backend. Built from
    /// [`DbConfig::wal`] at construction.
    pub(crate) wal_dev: Box<dyn WalBackend>,
    pub(crate) pool: BufferPool,
    pub(crate) wal: Wal,
    pub(crate) now: SimTime,
    /// Host-side model of the page images that are durable on the device
    /// (updated when a page write completes; the devices themselves model
    /// timing and layout, the engine models the bytes).
    pub(crate) durable: BTreeMap<PageId, SlottedPage>,
    /// Writes in flight: (completion time, page id, image). Promoted to
    /// `durable` once `now` passes the completion.
    pub(crate) in_flight: Vec<(SimTime, PageId, SlottedPage)>,
    pub(crate) txn_latency: Histogram,
    pub(crate) commit_latency: Histogram,
    pub(crate) stats: EngineStats,
    pub(crate) next_txn: u64,
    pub(crate) loaded: bool,
    /// Commits since the last group force. The bytes themselves are
    /// enlisted in the [`WalBackend`]'s pending ledger as they happen.
    unforced_commits: u32,
    /// Engine-level probe: commit spans (group wait vs shared force) are
    /// emitted here; a clone is forwarded to the backend's devices.
    pub(crate) probe: requiem_sim::Probe,
}

impl<B: PersistenceBackend> std::fmt::Debug for Database<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("backend", &self.backend.label())
            .field("now", &self.now)
            .field("commits", &self.stats.commits)
            .finish()
    }
}

impl<B: PersistenceBackend> Database<B> {
    /// Create an engine over `backend`. [`DbConfig::wal`] picks the
    /// synchronous-persistence path: `Flash` asks the backend for a port
    /// onto its own device, `Pcm` builds a standalone DIMM-backed WAL.
    pub fn new(cfg: DbConfig, mut backend: B) -> Self {
        let wal_dev: Box<dyn WalBackend> = match &cfg.wal {
            WalConfig::Flash => backend.make_wal(),
            WalConfig::Pcm(pcfg) => Box::new(PcmWal::new(pcfg)),
        };
        Database {
            pool: BufferPool::new(cfg.buffer_frames),
            wal: Wal::new(),
            now: SimTime::ZERO,
            durable: BTreeMap::new(),
            in_flight: Vec::new(),
            txn_latency: Histogram::new(),
            commit_latency: Histogram::new(),
            stats: EngineStats::default(),
            next_txn: 1,
            cfg,
            backend,
            wal_dev,
            loaded: false,
            unforced_commits: 0,
            probe: requiem_sim::Probe::disabled(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The synchronous-persistence path (WAL traffic stats, wear).
    pub fn wal_backend(&self) -> &dyn WalBackend {
        &*self.wal_dev
    }

    /// Count a completed force's status into the engine ledger.
    pub(crate) fn note_force(&mut self, status: requiem_sim::IoStatus) {
        if !status.is_success() {
            self.stats.wal_force_failures += 1;
        }
    }

    /// Attach a cross-layer [`Probe`](requiem_sim::Probe) to the backend's
    /// devices so storage-manager I/O decomposes into per-layer spans.
    /// The engine keeps a clone for its own commit-path spans (group
    /// wait vs shared force, emitted by [`Self::run_concurrent`]).
    pub fn attach_probe(&mut self, probe: requiem_sim::Probe) {
        self.probe = probe.clone();
        self.backend.attach_probe(probe);
    }

    /// The write-ahead log (read-only: for recovery-order assertions).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Transaction latency distribution.
    pub fn txn_latency(&self) -> &Histogram {
        &self.txn_latency
    }

    /// Commit-force latency distribution.
    pub fn commit_latency(&self) -> &Histogram {
        &self.commit_latency
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Promote completed in-flight writes to the durable image set.
    pub(crate) fn settle_in_flight(&mut self) {
        let now = self.now;
        let mut settled = Vec::new();
        self.in_flight.retain(|(done, page, image)| {
            if *done <= now {
                settled.push((*page, image.clone()));
                false
            } else {
                true
            }
        });
        for (page, image) in settled {
            self.durable.insert(page, image);
        }
    }

    pub(crate) fn fresh_formatted_page(&self) -> SlottedPage {
        let mut p = SlottedPage::new();
        let zeros = vec![0u8; self.cfg.record_size];
        for _ in 0..self.cfg.slots_per_page {
            p.insert(&zeros)
                .expect("slots_per_page × record_size must fit a page");
        }
        p
    }

    /// Bulk-load: pre-format every data page with fixed slots, write all
    /// pages out, and checkpoint. Must be called once before transactions.
    pub fn load(&mut self) {
        assert!(!self.loaded, "load() must run exactly once");
        for pid in 0..self.cfg.data_pages {
            let page = self.fresh_formatted_page();
            let done = self.backend.page_write(self.now, PageId(pid));
            self.durable.insert(PageId(pid), page);
            // loading is offline: wait for each completion
            self.now = self.now.max(done);
        }
        let lsn = self.wal.append(LogRecord::Checkpoint);
        self.wal_dev
            .append(lsn, LogRecord::Checkpoint.encoded_len());
        let f = self.wal_dev.force(self.now, lsn);
        self.note_force(f.status);
        self.wal.mark_flushed(lsn);
        self.now = self.now.max(f.done);
        self.loaded = true;
    }

    /// Fetch a page into the pool (if absent), charging read and steal
    /// stalls. Returns nothing; the page is then resident.
    fn fetch_page(&mut self, pid: PageId) {
        if self.pool.contains(pid) {
            return;
        }
        self.settle_in_flight();
        // read the durable image (or an in-flight newer one)
        let mut image = self
            .in_flight
            .iter()
            .rev()
            .find(|(_, p, _)| *p == pid)
            .map(|(_, _, img)| img.clone())
            .or_else(|| self.durable.get(&pid).cloned())
            .unwrap_or_else(|| self.fresh_formatted_page());
        let t0 = self.now;
        let (done, status) = self.backend.page_read(self.now, pid);
        self.now = self.now.max(done);
        self.stats.read_stall += self.now.since(t0);
        match status {
            requiem_sim::IoStatus::Ok => {}
            requiem_sim::IoStatus::RecoveredAfterRetry { .. } => {
                // device saved the data itself; the stall above already
                // charged the recovery latency — just count it
                self.stats.media_recoveries += 1;
            }
            requiem_sim::IoStatus::Unrecoverable | requiem_sim::IoStatus::Rejected => {
                // the device lost the page: redo it from the durable log
                // (the WAL is the database — ARIES media recovery in
                // miniature), and refresh the durable image so a later
                // crash does not resurrect the lost bytes
                self.stats.media_failures += 1;
                let (end, img) = self.rebuild_page_from_log(self.now, pid);
                self.now = self.now.max(end);
                image = img;
                self.durable.insert(pid, image.clone());
            }
        }
        match self.pool.install(pid, image, false) {
            EvictOutcome::Clean => {}
            EvictOutcome::Steal { page_id, image } => {
                // synchronous steal write: WAL rule first — the stolen
                // page's updates must be durable in the log
                let t0 = self.now;
                let unflushed = self.wal.next_lsn();
                if self.wal.flushed().map(|f| f < unflushed).unwrap_or(true) {
                    self.wal_dev.append(unflushed, 512);
                    let f = self.wal_dev.force(self.now, unflushed);
                    self.note_force(f.status);
                    self.wal.mark_flushed(unflushed);
                    self.now = self.now.max(f.done);
                }
                let done = self.backend.steal_write(self.now, page_id);
                self.now = self.now.max(done);
                self.stats.steal_stall += self.now.since(t0);
                self.durable.insert(page_id, *image);
            }
        }
    }

    /// Execute one transaction: each access reads (and possibly dirties)
    /// one record; commit forces the log.
    ///
    /// `accesses` is a list of `(page, slot, dirty)`.
    pub fn execute(&mut self, accesses: &[(u64, u16, bool)], log_bytes: u32) -> TxnOutcome {
        assert!(self.loaded, "call load() before executing transactions");
        let txn = self.next_txn;
        self.next_txn += 1;
        let started = self.now;
        let mut wrote = false;
        for &(page, slot, dirty) in accesses {
            let pid = PageId(page % self.cfg.data_pages);
            let slot = slot % self.cfg.slots_per_page;
            self.fetch_page(pid);
            if dirty {
                // pin the frame BEFORE logging: `fetch_page` made the page
                // resident, but if the pool ever evicted it in between, we
                // must not append an Update we cannot apply — WAL and page
                // would disagree about what happened
                let Some(frame) = self.pool.get_mut(pid, true) else {
                    continue;
                };
                wrote = true;
                let mut after = vec![0u8; self.cfg.record_size];
                after[..8].copy_from_slice(&txn.to_le_bytes());
                let lsn = self.wal.append(LogRecord::Update {
                    txn,
                    page: pid,
                    slot,
                    after: after.clone(),
                });
                frame.update(slot, &after);
                frame.set_lsn(lsn.0);
            } else {
                self.pool.get_mut(pid, false);
            }
        }
        // commit: append the record; force the log per the group-commit
        // policy (every Nth commit carries the whole group's bytes)
        let commit_started = self.now;
        let commit_lsn = self.wal.append(LogRecord::Commit { txn });
        let force_bytes = if wrote { log_bytes.max(32) } else { 32 };
        self.unforced_commits += 1;
        self.wal_dev.append(commit_lsn, force_bytes);
        if self.unforced_commits >= self.cfg.group_commit.max(1) {
            let f = self.wal_dev.force(self.now, commit_lsn);
            self.note_force(f.status);
            self.wal.mark_flushed(commit_lsn);
            self.now = self.now.max(f.done);
            self.unforced_commits = 0;
        }
        let commit_force = self.now.since(commit_started);
        self.stats.commit_stall += commit_force;
        self.stats.commits += 1;
        let latency = self.now.since(started);
        self.txn_latency.record_duration(latency);
        self.commit_latency.record_duration(commit_force);
        if self.cfg.checkpoint_every > 0 && self.stats.commits % self.cfg.checkpoint_every == 0 {
            self.checkpoint();
        }
        TxnOutcome {
            txn,
            latency,
            commit_force,
        }
    }

    /// Sharp checkpoint: flush all dirty pages as one torn-safe batch,
    /// wait for it, then log the checkpoint — so the checkpoint record is
    /// an honest redo lower bound.
    pub fn checkpoint(&mut self) {
        let dirty = self.pool.dirty_pages();
        if !dirty.is_empty() {
            let ids: Vec<PageId> = dirty.iter().map(|(p, _)| *p).collect();
            let done = self.backend.page_batch(self.now, &ids);
            self.now = self.now.max(done);
            for (pid, image) in dirty {
                self.pool.mark_clean(pid);
                self.in_flight.push((done, pid, image));
            }
        }
        let lsn = self.wal.append(LogRecord::Checkpoint);
        // the force drains every still-pending commit record along with
        // the checkpoint record itself — a checkpoint flushes the group
        self.wal_dev
            .append(lsn, LogRecord::Checkpoint.encoded_len());
        let f = self.wal_dev.force(self.now, lsn);
        self.note_force(f.status);
        self.wal.mark_flushed(lsn);
        self.now = self.now.max(f.done);
        self.unforced_commits = 0;
        self.stats.checkpoints += 1;
        // every log byte before the checkpoint record is now outside the
        // redo horizon: release those segments eagerly so the device's
        // collector never copies dead WAL (background — the clock does
        // not advance, so QD-1 replays stay bit-identical)
        let ck_len = u64::from(LogRecord::Checkpoint.encoded_len());
        let horizon = self.wal_dev.stats().log_bytes.saturating_sub(ck_len);
        self.wal_dev.truncate(self.now, horizon);
        self.settle_in_flight();
    }

    /// Simulated crash: volatile state (buffer pool, in-flight promotions)
    /// vanishes; the durable log and page images survive.
    pub fn crash(&mut self) {
        self.pool.crash();
        // in-flight writes whose completion time had not been reached are
        // lost (torn batches are prevented by the backend's journal /
        // atomic write)
        let now = self.now;
        let mut survived = Vec::new();
        self.in_flight.retain(|(done, page, image)| {
            if *done <= now {
                survived.push((*page, image.clone()));
            }
            false
        });
        for (page, image) in survived {
            self.durable.insert(page, image);
        }
    }

    /// Redo recovery: replay committed updates from the durable log onto
    /// the durable images, LSN-guarded. Returns the number of records
    /// replayed.
    ///
    /// The log scan is charged to the WAL backend through
    /// [`WalBackend::recover_scan`]: every durable byte from the
    /// last checkpoint onward is read from the log medium, the clock
    /// advances by the read, and the typed [`IoStatus`] of the scan is
    /// folded into the engine's media counters — a device that recovered
    /// the log bytes through its retry ladder counts a
    /// [`EngineStats::media_recoveries`], one that lost them counts a
    /// [`EngineStats::media_failures`] (the in-memory WAL stays
    /// authoritative for the *bytes*, so replay proceeds either way —
    /// this simulation models the timing and the status, not data loss
    /// in the host's RAM copy of the log).
    ///
    /// [`IoStatus`]: requiem_sim::IoStatus
    pub fn recover(&mut self) -> u64 {
        self.recover_with(None)
    }

    /// [`Self::recover`] with an externally supplied committed set.
    ///
    /// A standalone engine derives the committed set from its own
    /// durable log (`None`). A shard of a two-phase deployment must use
    /// the *union* of durable `Commit` records across every shard: a
    /// cross-shard transaction's commit record lives only on its home
    /// shard, while the participants hold `Prepare` records plus the
    /// updates — passing the global set makes those updates replayable
    /// here. Prepared-but-undecided transactions stay invisible either
    /// way.
    pub fn recover_with(&mut self, committed: Option<&BTreeSet<u64>>) -> u64 {
        let committed: BTreeSet<u64> = match committed {
            Some(set) => set.clone(),
            None => self
                .wal
                .durable_records()
                .filter_map(|(_, r)| match r {
                    LogRecord::Commit { txn } => Some(*txn),
                    _ => None,
                })
                .collect(),
        };
        let start = self.wal.last_durable_checkpoint();
        // charge the physical log scan: bytes before the checkpoint are
        // skipped (their offset positions the read), bytes from the
        // checkpoint on are read
        let mut skip: u64 = 0;
        let mut scan: u64 = 0;
        for (lsn, rec) in self.wal.durable_records() {
            let len = u64::from(rec.encoded_len());
            if start.map(|s| *lsn < s).unwrap_or(false) {
                skip += len;
            } else {
                scan += len;
            }
        }
        let (end, status) =
            self.wal_dev
                .recover_scan(self.now, skip, scan.min(u64::from(u32::MAX)) as u32);
        self.now = self.now.max(end);
        match status {
            requiem_sim::IoStatus::Ok => {}
            requiem_sim::IoStatus::RecoveredAfterRetry { .. } => {
                self.stats.media_recoveries += 1;
            }
            requiem_sim::IoStatus::Unrecoverable | requiem_sim::IoStatus::Rejected => {
                self.stats.media_failures += 1;
            }
        }
        let mut replayed = 0u64;
        let to_apply: Vec<(Lsn, LogRecord)> = self
            .wal
            .durable_records()
            .filter(|(lsn, _)| start.map(|s| *lsn >= s).unwrap_or(true))
            .cloned()
            .collect();
        let zeros_page = self.fresh_formatted_page();
        for (lsn, rec) in to_apply {
            match rec {
                LogRecord::Update {
                    txn,
                    page,
                    slot,
                    after,
                } if committed.contains(&txn) => {
                    let img = self
                        .durable
                        .entry(page)
                        .or_insert_with(|| zeros_page.clone());
                    if img.lsn() < lsn.0 {
                        img.update(slot, &after);
                        img.set_lsn(lsn.0);
                        replayed += 1;
                    }
                }
                LogRecord::Delete { txn, page, slot } if committed.contains(&txn) => {
                    let img = self
                        .durable
                        .entry(page)
                        .or_insert_with(|| zeros_page.clone());
                    if img.lsn() < lsn.0 {
                        img.delete(slot);
                        img.set_lsn(lsn.0);
                        replayed += 1;
                    }
                }
                _ => {}
            }
        }
        replayed
    }

    /// Media-failure redo for one page: reconstruct its image from the
    /// durable log alone, starting from a freshly formatted base. Used
    /// when the device reports an unrecoverable read — the WAL, not the
    /// data page, is the authoritative copy. Updates of uncommitted
    /// transactions are skipped, exactly as in [`Self::recover`].
    ///
    /// The full durable log is scanned from the medium (there is no
    /// per-page index into the log), charged via
    /// [`WalBackend::recover_scan`] starting at `at`; the scan's
    /// typed status folds into the media counters as in
    /// [`Self::recover`]. Returns the scan's end instant and the rebuilt
    /// image.
    pub(crate) fn rebuild_page_from_log(
        &mut self,
        at: SimTime,
        pid: PageId,
    ) -> (SimTime, SlottedPage) {
        let bytes: u64 = self
            .wal
            .durable_records()
            .map(|(_, r)| u64::from(r.encoded_len()))
            .sum();
        let (end, status) = self
            .wal_dev
            .recover_scan(at, 0, bytes.min(u64::from(u32::MAX)) as u32);
        match status {
            requiem_sim::IoStatus::Ok => {}
            requiem_sim::IoStatus::RecoveredAfterRetry { .. } => {
                self.stats.media_recoveries += 1;
            }
            requiem_sim::IoStatus::Unrecoverable | requiem_sim::IoStatus::Rejected => {
                // the log medium failed too; the in-memory WAL remains
                // authoritative for the bytes (see `recover`), so the
                // rebuild proceeds — but the failure is counted
                self.stats.media_failures += 1;
            }
        }
        let committed: BTreeSet<u64> = self
            .wal
            .durable_records()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let mut img = self.fresh_formatted_page();
        for (lsn, rec) in self.wal.durable_records() {
            match rec {
                LogRecord::Update {
                    txn,
                    page,
                    slot,
                    after,
                } if *page == pid && committed.contains(txn) => {
                    img.update(*slot, after);
                    img.set_lsn(lsn.0);
                }
                LogRecord::Delete { txn, page, slot }
                    if *page == pid && committed.contains(txn) =>
                {
                    img.delete(*slot);
                    img.set_lsn(lsn.0);
                }
                _ => {}
            }
        }
        (end.max(at), img)
    }

    /// Inspect the *visible* value of `(page, slot)`: from the buffer pool
    /// if resident, else the durable image. Returns the owning txn id
    /// stamped in the record's first 8 bytes (0 = never written).
    pub fn visible_owner(&mut self, page: u64, slot: u16) -> u64 {
        let pid = PageId(page % self.cfg.data_pages);
        let slot = slot % self.cfg.slots_per_page;
        let record = self
            .pool
            .peek(pid)
            .and_then(|p| p.get(slot).map(|r| r.to_vec()))
            .or_else(|| {
                self.durable
                    .get(&pid)
                    .and_then(|p| p.get(slot).map(|r| r.to_vec()))
            });
        // short records (never produced by this engine, but the format
        // does not forbid them) read as zero-padded rather than panicking
        record
            .map(|r| {
                let mut b = [0u8; 8];
                let n = r.len().min(8);
                b[..n].copy_from_slice(&r[..n]);
                u64::from_le_bytes(b)
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LegacyBackend, VisionBackend};
    use requiem_ssd::SsdConfig;

    fn legacy_db() -> Database<LegacyBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: 64,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0; // conservative: no write cache
        let be = LegacyBackend::new(ssd_cfg, cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    fn vision_db() -> Database<VisionBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: 64,
            ..DbConfig::default()
        };
        let be = VisionBackend::new(SsdConfig::modern(), cfg.data_pages, 1 << 22);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    #[test]
    fn txn_executes_and_commits() {
        let mut db = legacy_db();
        let out = db.execute(&[(1, 0, true), (2, 1, false)], 256);
        assert_eq!(out.txn, 1);
        assert!(out.latency >= out.commit_force);
        assert!(out.commit_force > SimDuration::ZERO);
        assert_eq!(db.stats().commits, 1);
        assert_eq!(db.visible_owner(1, 0), 1);
        assert_eq!(db.visible_owner(2, 1), 0, "read-only access left no mark");
    }

    #[test]
    fn vision_commit_force_is_much_cheaper() {
        let mut l = legacy_db();
        let mut v = vision_db();
        let lo = l.execute(&[(1, 0, true)], 256);
        let vo = v.execute(&[(1, 0, true)], 256);
        assert!(
            lo.commit_force.as_nanos() > 10 * vo.commit_force.as_nanos(),
            "legacy force {} vs vision {}",
            lo.commit_force,
            vo.commit_force
        );
    }

    #[test]
    fn buffer_pressure_causes_steals() {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: 8, // tiny pool
            ..DbConfig::default()
        };
        let be = LegacyBackend::new(SsdConfig::modern(), cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        // touch many distinct pages with writes → dirty evictions
        for i in 0..64u64 {
            db.execute(&[(i, 0, true)], 128);
        }
        assert!(db.backend().stats().steal_writes > 0, "expected steals");
        assert!(db.stats().steal_stall > SimDuration::ZERO);
    }

    #[test]
    fn committed_work_survives_crash_and_recovery() {
        let mut db = legacy_db();
        db.execute(&[(10, 3, true)], 256); // txn 1
        db.execute(&[(11, 4, true)], 256); // txn 2
        db.crash();
        let replayed = db.recover();
        assert!(replayed >= 2, "replayed {replayed}");
        assert_eq!(db.visible_owner(10, 3), 1);
        assert_eq!(db.visible_owner(11, 4), 2);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut db = legacy_db();
        db.execute(&[(10, 3, true)], 256);
        db.crash();
        let first = db.recover();
        let second = db.recover();
        assert!(first >= 1);
        assert_eq!(second, 0, "LSN guard must stop double-apply");
        assert_eq!(db.visible_owner(10, 3), 1);
    }

    #[test]
    fn checkpoint_flushes_dirty_pages() {
        let mut db = vision_db();
        db.execute(&[(5, 0, true)], 256);
        db.checkpoint();
        assert_eq!(db.stats().checkpoints, 1);
        // after checkpoint + crash, data is in the durable image even
        // without log replay
        db.crash();
        assert_eq!(db.visible_owner(5, 0), 1);
    }

    #[test]
    fn uncommitted_after_images_do_not_resurrect() {
        // write without committing is impossible through execute(); this
        // simulates it by crashing mid-transaction: append update, no
        // commit, no force
        let mut db = legacy_db();
        db.execute(&[(1, 0, true)], 256); // txn 1 commits
                                          // hand-craft an unflushed, uncommitted update for txn 99
        db.wal.append(LogRecord::Update {
            txn: 99,
            page: PageId(2),
            slot: 0,
            after: {
                let mut v = vec![0u8; 100];
                v[..8].copy_from_slice(&99u64.to_le_bytes());
                v
            },
        });
        db.crash();
        db.recover();
        assert_eq!(db.visible_owner(1, 0), 1);
        assert_eq!(db.visible_owner(2, 0), 0, "uncommitted txn must not apply");
    }

    /// A backend that forges a media status on chosen page reads —
    /// exercises the engine's typed-status handling without needing a
    /// fault plan aggressive enough to defeat the whole device pipeline.
    struct FlakyBackend {
        inner: LegacyBackend,
        fail_page: Option<PageId>,
        forge: requiem_sim::IoStatus,
    }

    impl PersistenceBackend for FlakyBackend {
        fn make_wal(&mut self) -> Box<dyn crate::walbackend::WalBackend> {
            self.inner.make_wal()
        }
        fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime {
            self.inner.page_write(now, page)
        }
        fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime {
            self.inner.steal_write(now, page)
        }
        fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, requiem_sim::IoStatus) {
            let (done, status) = self.inner.page_read(now, page);
            if self.fail_page == Some(page) {
                self.fail_page = None; // one-shot
                return (done, self.forge);
            }
            (done, status)
        }
        fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime {
            self.inner.page_batch(now, pages)
        }
        fn free_page(&mut self, now: SimTime, page: PageId) {
            self.inner.free_page(now, page)
        }
        fn stats(&self) -> &crate::backend::BackendStats {
            self.inner.stats()
        }
        fn label(&self) -> &'static str {
            "flaky-block"
        }
    }

    fn flaky_db(forge: requiem_sim::IoStatus) -> Database<FlakyBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: 8, // tiny: pages get evicted and re-read
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = FlakyBackend {
            inner: LegacyBackend::new(ssd_cfg, cfg.data_pages, 64),
            fail_page: None,
            forge,
        };
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    #[test]
    fn unrecoverable_read_rebuilds_page_from_durable_log() {
        let mut db = flaky_db(requiem_sim::IoStatus::Unrecoverable);
        db.execute(&[(10, 3, true)], 256); // txn 1 commits, log is durable
                                           // churn the tiny pool until page 10 is evicted
        for i in 100..140u64 {
            db.execute(&[(i, 0, false)], 32);
        }
        assert!(!db.pool.contains(PageId(10)), "page 10 should be evicted");
        // next fetch of page 10 hits forged unrecoverable media
        db.backend.fail_page = Some(PageId(10));
        db.execute(&[(10, 3, false)], 32);
        assert_eq!(db.stats().media_failures, 1);
        assert_eq!(
            db.visible_owner(10, 3),
            1,
            "page must be redone from the WAL after media loss"
        );
        // the rebuilt image is durable again: a crash must not resurrect
        // the lost bytes
        db.crash();
        assert_eq!(db.visible_owner(10, 3), 1);
    }

    #[test]
    fn recovered_read_counts_but_keeps_the_image() {
        let mut db = flaky_db(requiem_sim::IoStatus::RecoveredAfterRetry { steps: 2 });
        db.execute(&[(10, 3, true)], 256);
        for i in 100..140u64 {
            db.execute(&[(i, 0, false)], 32);
        }
        db.backend.fail_page = Some(PageId(10));
        db.execute(&[(10, 3, false)], 32);
        assert_eq!(db.stats().media_recoveries, 1);
        assert_eq!(db.stats().media_failures, 0);
        assert_eq!(db.visible_owner(10, 3), 1);
    }

    #[test]
    fn throughput_vision_beats_legacy_on_commit_heavy_load() {
        let mut l = legacy_db();
        let mut v = vision_db();
        let n = 100u64;
        for i in 0..n {
            l.execute(&[(i % 50, 0, true)], 128);
            v.execute(&[(i % 50, 0, true)], 128);
        }
        let tl = l.now();
        let tv = v.now();
        assert!(
            tv < tl,
            "vision should finish sooner: vision {tv} legacy {tl}"
        );
    }
}

#[cfg(test)]
mod group_commit_tests {
    use super::*;
    use crate::backend::LegacyBackend;
    use requiem_ssd::SsdConfig;

    fn db_with_group(group: u32) -> Database<LegacyBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: 64,
            group_commit: group,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = LegacyBackend::new(ssd_cfg, cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    #[test]
    fn group_commit_amortizes_forces() {
        let mut single = db_with_group(1);
        let mut grouped = db_with_group(8);
        for i in 0..64u64 {
            single.execute(&[(i % 32, 0, true)], 128);
            grouped.execute(&[(i % 32, 0, true)], 128);
        }
        let f1 = single.wal_backend().stats().log_forces;
        let f8 = grouped.wal_backend().stats().log_forces;
        assert!(f8 * 4 < f1, "grouped {f8} vs single {f1} forces");
        assert!(grouped.now() < single.now(), "grouping should be faster");
    }

    #[test]
    fn crash_between_group_forces_loses_only_unforced_txns() {
        let mut db = db_with_group(8);
        // 8 txns: the 8th triggers the group force — all durable
        for i in 0..8u64 {
            db.execute(&[(i, 0, true)], 128);
        }
        // 3 more: unforced
        for i in 8..11u64 {
            db.execute(&[(i, 0, true)], 128);
        }
        db.crash();
        db.recover();
        for i in 0..8u64 {
            assert_eq!(db.visible_owner(i, 0), i + 1, "forced txn {} lost", i + 1);
        }
        for i in 8..11u64 {
            assert_eq!(
                db.visible_owner(i, 0),
                0,
                "unforced txn {} must NOT survive (group commit traded it)",
                i + 1
            );
        }
    }

    #[test]
    fn checkpoint_flushes_pending_group() {
        let mut db = db_with_group(100); // never forces on its own
        for i in 0..5u64 {
            db.execute(&[(i, 0, true)], 128);
        }
        db.checkpoint(); // must flush the pending group
        db.crash();
        db.recover();
        for i in 0..5u64 {
            assert_eq!(db.visible_owner(i, 0), i + 1);
        }
    }
}
