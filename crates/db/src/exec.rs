//! Completion-driven transaction execution.
//!
//! [`Database::execute`] is the paper's *synchronous* storage manager:
//! one transaction at a time, every page miss a blocking `page_read`,
//! every commit a private log force. This module is the same engine
//! rebuilt around the queue-pair reality of a modern device:
//!
//! * **N transactions in flight** — a closed loop of executor slots,
//!   each walking the state machine
//!   `Run → WaitPage → Run → … → WaitCommit → Idle`;
//! * **batched asynchronous reads** — a page miss submits the demand
//!   page *and* its readahead successors as one
//!   [`PersistenceBackend::submit_reads`] batch (one doorbell), and the
//!   executor advances virtual time to the earliest completion instead
//!   of the next submission;
//! * **fetch coalescing** — a second transaction missing on an
//!   in-flight page joins its waiter list instead of duplicating the
//!   device read ([`crate::buffer::BufferPool::add_waiter`]);
//! * **group commit** — commits enlist in a shared
//!   [`GroupCommit`]; one force makes the whole group durable, and the
//!   probe decomposes each commit into its *group wait* (`wal/queue`)
//!   and the *shared force* (`wal/transfer`).
//!
//! ## The QD-1 identity
//!
//! With `concurrency = 1`, prefetching off, and
//! [`GroupCommitPolicy::immediate`], this executor replays the
//! serialized engine **bit for bit**: the same device commands at the
//! same instants, the same stall accounting, the same histograms. Every
//! observed difference at higher concurrency is therefore *caused* by
//! overlap — the same discipline the queue-pair engine itself follows
//! (`requiem-ssd`'s depth-1 identity), carried one layer up the stack.
//!
//! Panic policy (PAN01): this module is lint-protected — fallible
//! outcomes surface as typed statuses, invariants use `assert!` with a
//! message.

use std::collections::BTreeMap;

use requiem_sim::time::SimTime;
use requiem_sim::{Cause, Histogram, IoStatus, Layer};

use crate::backend::{PageRead, PersistenceBackend};
use crate::buffer::EvictOutcome;
use crate::engine::Database;
use crate::page::{PageId, SlottedPage};
use crate::prefetch::{PrefetchConfig, PrefetchStats, Prefetcher};
use crate::wal::{GroupCommit, GroupCommitPolicy, GroupMember, LogRecord, Lsn};

/// Configuration for the completion-driven executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Transactions kept in flight (the closed loop's population, ≥ 1).
    pub concurrency: usize,
    /// Readahead policy for page misses.
    pub prefetch: PrefetchConfig,
    /// When the shared log force happens.
    pub group: GroupCommitPolicy,
}

impl ExecConfig {
    /// The QD-1 identity configuration: one transaction in flight, no
    /// readahead, a private force per commit.
    pub fn serialized() -> Self {
        ExecConfig {
            concurrency: 1,
            prefetch: PrefetchConfig::off(),
            group: GroupCommitPolicy::immediate(),
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::serialized()
    }
}

/// One pre-generated transaction for the closed loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnInput {
    /// Accesses as `(page, slot, dirty)` — the same triple
    /// [`Database::execute`] takes.
    pub accesses: Vec<(u64, u16, bool)>,
    /// Log payload bytes the transaction forces at commit.
    pub log_bytes: u32,
}

/// What a closed-loop run measured.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Transactions committed.
    pub txns: u64,
    /// Wall-clock (virtual) span of the run.
    pub makespan: requiem_sim::SimDuration,
    /// Committed transactions per second of virtual time.
    pub tps: f64,
    /// Shared log forces performed.
    pub forces: u64,
    /// Mean commits per force (group effectiveness).
    pub mean_group: f64,
    /// Readahead outcome counters (finalized: losses resolved).
    pub prefetch: PrefetchStats,
    /// Demand requests that coalesced onto an in-flight fetch.
    pub coalesced: u64,
    /// End-to-end latency of read-only transactions.
    pub read_only_latency: Histogram,
    /// End-to-end latency of updating transactions.
    pub update_latency: Histogram,
    /// `(txn, commit LSN)` in durability order — group commit must keep
    /// this consistent with WAL order (asserted by the proptests).
    pub commit_order: Vec<(u64, Lsn)>,
}

/// Where one executor slot is in its transaction's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// No transaction; free to start one once `free_at` passes.
    Idle {
        /// When the slot's previous commit completed.
        free_at: SimTime,
    },
    /// Applying accesses; runnable once `ready_at` passes.
    Run {
        /// When the slot's awaited work finished.
        ready_at: SimTime,
    },
    /// Blocked on a demand page read.
    WaitPage {
        /// The page being fetched.
        page: PageId,
        /// When the demand was posted (read-stall accounting).
        demand_at: SimTime,
    },
    /// Commit enlisted, waiting for the shared force.
    WaitCommit,
}

/// One closed-loop slot.
#[derive(Debug, Clone)]
struct Slot {
    state: SlotState,
    txn: Option<Active>,
}

/// The transaction a slot is running.
#[derive(Debug, Clone, Copy)]
struct Active {
    /// Transaction id.
    id: u64,
    /// Start instant (end-to-end latency base).
    started: SimTime,
    /// Index into the input list.
    input: usize,
    /// Next access to apply.
    next: usize,
    /// True once any access dirtied a page.
    wrote: bool,
}

/// Host-side context of one in-flight page fetch: the image the device
/// "returns" was chosen at submit time (exactly when the serialized
/// engine read it), so completion order cannot change the bytes.
#[derive(Debug)]
struct FetchCtx {
    image: SlottedPage,
    /// Submitted by the readahead engine rather than a demand miss.
    speculative: bool,
    /// A demand request is (or was) waiting on it.
    demanded: bool,
}

/// Mutable executor state threaded through the event loop.
struct ExecState {
    slots: Vec<Slot>,
    pending: BTreeMap<PageId, FetchCtx>,
    prefetcher: Prefetcher,
    group: GroupCommit,
    /// Inputs handed to slots so far.
    issued: usize,
    forces: u64,
    grouped: u64,
    commit_order: Vec<(u64, Lsn)>,
    read_only_latency: Histogram,
    update_latency: Histogram,
}

impl ExecState {
    fn all_idle(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Idle { .. }))
    }
}

impl<B: PersistenceBackend> Database<B> {
    /// Run `inputs` to completion as a closed loop of
    /// `cfg.concurrency` transactions over the batched asynchronous
    /// read path. See the module docs for the state machine and the
    /// QD-1 identity.
    pub fn run_concurrent(&mut self, inputs: &[TxnInput], cfg: &ExecConfig) -> ExecReport {
        assert!(self.loaded, "call load() before executing transactions");
        let depth = cfg.concurrency.max(1);
        self.backend
            .set_read_window(depth + cfg.prefetch.depth as usize);
        let started_at = self.now;
        let coalesced_before = self.pool.stats().coalesced;
        let mut st = ExecState {
            slots: vec![
                Slot {
                    state: SlotState::Idle { free_at: self.now },
                    txn: None,
                };
                depth
            ],
            pending: BTreeMap::new(),
            prefetcher: Prefetcher::new(cfg.prefetch.clone()),
            group: GroupCommit::new(),
            issued: 0,
            forces: 0,
            grouped: 0,
            commit_order: Vec::new(),
            read_only_latency: Histogram::new(),
            update_latency: Histogram::new(),
        };

        loop {
            // 1. run everything that can run at the current instant
            self.quiesce(inputs, cfg, &mut st);

            // 2. reap completions; if any arrived, re-quiesce first
            if self.reap(&mut st) {
                continue;
            }

            // 3. done?
            if st.issued == inputs.len()
                && st.all_idle()
                && st.pending.is_empty()
                && st.group.is_empty()
            {
                break;
            }

            // 4. advance virtual time to the next event
            let mut next: Option<SimTime> = self.backend.next_read_done();
            let mut merge = |t: SimTime| {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            };
            for s in &st.slots {
                match s.state {
                    SlotState::Idle { free_at }
                        if st.issued < inputs.len() && free_at > self.now =>
                    {
                        merge(free_at)
                    }
                    SlotState::Run { ready_at } if ready_at > self.now => merge(ready_at),
                    _ => {}
                }
            }
            if let Some(d) = st.group.deadline(&cfg.group) {
                if d > self.now {
                    merge(d);
                }
            }
            match next {
                Some(t) if t > self.now => self.now = t,
                Some(_) => {} // an event is ready at `now`: loop again
                None => {
                    // nothing scheduled: the only way forward is forcing
                    // an undersized group (batched policies with too few
                    // stragglers to fill one)
                    if st.group.is_empty() {
                        break; // defensive: no work, no waiters
                    }
                    self.force_group(self.now, &mut st);
                }
            }
        }

        // the run ends when the last commit force (or checkpoint) lands
        for s in &st.slots {
            if let SlotState::Idle { free_at } = s.state {
                self.now = self.now.max(free_at);
            }
        }

        let prefetch = st.prefetcher.finalize();
        for _ in 0..prefetch.losses {
            self.probe.note_status("prefetch-loss");
        }
        let makespan = self.now.since(started_at);
        let txns = st.issued as u64;
        let secs = makespan.as_secs_f64();
        ExecReport {
            txns,
            makespan,
            tps: if secs > 0.0 { txns as f64 / secs } else { 0.0 },
            forces: st.forces,
            mean_group: if st.forces > 0 {
                st.grouped as f64 / st.forces as f64
            } else {
                0.0
            },
            prefetch,
            coalesced: self.pool.stats().coalesced - coalesced_before,
            read_only_latency: st.read_only_latency,
            update_latency: st.update_latency,
            commit_order: st.commit_order,
        }
    }

    /// Run refills, runnable slots, and due forces until nothing can
    /// make progress at the current instant.
    fn quiesce(&mut self, inputs: &[TxnInput], cfg: &ExecConfig, st: &mut ExecState) {
        loop {
            let mut progress = false;
            // refill idle slots in slot order (deterministic admission)
            for i in 0..st.slots.len() {
                if let SlotState::Idle { free_at } = st.slots[i].state {
                    if free_at <= self.now && st.issued < inputs.len() {
                        let id = self.next_txn;
                        self.next_txn += 1;
                        st.slots[i].txn = Some(Active {
                            id,
                            started: self.now,
                            input: st.issued,
                            next: 0,
                            wrote: false,
                        });
                        st.slots[i].state = SlotState::Run { ready_at: self.now };
                        st.issued += 1;
                        progress = true;
                    }
                }
            }
            // drive runnable slots in slot order
            for i in 0..st.slots.len() {
                if let SlotState::Run { ready_at } = st.slots[i].state {
                    if ready_at <= self.now {
                        self.drive_slot(i, inputs, st);
                        progress = true;
                    }
                }
            }
            // force the group the moment the policy says so
            if st.group.due(&cfg.group, self.now) {
                self.force_group(self.now, st);
                progress = true;
            }
            if !progress {
                return;
            }
        }
    }

    /// Advance slot `i` through its accesses until it blocks (page
    /// miss) or commits (enlists in the group).
    fn drive_slot(&mut self, i: usize, inputs: &[TxnInput], st: &mut ExecState) {
        loop {
            let Some(active) = st.slots[i].txn else {
                return; // defensive: a Run slot always has a transaction
            };
            let input = &inputs[active.input];
            if active.next >= input.accesses.len() {
                // all accesses applied: append the commit record and
                // enlist for the shared force
                let commit_lsn = self.wal.append(LogRecord::Commit { txn: active.id });
                let force_bytes = if active.wrote {
                    input.log_bytes.max(32)
                } else {
                    32
                };
                // enlist the force-accounting cost with the WAL backend
                // now; the shared force drains everything at or below
                // the group's horizon in one device interaction
                self.wal_dev.append(commit_lsn, force_bytes);
                let probe_id = if self.probe.is_enabled() {
                    self.probe.open_command("commit", self.now).detach()
                } else {
                    0
                };
                st.group.enlist(GroupMember {
                    slot: i,
                    txn: active.id,
                    lsn: commit_lsn,
                    enlisted: self.now,
                    started: active.started,
                    bytes: force_bytes,
                    probe_id,
                    read_only: !active.wrote,
                });
                st.slots[i].state = SlotState::WaitCommit;
                return;
            }
            let (page, slot_no, dirty) = input.accesses[active.next];
            let pid = PageId(page % self.cfg.data_pages);
            let slot_no = slot_no % self.cfg.slots_per_page;

            if self.pool.contains(pid) {
                // resident: was this residency bought by readahead?
                if st.prefetcher.note_demand_resident(pid.0) {
                    self.probe.note_status("prefetch-win");
                }
                self.apply_access(i, pid, slot_no, dirty, st);
                continue;
            }
            if self.pool.fetch_in_flight(pid) {
                // coalesce onto the in-flight fetch
                self.pool.add_waiter(pid, i as u64);
                if let Some(ctx) = st.pending.get_mut(&pid) {
                    if ctx.speculative && !ctx.demanded {
                        st.prefetcher.note_hit_in_flight();
                        self.probe.note_status("prefetch-win");
                    }
                    ctx.demanded = true;
                }
                st.slots[i].state = SlotState::WaitPage {
                    page: pid,
                    demand_at: self.now,
                };
                return;
            }

            // miss: submit the demand page plus its readahead successors
            // as ONE batch — one doorbell, image chosen at submit time
            self.settle_in_flight();
            let image = self.pick_image(pid);
            st.prefetcher.note_demand_fetch(pid.0);
            self.pool.begin_fetch(pid);
            st.pending.insert(
                pid,
                FetchCtx {
                    image,
                    speculative: false,
                    demanded: true,
                },
            );
            let mut batch = vec![pid];
            if !st.prefetcher.is_off() {
                for t in st.prefetcher.targets(pid.0, self.cfg.data_pages) {
                    let tp = PageId(t % self.cfg.data_pages);
                    if self.pool.contains(tp) || self.pool.fetch_in_flight(tp) {
                        continue;
                    }
                    let img = self.pick_image(tp);
                    self.pool.begin_fetch(tp);
                    st.prefetcher.note_issued(tp.0);
                    st.pending.insert(
                        tp,
                        FetchCtx {
                            image: img,
                            speculative: true,
                            demanded: false,
                        },
                    );
                    batch.push(tp);
                }
            }
            let _tags = self.backend.submit_reads(self.now, &batch);
            st.slots[i].state = SlotState::WaitPage {
                page: pid,
                demand_at: self.now,
            };
            return;
        }
    }

    /// Apply one access to a resident page (the serialized engine's
    /// inner loop, verbatim).
    fn apply_access(
        &mut self,
        i: usize,
        pid: PageId,
        slot_no: u16,
        dirty: bool,
        st: &mut ExecState,
    ) {
        let Some(active) = st.slots[i].txn.as_mut() else {
            return; // defensive: a Run slot always has a transaction
        };
        if dirty {
            // pin the frame BEFORE logging (see `Database::execute`)
            if let Some(frame) = self.pool.get_mut(pid, true) {
                active.wrote = true;
                let mut after = vec![0u8; self.cfg.record_size];
                after[..8].copy_from_slice(&active.id.to_le_bytes());
                let lsn = self.wal.append(LogRecord::Update {
                    txn: active.id,
                    page: pid,
                    slot: slot_no,
                    after: after.clone(),
                });
                frame.update(slot_no, &after);
                frame.set_lsn(lsn.0);
            }
        } else {
            self.pool.get_mut(pid, false);
        }
        active.next += 1;
    }

    /// The image a device read "returns": the newest in-flight write if
    /// any, else the durable image, else a freshly formatted page —
    /// chosen at submit time, exactly like the serialized engine.
    fn pick_image(&self, pid: PageId) -> SlottedPage {
        self.in_flight
            .iter()
            .rev()
            .find(|(_, p, _)| *p == pid)
            .map(|(_, _, img)| img.clone())
            .or_else(|| self.durable.get(&pid).cloned())
            .unwrap_or_else(|| self.fresh_formatted_page())
    }

    /// Reap ready completions; the event clock advances through each
    /// completion's instant as it is processed (device submissions must
    /// be non-decreasing in time, so install-side work — media redo,
    /// steal writes — happens on the advanced clock). Returns true when
    /// anything was reaped.
    fn reap(&mut self, st: &mut ExecState) -> bool {
        let completions = self.backend.poll(self.now);
        if completions.is_empty() {
            return false;
        }
        for r in completions {
            self.now = self.now.max(r.done);
            self.finish_read(r, st);
        }
        true
    }

    /// Install one completed page read: typed-status handling, media
    /// redo, eviction (with the WAL rule), waiter wake-up, and
    /// speculation attribution — on the advanced event clock.
    fn finish_read(&mut self, r: PageRead, st: &mut ExecState) {
        let Some(ctx) = st.pending.remove(&r.page) else {
            return; // orphaned completion (no fetch context): drop it
        };
        let mut image = ctx.image;
        // Install-side device work starts on the advanced event clock
        // (>= r.done): an earlier completion in the same reap batch may
        // have pushed `now` past this read's `done`, and the device
        // requires non-decreasing submission times.
        let mut end = self.now;
        match r.status {
            IoStatus::Ok => {}
            IoStatus::RecoveredAfterRetry { .. } => {
                // the device saved the data itself; `done` already
                // includes its recovery latency — just count it
                self.stats.media_recoveries += 1;
            }
            IoStatus::Unrecoverable | IoStatus::Rejected => {
                // media-failure redo from the durable log, charged as a
                // log read starting at the failed read's completion
                self.stats.media_failures += 1;
                let (redo_end, img) = self.rebuild_page_from_log(self.now, r.page);
                end = redo_end;
                image = img;
                self.durable.insert(r.page, image.clone());
            }
        }
        let (outcome, _cookies) = self.pool.complete_fetch(r.page, image, false);
        if let EvictOutcome::Steal { page_id, image } = outcome {
            // synchronous steal write: WAL rule first (the victim's
            // updates must be durable in the log before its frame turns)
            let t0 = end;
            let unflushed = self.wal.next_lsn();
            if self.wal.flushed().map(|f| f < unflushed).unwrap_or(true) {
                self.wal_dev.append(unflushed, 512);
                let f = self.wal_dev.force(end, unflushed);
                self.note_force(f.status);
                self.wal.mark_flushed(unflushed);
                end = end.max(f.done);
            }
            let done = self.backend.steal_write(end, page_id);
            end = end.max(done);
            self.stats.steal_stall += end.since(t0);
            self.durable.insert(page_id, *image);
        }
        // install-side device work (media redo, steal) drove the device
        // to `end`; the event clock follows so no later submission can
        // go backwards in device time
        self.now = self.now.max(end);
        // wake every waiter at the instant the page became usable; each
        // charges its own read stall from its own demand instant (zero
        // when the coalesced read had already completed before the
        // demand arrived — the data was sitting in the completion queue)
        let mut any_waiter = false;
        for i in 0..st.slots.len() {
            if let SlotState::WaitPage { page, demand_at } = st.slots[i].state {
                if page == r.page {
                    self.stats.read_stall += r.done.max(demand_at).since(demand_at);
                    st.slots[i].state = SlotState::Run { ready_at: end };
                    any_waiter = true;
                }
            }
        }
        if ctx.speculative && !ctx.demanded && !any_waiter {
            // installed on speculation alone: a win only if a demand
            // arrives before eviction
            st.prefetcher.note_installed(r.page.0);
        }
    }

    /// Force the enlisted group at `t`: one shared log force, then each
    /// member's commit completes at the force's end — probe spans split
    /// its wait into *group wait* and *shared force*.
    fn force_group(&mut self, t: SimTime, st: &mut ExecState) {
        let (members, _bytes) = st.group.take();
        if members.is_empty() {
            return;
        }
        st.forces += 1;
        st.grouped += members.len() as u64;
        // one shared force to the group's horizon drains every member's
        // enlisted bytes in one device interaction
        let horizon = members.iter().map(|m| m.lsn).max().unwrap_or(Lsn(0));
        let f = self.wal_dev.force(t, horizon);
        self.note_force(f.status);
        let done = f.done;
        // the force is synchronous at the engine interface: a spilling
        // force submits device writes up to `done`, so the event clock
        // follows (reads already in flight still overlap the force —
        // their completions are reaped afterwards with done <= now)
        self.now = self.now.max(done);
        self.wal.mark_flushed(horizon);
        let force_cause = self.wal_dev.force_cause();
        for m in &members {
            if m.probe_id != 0 {
                let scope = self.probe.resume(m.probe_id);
                // one bus borrow for both commit spans (QD fast path)
                if let Some(mut batch) = self.probe.batch() {
                    if t > m.enlisted {
                        batch.span(Layer::Wal, Cause::Queue, "group-wait", m.enlisted, t);
                    }
                    batch.span(Layer::Wal, force_cause, "log-force", t, done);
                }
                scope.close(done);
            }
            let commit_force = done.since(m.enlisted);
            self.stats.commit_stall += commit_force;
            self.stats.commits += 1;
            let latency = done.since(m.started);
            self.txn_latency.record_duration(latency);
            self.commit_latency.record_duration(commit_force);
            if m.read_only {
                st.read_only_latency.record_duration(latency);
            } else {
                st.update_latency.record_duration(latency);
            }
            st.commit_order.push((m.txn, m.lsn));
            st.slots[m.slot].state = SlotState::Idle { free_at: done };
            st.slots[m.slot].txn = None;
            if self.cfg.checkpoint_every > 0 && self.stats.commits % self.cfg.checkpoint_every == 0
            {
                // a sharp checkpoint quiesces the engine (global pause),
                // exactly as in the serialized path
                self.now = self.now.max(done);
                self.checkpoint();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LegacyBackend, VisionBackend};
    use crate::engine::DbConfig;
    use crate::stack_backend::BlockStackBackend;
    use requiem_block::StackConfig;
    use requiem_ssd::SsdConfig;

    fn mixed_inputs(n: u64, pages: u64, write_every: u64) -> Vec<TxnInput> {
        (0..n)
            .map(|i| TxnInput {
                accesses: vec![
                    (
                        (i * 7) % pages,
                        (i % 16) as u16,
                        write_every > 0 && i % write_every == 0,
                    ),
                    ((i * 13 + 3) % pages, ((i + 5) % 16) as u16, false),
                ],
                log_bytes: 128,
            })
            .collect()
    }

    fn legacy_db(frames: usize) -> Database<LegacyBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: frames,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = LegacyBackend::new(ssd_cfg, cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    fn vision_db(frames: usize) -> Database<VisionBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: frames,
            ..DbConfig::default()
        };
        let be = VisionBackend::new(SsdConfig::modern(), cfg.data_pages, 1 << 22);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    fn stack_db(frames: usize) -> Database<BlockStackBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: frames,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = BlockStackBackend::new(StackConfig::blk_mq(1), ssd_cfg, cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    /// The tentpole invariant: concurrency 1 + prefetch off + immediate
    /// forces replays the serialized engine bit for bit.
    #[test]
    fn qd1_identity_legacy() {
        let inputs = mixed_inputs(60, 256, 3);
        let mut serial = legacy_db(32);
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = legacy_db(32);
        let report = conc.run_concurrent(&inputs, &ExecConfig::serialized());
        assert_eq!(report.txns, 60);
        assert_eq!(conc.now(), serial.now(), "clocks must agree");
        assert_eq!(conc.stats().commits, serial.stats().commits);
        assert_eq!(conc.stats().read_stall, serial.stats().read_stall);
        assert_eq!(conc.stats().steal_stall, serial.stats().steal_stall);
        assert_eq!(conc.stats().commit_stall, serial.stats().commit_stall);
        assert_eq!(
            conc.wal_backend().stats().log_forces,
            serial.wal_backend().stats().log_forces
        );
        assert_eq!(
            conc.wal_backend().stats().log_bytes,
            serial.wal_backend().stats().log_bytes
        );
        assert_eq!(
            conc.backend().stats().page_reads,
            serial.backend().stats().page_reads
        );
        assert_eq!(conc.txn_latency(), serial.txn_latency(), "histograms");
        assert_eq!(conc.commit_latency(), serial.commit_latency());
        assert_eq!(report.coalesced, 0);
        assert_eq!(report.prefetch.issued, 0);
    }

    #[test]
    fn qd1_identity_vision() {
        let inputs = mixed_inputs(40, 256, 2);
        let mut serial = vision_db(32);
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = vision_db(32);
        conc.run_concurrent(&inputs, &ExecConfig::serialized());
        assert_eq!(conc.now(), serial.now(), "clocks must agree");
        assert_eq!(conc.txn_latency(), serial.txn_latency());
    }

    #[test]
    fn concurrency_overlaps_reads_and_beats_serial() {
        let inputs = mixed_inputs(120, 256, 0); // read-only: misses dominate
        let mut serial = stack_db(16);
        let r1 = serial.run_concurrent(&inputs, &ExecConfig::serialized());
        let mut conc = stack_db(16);
        let r8 = conc.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 8,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(8),
            },
        );
        assert!(
            r8.makespan < r1.makespan,
            "8-deep loop {} should beat serial {}",
            r8.makespan,
            r1.makespan
        );
        assert!(r8.tps > r1.tps);
    }

    #[test]
    fn coalescing_counts_and_returns_same_bytes() {
        // every transaction hammers the same page: with N in flight the
        // fetch must coalesce, and all of them see the installed image
        let inputs: Vec<TxnInput> = (0..8)
            .map(|i| TxnInput {
                accesses: vec![(7, i as u16, true)],
                log_bytes: 64,
            })
            .collect();
        let mut db = legacy_db(32);
        let report = db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        assert!(report.coalesced > 0, "same-page misses must coalesce");
        // all eight updates landed on the one page
        for i in 0..8u64 {
            assert_eq!(db.visible_owner(7, i as u16), i + 1);
        }
    }

    #[test]
    fn sequential_prefetch_wins_on_a_scan() {
        // a pure sequential scan over more pages than the pool holds:
        // readahead should convert most misses into wins
        let inputs: Vec<TxnInput> = (0..128u64)
            .map(|p| TxnInput {
                accesses: vec![(p, 0, false)],
                log_bytes: 32,
            })
            .collect();
        let mut plain = stack_db(16);
        let r0 = plain.run_concurrent(&inputs, &ExecConfig::serialized());
        let mut ra = stack_db(16);
        let r4 = ra.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 1,
                prefetch: PrefetchConfig::sequential(4),
                group: GroupCommitPolicy::immediate(),
            },
        );
        assert!(r4.prefetch.issued > 0);
        assert!(
            r4.prefetch.wins * 2 > r4.prefetch.issued,
            "sequential scan should win most speculations: {:?}",
            r4.prefetch
        );
        assert!(
            r4.makespan < r0.makespan,
            "readahead {} should beat demand-only {}",
            r4.makespan,
            r0.makespan
        );
    }

    #[test]
    fn group_commit_amortizes_forces_in_the_loop() {
        let inputs = mixed_inputs(64, 64, 1); // all writers
        let mut single = legacy_db(64);
        let r1 = single.run_concurrent(&inputs, &ExecConfig::serialized());
        let mut grouped = legacy_db(64);
        let r8 = grouped.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 8,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(8),
            },
        );
        assert!(r8.forces < r1.forces / 4, "{} vs {}", r8.forces, r1.forces);
        assert!(r8.mean_group > 4.0);
        assert!(r8.makespan < r1.makespan, "grouping should be faster");
    }

    #[test]
    fn commit_probe_spans_tile_wait_and_force() {
        let inputs = mixed_inputs(24, 64, 1);
        let mut db = legacy_db(64);
        let probe = requiem_sim::Probe::recording();
        db.attach_probe(probe.clone());
        db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        let summary = probe.summary();
        let force = summary
            .by_layer_cause
            .get(&(Layer::Wal, Cause::Transfer))
            .copied()
            .unwrap_or_default();
        assert!(force.count >= 24, "every commit carries a force span");
        let wait = summary
            .by_layer_cause
            .get(&(Layer::Wal, Cause::Queue))
            .copied()
            .unwrap_or_default();
        assert!(wait.count > 0, "grouped commits must show group-wait spans");
    }

    #[test]
    fn checkpoints_fire_in_the_concurrent_loop() {
        let inputs = mixed_inputs(40, 64, 1);
        let mut db = legacy_db(64);
        db.cfg.checkpoint_every = 10;
        db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        assert_eq!(db.stats().checkpoints, 4);
    }
}
