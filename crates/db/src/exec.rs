//! Completion-driven transaction execution.
//!
//! [`Database::execute`] is the paper's *synchronous* storage manager:
//! one transaction at a time, every page miss a blocking `page_read`,
//! every commit a private log force. This module is the same engine
//! rebuilt around the queue-pair reality of a modern device:
//!
//! * **N transactions in flight** — a closed loop of executor slots,
//!   each walking the state machine
//!   `Run → WaitPage → Run → … → WaitCommit → Idle`;
//! * **batched asynchronous reads** — a page miss submits the demand
//!   page *and* its readahead successors as one
//!   [`PersistenceBackend::submit_reads`] batch (one doorbell), and the
//!   executor advances virtual time to the earliest completion instead
//!   of the next submission;
//! * **fetch coalescing** — a second transaction missing on an
//!   in-flight page joins its waiter list instead of duplicating the
//!   device read ([`crate::buffer::BufferPool::add_waiter`]);
//! * **group commit** — commits enlist in a shared
//!   [`GroupCommit`]; one force makes the whole group durable, and the
//!   probe decomposes each commit into its *group wait* (`wal/queue`)
//!   and the *shared force* (`wal/transfer`).
//!
//! ## The QD-1 identity
//!
//! With `concurrency = 1`, prefetching off, and
//! [`GroupCommitPolicy::immediate`], this executor replays the
//! serialized engine **bit for bit**: the same device commands at the
//! same instants, the same stall accounting, the same histograms. Every
//! observed difference at higher concurrency is therefore *caused* by
//! overlap — the same discipline the queue-pair engine itself follows
//! (`requiem-ssd`'s depth-1 identity), carried one layer up the stack.
//!
//! Panic policy (PAN01): this module is lint-protected — fallible
//! outcomes surface as typed statuses, invariants use `assert!` with a
//! message.

use std::collections::BTreeMap;

use requiem_sim::time::SimTime;
use requiem_sim::{Cause, Histogram, IoStatus, Layer};

use crate::backend::{PageRead, PersistenceBackend};
use crate::buffer::EvictOutcome;
use crate::engine::Database;
use crate::page::{PageId, SlottedPage};
use crate::prefetch::{PrefetchConfig, PrefetchStats, Prefetcher};
use crate::wal::{GroupCommit, GroupCommitPolicy, GroupMember, LogRecord, Lsn, MemberKind};

/// Configuration for the completion-driven executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Transactions kept in flight (the closed loop's population, ≥ 1).
    pub concurrency: usize,
    /// Readahead policy for page misses.
    pub prefetch: PrefetchConfig,
    /// When the shared log force happens.
    pub group: GroupCommitPolicy,
}

impl ExecConfig {
    /// The QD-1 identity configuration: one transaction in flight, no
    /// readahead, a private force per commit.
    pub fn serialized() -> Self {
        ExecConfig {
            concurrency: 1,
            prefetch: PrefetchConfig::off(),
            group: GroupCommitPolicy::immediate(),
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::serialized()
    }
}

/// One pre-generated transaction for the closed loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnInput {
    /// Accesses as `(page, slot, dirty)` — the same triple
    /// [`Database::execute`] takes.
    pub accesses: Vec<(u64, u16, bool)>,
    /// Log payload bytes the transaction forces at commit.
    pub log_bytes: u32,
}

/// What a closed-loop run measured.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Transactions committed.
    pub txns: u64,
    /// Wall-clock (virtual) span of the run.
    pub makespan: requiem_sim::SimDuration,
    /// Committed transactions per second of virtual time.
    pub tps: f64,
    /// Shared log forces performed.
    pub forces: u64,
    /// Mean commits per force (group effectiveness).
    pub mean_group: f64,
    /// Readahead outcome counters (finalized: losses resolved).
    pub prefetch: PrefetchStats,
    /// Demand requests that coalesced onto an in-flight fetch.
    pub coalesced: u64,
    /// End-to-end latency of read-only transactions.
    pub read_only_latency: Histogram,
    /// End-to-end latency of updating transactions.
    pub update_latency: Histogram,
    /// `(txn, commit LSN)` in durability order — group commit must keep
    /// this consistent with WAL order (asserted by the proptests).
    pub commit_order: Vec<(u64, Lsn)>,
}

/// Where one executor slot is in its transaction's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// No transaction; free to start one once `free_at` passes.
    Idle {
        /// When the slot's previous commit completed.
        free_at: SimTime,
    },
    /// Applying accesses; runnable once `ready_at` passes.
    Run {
        /// When the slot's awaited work finished.
        ready_at: SimTime,
    },
    /// Blocked on a demand page read.
    WaitPage {
        /// The page being fetched.
        page: PageId,
        /// When the demand was posted (read-stall accounting).
        demand_at: SimTime,
    },
    /// Commit enlisted, waiting for the shared force.
    WaitCommit,
}

/// One closed-loop slot.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub(crate) state: SlotState,
    pub(crate) txn: Option<Active>,
}

/// How a transaction terminates on this executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum TxnRole {
    /// Single-shard: append `Commit` and finish locally (the only role
    /// `run_concurrent` ever uses).
    #[default]
    Local,
    /// One participant's share of a cross-shard transaction: append
    /// `Prepare`, report the vote, and let the coordinator decide.
    Participant,
}

/// The transaction a slot is running.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Active {
    /// Transaction id (the *global* id for cross-shard participants).
    pub(crate) id: u64,
    /// Start instant (end-to-end latency base).
    pub(crate) started: SimTime,
    /// Index into the input list.
    pub(crate) input: usize,
    /// Next access to apply.
    pub(crate) next: usize,
    /// True once any access dirtied a page.
    pub(crate) wrote: bool,
    /// How the transaction terminates.
    pub(crate) role: TxnRole,
}

/// One pre-assigned transaction in a shard's input queue: the
/// coordinator names ids up front (a global namespace across shards)
/// instead of letting the executor allocate them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlannedTxn {
    /// Transaction id to run under.
    pub(crate) id: u64,
    /// Commit locally or prepare for the coordinator.
    pub(crate) role: TxnRole,
}

/// What a shard reports back to its coordinator after a force.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardEvent {
    /// A participant's prepare force completed: its durability vote.
    Prepared {
        /// The global transaction.
        txn: u64,
        /// The force's typed outcome — a failure is a NO vote.
        status: IoStatus,
        /// When the force landed.
        done: SimTime,
        /// When this participant's share started (latency base).
        started: SimTime,
    },
    /// The coordinator's decision force completed: the global commit
    /// point for a cross-shard transaction.
    Committed {
        /// The global transaction.
        txn: u64,
        /// When the decision force landed.
        done: SimTime,
    },
}

/// In-memory before-image of one participant update, kept until the
/// global decision so a typed abort can roll the share back.
#[derive(Debug, Clone)]
pub(crate) struct UndoEntry {
    /// Updated page.
    pub(crate) page: PageId,
    /// Updated slot.
    pub(crate) slot: u16,
    /// Record bytes before the update (`None` = slot was empty).
    pub(crate) before: Option<Vec<u8>>,
}

/// Host-side context of one in-flight page fetch: the image the device
/// "returns" was chosen at submit time (exactly when the serialized
/// engine read it), so completion order cannot change the bytes.
#[derive(Debug)]
pub(crate) struct FetchCtx {
    pub(crate) image: SlottedPage,
    /// Submitted by the readahead engine rather than a demand miss.
    pub(crate) speculative: bool,
    /// A demand request is (or was) waiting on it.
    pub(crate) demanded: bool,
}

/// Mutable executor state threaded through the event loop.
pub(crate) struct ExecState {
    pub(crate) slots: Vec<Slot>,
    pub(crate) pending: BTreeMap<PageId, FetchCtx>,
    pub(crate) prefetcher: Prefetcher,
    pub(crate) group: GroupCommit,
    /// Inputs handed to slots so far.
    pub(crate) issued: usize,
    pub(crate) forces: u64,
    pub(crate) grouped: u64,
    pub(crate) commit_order: Vec<(u64, Lsn)>,
    pub(crate) read_only_latency: Histogram,
    pub(crate) update_latency: Histogram,
    /// Coordinator-assigned ids/roles per input index; empty in
    /// `run_concurrent`, where the executor allocates ids itself.
    pub(crate) assigned: Vec<PlannedTxn>,
    /// Force outcomes to report to the coordinator (drained per step).
    pub(crate) outbox: Vec<ShardEvent>,
    /// Before-images of participant updates, per global transaction,
    /// consumed on abort and dropped on commit.
    pub(crate) undo: BTreeMap<u64, Vec<UndoEntry>>,
    /// Under a sharded coordinator, a group force does *not* advance the
    /// shard's event clock synchronously (other shards keep submitting
    /// into the overlap window); the completion instant is parked here
    /// and the coordinator wakes the shard at it. `run_concurrent`
    /// keeps the synchronous single-submitter discipline.
    pub(crate) async_force: bool,
    /// Latest pending force completion (only meaningful when
    /// `async_force` is set; the coordinator treats it as a wake).
    pub(crate) force_horizon: SimTime,
}

impl ExecState {
    /// Fresh state for a `depth`-slot closed loop starting at `now`.
    pub(crate) fn new(depth: usize, now: SimTime, prefetch: &PrefetchConfig) -> Self {
        ExecState {
            slots: vec![
                Slot {
                    state: SlotState::Idle { free_at: now },
                    txn: None,
                };
                depth
            ],
            pending: BTreeMap::new(),
            prefetcher: Prefetcher::new(prefetch.clone()),
            group: GroupCommit::new(),
            issued: 0,
            forces: 0,
            grouped: 0,
            commit_order: Vec::new(),
            read_only_latency: Histogram::new(),
            update_latency: Histogram::new(),
            assigned: Vec::new(),
            outbox: Vec::new(),
            undo: BTreeMap::new(),
            async_force: false,
            force_horizon: now,
        }
    }

    pub(crate) fn all_idle(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Idle { .. }))
    }
}

impl<B: PersistenceBackend> Database<B> {
    /// Run `inputs` to completion as a closed loop of
    /// `cfg.concurrency` transactions over the batched asynchronous
    /// read path. See the module docs for the state machine and the
    /// QD-1 identity.
    pub fn run_concurrent(&mut self, inputs: &[TxnInput], cfg: &ExecConfig) -> ExecReport {
        assert!(self.loaded, "call load() before executing transactions");
        let depth = cfg.concurrency.max(1);
        self.backend
            .set_read_window(depth + cfg.prefetch.depth as usize);
        let started_at = self.now;
        let coalesced_before = self.pool.stats().coalesced;
        let mut st = ExecState::new(depth, self.now, &cfg.prefetch);

        loop {
            // 1. run everything that can run at the current instant
            self.quiesce(inputs, cfg, &mut st);

            // 2. reap completions; if any arrived, re-quiesce first
            if self.reap(&mut st) {
                continue;
            }

            // 3. done?
            if st.issued == inputs.len()
                && st.all_idle()
                && st.pending.is_empty()
                && st.group.is_empty()
            {
                break;
            }

            // 4. advance virtual time to the next event
            match self.next_event(inputs.len(), cfg, &st) {
                Some(t) if t > self.now => self.now = t,
                Some(_) => {} // an event is ready at `now`: loop again
                None => {
                    // nothing scheduled: the only way forward is forcing
                    // an undersized group (batched policies with too few
                    // stragglers to fill one)
                    if st.group.is_empty() {
                        break; // defensive: no work, no waiters
                    }
                    self.force_group(self.now, &mut st);
                }
            }
        }

        self.finish_run(started_at, coalesced_before, st)
    }

    /// Close out a closed-loop run: settle the clock on the last commit
    /// force, finalize readahead attribution, and build the report.
    /// Shared by `run_concurrent` and the shard coordinator so the two
    /// paths cannot drift.
    pub(crate) fn finish_run(
        &mut self,
        started_at: SimTime,
        coalesced_before: u64,
        mut st: ExecState,
    ) -> ExecReport {
        // the run ends when the last commit force (or checkpoint) lands
        for s in &st.slots {
            if let SlotState::Idle { free_at } = s.state {
                self.now = self.now.max(free_at);
            }
        }

        let prefetch = st.prefetcher.finalize();
        for _ in 0..prefetch.losses {
            self.probe.note_status("prefetch-loss");
        }
        let makespan = self.now.since(started_at);
        let txns = st.issued as u64;
        let secs = makespan.as_secs_f64();
        ExecReport {
            txns,
            makespan,
            tps: if secs > 0.0 { txns as f64 / secs } else { 0.0 },
            forces: st.forces,
            mean_group: if st.forces > 0 {
                st.grouped as f64 / st.forces as f64
            } else {
                0.0
            },
            prefetch,
            coalesced: self.pool.stats().coalesced - coalesced_before,
            read_only_latency: st.read_only_latency,
            update_latency: st.update_latency,
            commit_order: st.commit_order,
        }
    }

    /// The earliest *future* instant anything can happen: the next read
    /// completion, a slot becoming free or runnable, or the group
    /// deadline. `None` means nothing is scheduled (an undersized group
    /// may still need forcing). `Some(t)` with `t <= now` means an
    /// event is already ready at the current instant.
    pub(crate) fn next_event(
        &mut self,
        input_count: usize,
        cfg: &ExecConfig,
        st: &ExecState,
    ) -> Option<SimTime> {
        let mut next: Option<SimTime> = self.backend.next_read_done();
        let mut merge = |t: SimTime| {
            next = Some(match next {
                Some(n) => n.min(t),
                None => t,
            });
        };
        for s in &st.slots {
            match s.state {
                SlotState::Idle { free_at } if st.issued < input_count && free_at > self.now => {
                    merge(free_at)
                }
                SlotState::Run { ready_at } if ready_at > self.now => merge(ready_at),
                _ => {}
            }
        }
        if let Some(d) = st.group.deadline(&cfg.group) {
            if d > self.now {
                merge(d);
            }
        }
        next
    }

    /// Run refills, runnable slots, and due forces until nothing can
    /// make progress at the current instant.
    pub(crate) fn quiesce(&mut self, inputs: &[TxnInput], cfg: &ExecConfig, st: &mut ExecState) {
        loop {
            let mut progress = false;
            // refill idle slots in slot order (deterministic admission)
            for i in 0..st.slots.len() {
                if let SlotState::Idle { free_at } = st.slots[i].state {
                    if free_at <= self.now && st.issued < inputs.len() {
                        // the coordinator pre-assigns ids (a global
                        // namespace across shards); standalone runs
                        // allocate locally, exactly as before
                        let (id, role) = match st.assigned.get(st.issued) {
                            Some(p) => (p.id, p.role),
                            None => {
                                let id = self.next_txn;
                                self.next_txn += 1;
                                (id, TxnRole::Local)
                            }
                        };
                        st.slots[i].txn = Some(Active {
                            id,
                            started: self.now,
                            input: st.issued,
                            next: 0,
                            wrote: false,
                            role,
                        });
                        st.slots[i].state = SlotState::Run { ready_at: self.now };
                        st.issued += 1;
                        progress = true;
                    }
                }
            }
            // drive runnable slots in slot order
            for i in 0..st.slots.len() {
                if let SlotState::Run { ready_at } = st.slots[i].state {
                    if ready_at <= self.now {
                        self.drive_slot(i, inputs, st);
                        progress = true;
                    }
                }
            }
            // force the group the moment the policy says so
            if st.group.due(&cfg.group, self.now) {
                self.force_group(self.now, st);
                progress = true;
            }
            if !progress {
                return;
            }
        }
    }

    /// Advance slot `i` through its accesses until it blocks (page
    /// miss) or commits (enlists in the group).
    pub(crate) fn drive_slot(&mut self, i: usize, inputs: &[TxnInput], st: &mut ExecState) {
        loop {
            let Some(active) = st.slots[i].txn else {
                return; // defensive: a Run slot always has a transaction
            };
            let input = &inputs[active.input];
            if active.next >= input.accesses.len() {
                // all accesses applied: append the termination record
                // (a local commit, or a two-phase prepare whose force
                // is this shard's durability vote) and enlist it for
                // the shared force
                let (record, kind, label) = match active.role {
                    TxnRole::Local => (
                        LogRecord::Commit { txn: active.id },
                        MemberKind::Commit,
                        "commit",
                    ),
                    TxnRole::Participant => (
                        LogRecord::Prepare { txn: active.id },
                        MemberKind::Prepare,
                        "prepare",
                    ),
                };
                let commit_lsn = self.wal.append(record);
                let force_bytes = if active.wrote {
                    input.log_bytes.max(32)
                } else {
                    32
                };
                // enlist the force-accounting cost with the WAL backend
                // now; the shared force drains everything at or below
                // the group's horizon in one device interaction
                self.wal_dev.append(commit_lsn, force_bytes);
                let probe_id = if self.probe.is_enabled() {
                    self.probe.open_command(label, self.now).detach()
                } else {
                    0
                };
                st.group.enlist(GroupMember {
                    slot: i,
                    kind,
                    txn: active.id,
                    lsn: commit_lsn,
                    enlisted: self.now,
                    started: active.started,
                    bytes: force_bytes,
                    probe_id,
                    read_only: !active.wrote,
                });
                st.slots[i].state = SlotState::WaitCommit;
                return;
            }
            let (page, slot_no, dirty) = input.accesses[active.next];
            let pid = PageId(page % self.cfg.data_pages);
            let slot_no = slot_no % self.cfg.slots_per_page;

            if self.pool.contains(pid) {
                // resident: was this residency bought by readahead?
                if st.prefetcher.note_demand_resident(pid.0) {
                    self.probe.note_status("prefetch-win");
                }
                self.apply_access(i, pid, slot_no, dirty, st);
                continue;
            }
            if self.pool.fetch_in_flight(pid) {
                // coalesce onto the in-flight fetch
                self.pool.add_waiter(pid, i as u64);
                if let Some(ctx) = st.pending.get_mut(&pid) {
                    if ctx.speculative && !ctx.demanded {
                        st.prefetcher.note_hit_in_flight();
                        self.probe.note_status("prefetch-win");
                    }
                    ctx.demanded = true;
                }
                st.slots[i].state = SlotState::WaitPage {
                    page: pid,
                    demand_at: self.now,
                };
                return;
            }

            // miss: submit the demand page plus its readahead successors
            // as ONE batch — one doorbell, image chosen at submit time
            self.settle_in_flight();
            let image = self.pick_image(pid);
            st.prefetcher.note_demand_fetch(pid.0);
            self.pool.begin_fetch(pid);
            st.pending.insert(
                pid,
                FetchCtx {
                    image,
                    speculative: false,
                    demanded: true,
                },
            );
            let mut batch = vec![pid];
            if !st.prefetcher.is_off() {
                for t in st.prefetcher.targets(pid.0, self.cfg.data_pages) {
                    let tp = PageId(t % self.cfg.data_pages);
                    if self.pool.contains(tp) || self.pool.fetch_in_flight(tp) {
                        continue;
                    }
                    let img = self.pick_image(tp);
                    self.pool.begin_fetch(tp);
                    st.prefetcher.note_issued(tp.0);
                    st.pending.insert(
                        tp,
                        FetchCtx {
                            image: img,
                            speculative: true,
                            demanded: false,
                        },
                    );
                    batch.push(tp);
                }
            }
            let _tags = self.backend.submit_reads(self.now, &batch);
            st.slots[i].state = SlotState::WaitPage {
                page: pid,
                demand_at: self.now,
            };
            return;
        }
    }

    /// Apply one access to a resident page (the serialized engine's
    /// inner loop, verbatim — plus before-image capture for two-phase
    /// participants, whose updates may need a typed abort).
    pub(crate) fn apply_access(
        &mut self,
        i: usize,
        pid: PageId,
        slot_no: u16,
        dirty: bool,
        st: &mut ExecState,
    ) {
        let Some(mut active) = st.slots[i].txn else {
            return; // defensive: a Run slot always has a transaction
        };
        if dirty {
            // pin the frame BEFORE logging (see `Database::execute`)
            if let Some(frame) = self.pool.get_mut(pid, true) {
                active.wrote = true;
                if active.role == TxnRole::Participant {
                    // RAM-only bookkeeping: no device work, no clock
                    st.undo.entry(active.id).or_default().push(UndoEntry {
                        page: pid,
                        slot: slot_no,
                        before: frame.get(slot_no).map(<[u8]>::to_vec),
                    });
                }
                let mut after = vec![0u8; self.cfg.record_size];
                after[..8].copy_from_slice(&active.id.to_le_bytes());
                let lsn = self.wal.append(LogRecord::Update {
                    txn: active.id,
                    page: pid,
                    slot: slot_no,
                    after: after.clone(),
                });
                frame.update(slot_no, &after);
                frame.set_lsn(lsn.0);
            }
        } else {
            self.pool.get_mut(pid, false);
        }
        active.next += 1;
        st.slots[i].txn = Some(active);
    }

    /// The image a device read "returns": the newest in-flight write if
    /// any, else the durable image, else a freshly formatted page —
    /// chosen at submit time, exactly like the serialized engine.
    pub(crate) fn pick_image(&self, pid: PageId) -> SlottedPage {
        self.in_flight
            .iter()
            .rev()
            .find(|(_, p, _)| *p == pid)
            .map(|(_, _, img)| img.clone())
            .or_else(|| self.durable.get(&pid).cloned())
            .unwrap_or_else(|| self.fresh_formatted_page())
    }

    /// Reap ready completions; the event clock advances through each
    /// completion's instant as it is processed (device submissions must
    /// be non-decreasing in time, so install-side work — media redo,
    /// steal writes — happens on the advanced clock). Returns true when
    /// anything was reaped.
    pub(crate) fn reap(&mut self, st: &mut ExecState) -> bool {
        let completions = self.backend.poll(self.now);
        if completions.is_empty() {
            return false;
        }
        for r in completions {
            self.now = self.now.max(r.done);
            self.finish_read(r, st);
        }
        true
    }

    /// Install one completed page read: typed-status handling, media
    /// redo, eviction (with the WAL rule), waiter wake-up, and
    /// speculation attribution — on the advanced event clock.
    pub(crate) fn finish_read(&mut self, r: PageRead, st: &mut ExecState) {
        let Some(ctx) = st.pending.remove(&r.page) else {
            return; // orphaned completion (no fetch context): drop it
        };
        let mut image = ctx.image;
        // Install-side device work starts on the advanced event clock
        // (>= r.done): an earlier completion in the same reap batch may
        // have pushed `now` past this read's `done`, and the device
        // requires non-decreasing submission times.
        let mut end = self.now;
        match r.status {
            IoStatus::Ok => {}
            IoStatus::RecoveredAfterRetry { .. } => {
                // the device saved the data itself; `done` already
                // includes its recovery latency — just count it
                self.stats.media_recoveries += 1;
            }
            IoStatus::Unrecoverable | IoStatus::Rejected => {
                // media-failure redo from the durable log, charged as a
                // log read starting at the failed read's completion
                self.stats.media_failures += 1;
                let (redo_end, img) = self.rebuild_page_from_log(self.now, r.page);
                end = redo_end;
                image = img;
                self.durable.insert(r.page, image.clone());
            }
        }
        let (outcome, _cookies) = self.pool.complete_fetch(r.page, image, false);
        if let EvictOutcome::Steal { page_id, image } = outcome {
            // synchronous steal write: WAL rule first (the victim's
            // updates must be durable in the log before its frame turns)
            let t0 = end;
            let unflushed = self.wal.next_lsn();
            if self.wal.flushed().map(|f| f < unflushed).unwrap_or(true) {
                self.wal_dev.append(unflushed, 512);
                let f = self.wal_dev.force(end, unflushed);
                self.note_force(f.status);
                self.wal.mark_flushed(unflushed);
                end = end.max(f.done);
            }
            let done = self.backend.steal_write(end, page_id);
            end = end.max(done);
            self.stats.steal_stall += end.since(t0);
            self.durable.insert(page_id, *image);
        }
        // install-side device work (media redo, steal) drove the device
        // to `end`
        if st.async_force {
            // sharded coordinator: park the horizon instead of
            // advancing the clock — the waiters' `ready_at = end` gates
            // execution, and the multi-queue device accepts the
            // out-of-order submissions peer overlap produces
            st.force_horizon = st.force_horizon.max(end);
        } else {
            // single submitter: the event clock follows so no later
            // submission can go backwards in device time
            self.now = self.now.max(end);
        }
        // wake every waiter at the instant the page became usable; each
        // charges its own read stall from its own demand instant (zero
        // when the coalesced read had already completed before the
        // demand arrived — the data was sitting in the completion queue)
        let mut any_waiter = false;
        for i in 0..st.slots.len() {
            if let SlotState::WaitPage { page, demand_at } = st.slots[i].state {
                if page == r.page {
                    self.stats.read_stall += r.done.max(demand_at).since(demand_at);
                    st.slots[i].state = SlotState::Run { ready_at: end };
                    any_waiter = true;
                }
            }
        }
        if ctx.speculative && !ctx.demanded && !any_waiter {
            // installed on speculation alone: a win only if a demand
            // arrives before eviction
            st.prefetcher.note_installed(r.page.0);
        }
    }

    /// Force the enlisted group at `t`: one shared log force, then each
    /// member resolves at the force's end — probe spans split the wait
    /// into *group wait* and *shared force*. `Commit` members complete
    /// their slot's transaction; `Prepare` members free the slot and
    /// report their durability vote; `Decide` members are the slot-less
    /// commit point of a cross-shard transaction.
    pub(crate) fn force_group(&mut self, t: SimTime, st: &mut ExecState) {
        let (members, _bytes) = st.group.take();
        if members.is_empty() {
            return;
        }
        st.forces += 1;
        st.grouped += members.len() as u64;
        // one shared force to the group's horizon drains every member's
        // enlisted bytes in one device interaction
        let horizon = members.iter().map(|m| m.lsn).max().unwrap_or(Lsn(0));
        let f = self.wal_dev.force(t, horizon);
        self.note_force(f.status);
        let done = f.done;
        if st.async_force {
            // sharded coordinator: the force's outcome is already fully
            // determined (slot frees, stats, and outbox all carry
            // `done`), but the clock holds so peer shards can submit
            // into the force's latency window; the coordinator wakes
            // this shard at the horizon
            st.force_horizon = st.force_horizon.max(done);
        } else {
            // the force is synchronous at the engine interface: a
            // spilling force submits device writes up to `done`, so the
            // event clock follows (reads already in flight still
            // overlap the force — their completions are reaped
            // afterwards with done <= now)
            self.now = self.now.max(done);
        }
        self.wal.mark_flushed(horizon);
        let force_cause = self.wal_dev.force_cause();
        for m in &members {
            if m.probe_id != 0 {
                let scope = self.probe.resume(m.probe_id);
                // one bus borrow for both commit spans (QD fast path)
                if let Some(mut batch) = self.probe.batch() {
                    if t > m.enlisted {
                        batch.span(Layer::Wal, Cause::Queue, "group-wait", m.enlisted, t);
                    }
                    batch.span(Layer::Wal, force_cause, "log-force", t, done);
                }
                scope.close(done);
            }
            if m.kind == MemberKind::Prepare {
                // the vote: a failed force is a NO — the coordinator
                // turns it into a typed abort. The slot frees either
                // way; commit accounting waits for the decision.
                st.outbox.push(ShardEvent::Prepared {
                    txn: m.txn,
                    status: f.status,
                    done,
                    started: m.started,
                });
                st.slots[m.slot].state = SlotState::Idle { free_at: done };
                st.slots[m.slot].txn = None;
                continue;
            }
            let commit_force = done.since(m.enlisted);
            self.stats.commit_stall += commit_force;
            self.stats.commits += 1;
            let latency = done.since(m.started);
            self.txn_latency.record_duration(latency);
            self.commit_latency.record_duration(commit_force);
            if m.read_only {
                st.read_only_latency.record_duration(latency);
            } else {
                st.update_latency.record_duration(latency);
            }
            st.commit_order.push((m.txn, m.lsn));
            match m.kind {
                MemberKind::Commit => {
                    st.slots[m.slot].state = SlotState::Idle { free_at: done };
                    st.slots[m.slot].txn = None;
                }
                MemberKind::Decide => {
                    // slot-less: the participants' slots freed at their
                    // prepare forces; this force is the commit point
                    st.outbox.push(ShardEvent::Committed { txn: m.txn, done });
                }
                MemberKind::Prepare => {} // handled above
            }
            if self.cfg.checkpoint_every > 0 && self.stats.commits % self.cfg.checkpoint_every == 0
            {
                // a sharp checkpoint quiesces the engine (global pause),
                // exactly as in the serialized path
                self.now = self.now.max(done);
                self.checkpoint();
            }
        }
    }

    /// Enlist the coordinator's decision commit for cross-shard
    /// transaction `global` in this (home) shard's group: the single
    /// commit-point force of the two-phase protocol. `started` is the
    /// global transaction's earliest participant start (latency base).
    pub(crate) fn enlist_decision(
        &mut self,
        global: u64,
        started: SimTime,
        read_only: bool,
        st: &mut ExecState,
    ) {
        let commit_lsn = self.wal.append(LogRecord::Commit { txn: global });
        // the participants' prepare forces already paid for the update
        // payload; the decision forces only the commit record itself
        let force_bytes = 32;
        self.wal_dev.append(commit_lsn, force_bytes);
        let probe_id = if self.probe.is_enabled() {
            self.probe.open_command("decide", self.now).detach()
        } else {
            0
        };
        st.group.enlist(GroupMember {
            slot: usize::MAX,
            kind: MemberKind::Decide,
            txn: global,
            lsn: commit_lsn,
            enlisted: self.now,
            started,
            bytes: force_bytes,
            probe_id,
            read_only,
        });
    }

    /// Roll back this shard's share of an aborted cross-shard
    /// transaction: restore captured before-images wherever the aborted
    /// write is still visible (resident frame, stolen durable image, or
    /// an in-flight steal). RAM-only — the redo log keeps the records,
    /// but with no `Commit` anywhere recovery never replays them.
    /// Returns the number of slots restored.
    pub(crate) fn undo_participant(&mut self, global: u64, st: &mut ExecState) -> u64 {
        let Some(entries) = st.undo.remove(&global) else {
            return 0; // read-only share, or already rolled back
        };
        let mut restored = 0;
        for e in entries.iter().rev() {
            // only touch a slot that still carries the aborted write
            // (a later committed update supersedes the rollback)
            let owned = |img: &SlottedPage| {
                img.get(e.slot)
                    .map(|r| r.len() >= 8 && r[..8] == global.to_le_bytes())
                    .unwrap_or(false)
            };
            let undo_one = |img: &mut SlottedPage| match &e.before {
                Some(before) => {
                    img.update(e.slot, before);
                }
                None => {
                    img.delete(e.slot);
                }
            };
            if let Some(frame) = self.pool.get_mut(e.page, true) {
                if owned(frame) {
                    undo_one(frame);
                    restored += 1;
                }
            }
            if let Some(img) = self.durable.get_mut(&e.page) {
                if owned(img) {
                    undo_one(img);
                }
            }
            for (_, p, img) in self.in_flight.iter_mut() {
                if *p == e.page && owned(img) {
                    undo_one(img);
                }
            }
        }
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LegacyBackend, VisionBackend};
    use crate::engine::DbConfig;
    use crate::stack_backend::BlockStackBackend;
    use requiem_block::StackConfig;
    use requiem_ssd::SsdConfig;

    fn mixed_inputs(n: u64, pages: u64, write_every: u64) -> Vec<TxnInput> {
        (0..n)
            .map(|i| TxnInput {
                accesses: vec![
                    (
                        (i * 7) % pages,
                        (i % 16) as u16,
                        write_every > 0 && i % write_every == 0,
                    ),
                    ((i * 13 + 3) % pages, ((i + 5) % 16) as u16, false),
                ],
                log_bytes: 128,
            })
            .collect()
    }

    fn legacy_db(frames: usize) -> Database<LegacyBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: frames,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = LegacyBackend::new(ssd_cfg, cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    fn vision_db(frames: usize) -> Database<VisionBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: frames,
            ..DbConfig::default()
        };
        let be = VisionBackend::new(SsdConfig::modern(), cfg.data_pages, 1 << 22);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    fn stack_db(frames: usize) -> Database<BlockStackBackend> {
        let cfg = DbConfig {
            data_pages: 256,
            buffer_frames: frames,
            ..DbConfig::default()
        };
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        let be = BlockStackBackend::new(StackConfig::blk_mq(1), ssd_cfg, cfg.data_pages, 64);
        let mut db = Database::new(cfg, be);
        db.load();
        db
    }

    /// The tentpole invariant: concurrency 1 + prefetch off + immediate
    /// forces replays the serialized engine bit for bit.
    #[test]
    fn qd1_identity_legacy() {
        let inputs = mixed_inputs(60, 256, 3);
        let mut serial = legacy_db(32);
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = legacy_db(32);
        let report = conc.run_concurrent(&inputs, &ExecConfig::serialized());
        assert_eq!(report.txns, 60);
        assert_eq!(conc.now(), serial.now(), "clocks must agree");
        assert_eq!(conc.stats().commits, serial.stats().commits);
        assert_eq!(conc.stats().read_stall, serial.stats().read_stall);
        assert_eq!(conc.stats().steal_stall, serial.stats().steal_stall);
        assert_eq!(conc.stats().commit_stall, serial.stats().commit_stall);
        assert_eq!(
            conc.wal_backend().stats().log_forces,
            serial.wal_backend().stats().log_forces
        );
        assert_eq!(
            conc.wal_backend().stats().log_bytes,
            serial.wal_backend().stats().log_bytes
        );
        assert_eq!(
            conc.backend().stats().page_reads,
            serial.backend().stats().page_reads
        );
        assert_eq!(conc.txn_latency(), serial.txn_latency(), "histograms");
        assert_eq!(conc.commit_latency(), serial.commit_latency());
        assert_eq!(report.coalesced, 0);
        assert_eq!(report.prefetch.issued, 0);
    }

    #[test]
    fn qd1_identity_vision() {
        let inputs = mixed_inputs(40, 256, 2);
        let mut serial = vision_db(32);
        for t in &inputs {
            serial.execute(&t.accesses, t.log_bytes);
        }
        let mut conc = vision_db(32);
        conc.run_concurrent(&inputs, &ExecConfig::serialized());
        assert_eq!(conc.now(), serial.now(), "clocks must agree");
        assert_eq!(conc.txn_latency(), serial.txn_latency());
    }

    #[test]
    fn concurrency_overlaps_reads_and_beats_serial() {
        let inputs = mixed_inputs(120, 256, 0); // read-only: misses dominate
        let mut serial = stack_db(16);
        let r1 = serial.run_concurrent(&inputs, &ExecConfig::serialized());
        let mut conc = stack_db(16);
        let r8 = conc.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 8,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(8),
            },
        );
        assert!(
            r8.makespan < r1.makespan,
            "8-deep loop {} should beat serial {}",
            r8.makespan,
            r1.makespan
        );
        assert!(r8.tps > r1.tps);
    }

    #[test]
    fn coalescing_counts_and_returns_same_bytes() {
        // every transaction hammers the same page: with N in flight the
        // fetch must coalesce, and all of them see the installed image
        let inputs: Vec<TxnInput> = (0..8)
            .map(|i| TxnInput {
                accesses: vec![(7, i as u16, true)],
                log_bytes: 64,
            })
            .collect();
        let mut db = legacy_db(32);
        let report = db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        assert!(report.coalesced > 0, "same-page misses must coalesce");
        // all eight updates landed on the one page
        for i in 0..8u64 {
            assert_eq!(db.visible_owner(7, i as u16), i + 1);
        }
    }

    #[test]
    fn sequential_prefetch_wins_on_a_scan() {
        // a pure sequential scan over more pages than the pool holds:
        // readahead should convert most misses into wins
        let inputs: Vec<TxnInput> = (0..128u64)
            .map(|p| TxnInput {
                accesses: vec![(p, 0, false)],
                log_bytes: 32,
            })
            .collect();
        let mut plain = stack_db(16);
        let r0 = plain.run_concurrent(&inputs, &ExecConfig::serialized());
        let mut ra = stack_db(16);
        let r4 = ra.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 1,
                prefetch: PrefetchConfig::sequential(4),
                group: GroupCommitPolicy::immediate(),
            },
        );
        assert!(r4.prefetch.issued > 0);
        assert!(
            r4.prefetch.wins * 2 > r4.prefetch.issued,
            "sequential scan should win most speculations: {:?}",
            r4.prefetch
        );
        assert!(
            r4.makespan < r0.makespan,
            "readahead {} should beat demand-only {}",
            r4.makespan,
            r0.makespan
        );
    }

    #[test]
    fn group_commit_amortizes_forces_in_the_loop() {
        let inputs = mixed_inputs(64, 64, 1); // all writers
        let mut single = legacy_db(64);
        let r1 = single.run_concurrent(&inputs, &ExecConfig::serialized());
        let mut grouped = legacy_db(64);
        let r8 = grouped.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 8,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(8),
            },
        );
        assert!(r8.forces < r1.forces / 4, "{} vs {}", r8.forces, r1.forces);
        assert!(r8.mean_group > 4.0);
        assert!(r8.makespan < r1.makespan, "grouping should be faster");
    }

    #[test]
    fn commit_probe_spans_tile_wait_and_force() {
        let inputs = mixed_inputs(24, 64, 1);
        let mut db = legacy_db(64);
        let probe = requiem_sim::Probe::recording();
        db.attach_probe(probe.clone());
        db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        let summary = probe.summary();
        let force = summary
            .by_layer_cause
            .get(&(Layer::Wal, Cause::Transfer))
            .copied()
            .unwrap_or_default();
        assert!(force.count >= 24, "every commit carries a force span");
        let wait = summary
            .by_layer_cause
            .get(&(Layer::Wal, Cause::Queue))
            .copied()
            .unwrap_or_default();
        assert!(wait.count > 0, "grouped commits must show group-wait spans");
    }

    #[test]
    fn checkpoints_fire_in_the_concurrent_loop() {
        let inputs = mixed_inputs(40, 64, 1);
        let mut db = legacy_db(64);
        db.cfg.checkpoint_every = 10;
        db.run_concurrent(
            &inputs,
            &ExecConfig {
                concurrency: 4,
                prefetch: PrefetchConfig::off(),
                group: GroupCommitPolicy::batched(4),
            },
        );
        assert_eq!(db.stats().checkpoints, 4);
    }
}
