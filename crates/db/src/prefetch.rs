//! Readahead prefetching for the completion-driven engine.
//!
//! When a transaction misses on page *p*, the executor speculatively
//! submits the next `depth` pages in *logical* order alongside the
//! demand read — one batch, one doorbell. "Logical order" is pluggable:
//! [`PrefetchMode::Sequential`] follows page-id order (heap scans),
//! [`PrefetchMode::Chain`] follows an explicit successor map such as a
//! B+tree's leaf chain in key order ([`crate::btree::BTree::leaf_chain`]).
//!
//! Every speculative submission is attributed: a **win** is a demand
//! request that found its page already in flight or already installed by
//! a speculative read; everything else a speculative read bought is a
//! **loss** (wasted device work, possible pollution). Wins and losses
//! are counted in [`PrefetchStats`] and noted on the probe bus
//! (`prefetch-win` / `prefetch-loss` status counters in the probe JSON),
//! so an experiment can show not just that readahead helps but *when*.

use std::collections::{BTreeMap, BTreeSet};

/// What "the next K pages" means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchMode {
    /// Successor of page `p` is `p + 1` (mod the data-page count).
    Sequential,
    /// Explicit successor map (e.g. a B+tree leaf chain in key order).
    Chain(BTreeMap<u64, u64>),
}

/// Prefetcher configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Speculative pages submitted per demand miss (0 = off).
    pub depth: u32,
    /// Successor order.
    pub mode: PrefetchMode,
}

impl PrefetchConfig {
    /// Prefetching disabled — required for the QD-1 identity.
    pub fn off() -> Self {
        PrefetchConfig {
            depth: 0,
            mode: PrefetchMode::Sequential,
        }
    }

    /// Sequential readahead of `depth` pages.
    pub fn sequential(depth: u32) -> Self {
        PrefetchConfig {
            depth,
            mode: PrefetchMode::Sequential,
        }
    }

    /// Chain-following readahead of `depth` pages over an explicit
    /// successor map (`chain[i] → chain[i+1]` for a leaf chain slice).
    pub fn chain(depth: u32, leaf_chain: &[u64]) -> Self {
        let mut map = BTreeMap::new();
        for w in leaf_chain.windows(2) {
            map.insert(w[0], w[1]);
        }
        PrefetchConfig {
            depth,
            mode: PrefetchMode::Chain(map),
        }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Speculation outcome counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Speculative reads submitted.
    pub issued: u64,
    /// Demand requests served by a speculative read (page found in
    /// flight, or installed-but-untouched).
    pub wins: u64,
    /// Speculative reads that never served a demand request (finalized
    /// at end of run: `issued - wins`).
    pub losses: u64,
}

/// The readahead engine: picks targets and attributes outcomes.
#[derive(Debug)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    /// Pages installed by a speculative read and not yet demanded.
    speculative_resident: BTreeSet<u64>,
    stats: PrefetchStats,
}

impl Prefetcher {
    /// New prefetcher under `cfg`.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Prefetcher {
            cfg,
            speculative_resident: BTreeSet::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrefetchConfig {
        &self.cfg
    }

    /// True when prefetching is off.
    pub fn is_off(&self) -> bool {
        self.cfg.depth == 0
    }

    /// The `depth` successors of `page` in logical order (fewer when a
    /// chain ends). `data_pages` bounds sequential wrap-around.
    pub fn targets(&self, page: u64, data_pages: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.cfg.depth as usize);
        let mut cur = page;
        for _ in 0..self.cfg.depth {
            let next = match &self.cfg.mode {
                PrefetchMode::Sequential => (cur + 1) % data_pages.max(1),
                PrefetchMode::Chain(map) => match map.get(&cur) {
                    Some(&n) => n,
                    None => break,
                },
            };
            if next == page || out.contains(&next) {
                break; // wrapped around
            }
            out.push(next);
            cur = next;
        }
        out
    }

    /// A speculative read for `page` was submitted.
    pub fn note_issued(&mut self, page: u64) {
        self.stats.issued += 1;
        // a fresh fetch supersedes any stale installed-speculative record
        self.speculative_resident.remove(&page);
    }

    /// A speculative read completed with no demand waiter: the page is
    /// resident on speculation alone.
    pub fn note_installed(&mut self, page: u64) {
        self.speculative_resident.insert(page);
    }

    /// A demand request found `page` already in flight from a
    /// speculative read — a win.
    pub fn note_hit_in_flight(&mut self) {
        self.stats.wins += 1;
    }

    /// A demand request found `page` resident. Returns `true` (and
    /// counts a win) when the residency was bought by an untouched
    /// speculative read.
    pub fn note_demand_resident(&mut self, page: u64) -> bool {
        if self.speculative_resident.remove(&page) {
            self.stats.wins += 1;
            true
        } else {
            false
        }
    }

    /// A demand fetch is being issued for `page`: any stale speculative
    /// residency record is dropped (the page was evicted before use).
    pub fn note_demand_fetch(&mut self, page: u64) {
        self.speculative_resident.remove(&page);
    }

    /// Finalize at end of run: everything issued that never won is a
    /// loss. Returns the final stats.
    pub fn finalize(&mut self) -> PrefetchStats {
        self.stats.losses = self.stats.issued.saturating_sub(self.stats.wins);
        self.stats
    }

    /// Current (possibly pre-finalize) stats.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_targets_wrap_but_never_self() {
        let p = Prefetcher::new(PrefetchConfig::sequential(3));
        assert_eq!(p.targets(5, 100), vec![6, 7, 8]);
        assert_eq!(p.targets(98, 100), vec![99, 0, 1]);
        // tiny address space: stop instead of cycling back to the seed
        assert_eq!(p.targets(0, 2), vec![1]);
        assert_eq!(p.targets(0, 1), Vec::<u64>::new());
    }

    #[test]
    fn chain_targets_follow_the_leaf_chain_and_stop_at_the_end() {
        let chain = [10u64, 4, 7, 2];
        let p = Prefetcher::new(PrefetchConfig::chain(3, &chain));
        assert_eq!(p.targets(10, 1000), vec![4, 7, 2]);
        assert_eq!(p.targets(7, 1000), vec![2], "chain ends at 2");
        assert_eq!(p.targets(99, 1000), Vec::<u64>::new(), "off-chain page");
    }

    #[test]
    fn off_config_yields_no_targets() {
        let p = Prefetcher::new(PrefetchConfig::off());
        assert!(p.is_off());
        assert!(p.targets(5, 100).is_empty());
    }

    #[test]
    fn win_loss_attribution() {
        let mut p = Prefetcher::new(PrefetchConfig::sequential(2));
        p.note_issued(6);
        p.note_issued(7);
        p.note_issued(8);
        // 6: demand arrives while in flight
        p.note_hit_in_flight();
        // 7: installs quietly, demanded later
        p.note_installed(7);
        assert!(p.note_demand_resident(7));
        // a plain (demand-fetched) resident page is not a win
        assert!(!p.note_demand_resident(42));
        // 8: never demanded
        let s = p.finalize();
        assert_eq!(s.issued, 3);
        assert_eq!(s.wins, 2);
        assert_eq!(s.losses, 1);
    }
}
