//! The synchronous-persistence boundary: `WalBackend`.
//!
//! The paper's principle P1 (§3) says the two persistence patterns
//! deserve two *paths*: synchronous persistence (log forces) belongs on
//! byte-addressable PCM on the memory bus, while page data streams
//! asynchronously to flash. Before this split, log durability was a side
//! effect of the page backend — [`PersistenceBackend`]
//! (crate::backend::PersistenceBackend) carried `log_force`,
//! `truncate_log` and `log_read` next to the page I/O, and every backend
//! duplicated the circular-tail force loop.
//!
//! [`WalBackend`] extracts that path. The engine's group-commit ledger
//! talks exclusively to it; page backends do page I/O only. Two
//! implementations:
//!
//! * [`FlashWal`] — today's path. One generic force/truncate/scan engine
//!   over a [`LogDevice`] *port* onto the page backend's own device
//!   ([`BareSsdLog`], [`StackLog`], and the nameless port in
//!   [`coop`](crate::coop)). Sharing the device is load-bearing: the
//!   stacked-log pathology E13/E14 measure — the FTL dragging dead WAL
//!   segments through GC — only exists because log and data compete for
//!   the same flash.
//! * [`PcmWal`] — the vision path. Commit records persist byte-granular
//!   into a [`PcmDimm`] (line writes + persist barrier, Start-Gap wear
//!   accrual); no 4 KiB rounding, no flash program, no collector to
//!   inform at truncation.
//!
//! The force protocol is append/force-to-LSN: record byte costs are
//! enlisted with [`WalBackend::append`] as the engine's ledger admits
//! them, and [`WalBackend::force`] drains every enlisted record at or
//! below the horizon in one device interaction — exactly the byte stream
//! the old fused API produced, so the QD-1 identity anchor survives the
//! split.

use std::cell::RefCell;
use std::rc::Rc;

use requiem_block::IoStack;
use requiem_pcm::{PcmDimm, PcmTiming, WearSnapshot};
use requiem_sim::time::SimTime;
use requiem_sim::{Cause, IoClass, IoRequest, IoStatus};
use requiem_ssd::Ssd;

use crate::backend::worse_status;
use crate::page::PAGE_SIZE;
use crate::wal::Lsn;

/// I/O issued by a WAL backend, by class. These counters moved here from
/// `BackendStats` when the log path split off the page path.
#[derive(Debug, Default, Clone)]
pub struct WalStats {
    /// Records enlisted via [`WalBackend::append`].
    pub appends: u64,
    /// Bytes enlisted (force-accounting bytes, not encoded record bytes).
    pub append_bytes: u64,
    /// Forces that reached the device (an empty drain costs nothing and
    /// is not counted).
    pub log_forces: u64,
    /// Bytes of log forced durable (cumulative — the engine's truncation
    /// horizon is computed from this).
    pub log_bytes: u64,
    /// WAL segment images written to flash (0 for PCM: byte-granular
    /// persists write no page image). Counts toward the end-to-end
    /// write-amplification denominator.
    pub logical_writes: u64,
    /// Segments released by checkpoint truncation.
    pub log_trims: u64,
    /// Recovery scans performed.
    pub scans: u64,
    /// Bytes covered by recovery scans.
    pub scan_bytes: u64,
    /// Forces whose combined completion status was a failure
    /// (rejected/unrecoverable) rather than clean or recovered.
    pub force_failures: u64,
}

/// Completion of a [`WalBackend::force`]: when the log became durable and
/// the typed media status of the writes that made it so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalForce {
    /// Instant the log is durable up to the requested LSN (the committer
    /// waits until here).
    pub done: SimTime,
    /// Combined status of the device writes. A failure means durability
    /// was *not* established — the engine counts it and the records stay
    /// un-flushed from recovery's point of view.
    pub status: IoStatus,
}

/// The synchronous-persistence service: where log durability comes from.
///
/// Object-safe — the engine holds a `Box<dyn WalBackend>` so the page
/// backend type does not leak a second type parameter.
pub trait WalBackend {
    /// Enlist one record's force-accounting cost: `lsn` is its WAL
    /// position, `bytes` what a force must pay for it. RAM bookkeeping —
    /// free, no clock.
    fn append(&mut self, lsn: Lsn, bytes: u32);

    /// Make every enlisted record at or below `to` durable; returns the
    /// completion carrying the typed status. Synchronous — the committer
    /// waits until [`WalForce::done`]. Draining nothing is free.
    fn force(&mut self, now: SimTime, to: Lsn) -> WalForce;

    /// Checkpoint truncation: every log byte below `up_to_byte` is
    /// outside the redo horizon and will never be read again — release
    /// the segments that carried them (TRIM on a block device, exact
    /// name frees on a nameless one, nothing on PCM: no collector to
    /// inform). Background work: the caller's clock does not advance.
    fn truncate(&mut self, now: SimTime, up_to_byte: u64);

    /// Synchronous read of `bytes` of durable log starting at byte
    /// `offset` (restart recovery and media-recovery rebuilds). Returns
    /// the completion instant and the combined media status.
    fn recover_scan(&mut self, now: SimTime, offset: u64, bytes: u32) -> (SimTime, IoStatus);

    /// Traffic statistics.
    fn stats(&self) -> &WalStats;

    /// Short label for reports.
    fn label(&self) -> &'static str;

    /// Probe cause the engine charges a commit's force span to:
    /// [`Cause::Transfer`] for a block-device log, [`Cause::PcmPersist`]
    /// for byte-granular memory-bus persistence.
    fn force_cause(&self) -> Cause {
        Cause::Transfer
    }

    /// Wear state of the log medium, for backends that track it (PCM).
    fn wear(&self) -> Option<WearSnapshot> {
        None
    }
}

// ---------------------------------------------------------------------
// FlashWal: the one force loop, generic over a log-device port
// ---------------------------------------------------------------------

/// A port giving [`FlashWal`] segment-granular access to the device the
/// page backend already owns. `seg` is the *absolute* segment index
/// (never wraps); block ports fold it onto the circular LBA range,
/// the nameless port uses it as the write tag.
pub trait LogDevice {
    /// Write one log segment image; returns the completion.
    fn write_seg(&mut self, now: SimTime, seg: u64) -> (SimTime, IoStatus);

    /// Read one log segment, or `None` when the segment no longer exists
    /// on the device (truncated/retired — a scan skips it for free).
    fn read_seg(&mut self, now: SimTime, seg: u64) -> Option<(SimTime, IoStatus)>;

    /// Release one dead segment (background); true when the device
    /// actually held it.
    fn trim_seg(&mut self, now: SimTime, seg: u64) -> bool;

    /// Short label for reports.
    fn label(&self) -> &'static str;
}

/// The flash WAL: today's path, extracted. The circular-tail force loop
/// (rewrite the tail segment on every force — the classic small-
/// synchronous-write problem — spill full segments) and the lap-aware
/// truncation exist exactly once, here; the [`LogDevice`] port decides
/// what a segment write costs.
pub struct FlashWal<D: LogDevice> {
    dev: D,
    /// Circular log capacity in segments.
    log_pages: u64,
    /// Absolute byte tail (never wraps).
    log_tail: u64,
    /// Absolute segment index below which truncation already released
    /// the log.
    log_trimmed: u64,
    /// Enlisted, not-yet-forced records: `(lsn, force_bytes)`, in append
    /// (= LSN) order.
    pending: Vec<(Lsn, u32)>,
    stats: WalStats,
}

impl<D: LogDevice> FlashWal<D> {
    /// A WAL over `log_pages` circular segments of `dev`.
    pub fn new(dev: D, log_pages: u64) -> Self {
        FlashWal {
            dev,
            log_pages: log_pages.max(1),
            log_tail: 0,
            log_trimmed: 0,
            pending: Vec::new(),
            stats: WalStats::default(),
        }
    }
}

impl<D: LogDevice> WalBackend for FlashWal<D> {
    fn append(&mut self, lsn: Lsn, bytes: u32) {
        // non-strict: a steal force enlists its cost at `next_lsn`, and
        // the next record appended lands at that same byte offset
        debug_assert!(
            self.pending.last().map(|&(l, _)| l <= lsn).unwrap_or(true),
            "WAL appends must arrive in LSN order"
        );
        self.stats.appends += 1;
        self.stats.append_bytes += u64::from(bytes);
        self.pending.push((lsn, bytes));
    }

    fn force(&mut self, now: SimTime, to: Lsn) -> WalForce {
        let mut bytes: u64 = 0;
        self.pending.retain(|&(lsn, b)| {
            if lsn <= to {
                bytes += u64::from(b);
                false
            } else {
                true
            }
        });
        if bytes == 0 {
            // everything at the horizon is already durable
            return WalForce {
                done: now,
                status: IoStatus::Ok,
            };
        }
        self.stats.log_forces += 1;
        self.stats.log_bytes += bytes;
        let mut remaining = bytes;
        let mut t = now;
        let mut status = IoStatus::Ok;
        loop {
            let seg = self.log_tail / PAGE_SIZE as u64;
            let room = PAGE_SIZE as u64 - (self.log_tail % PAGE_SIZE as u64);
            let taken = remaining.min(room);
            self.stats.logical_writes += 1;
            let (done, st) = self.dev.write_seg(t, seg);
            t = done;
            status = worse_status(status, st);
            self.log_tail += taken;
            remaining -= taken;
            if remaining == 0 {
                break;
            }
        }
        if !status.is_success() {
            self.stats.force_failures += 1;
        }
        WalForce { done: t, status }
    }

    fn truncate(&mut self, now: SimTime, up_to_byte: u64) {
        let dead_end = up_to_byte / PAGE_SIZE as u64;
        // one past the last segment any force has touched
        let written_end = self.log_tail.div_ceil(PAGE_SIZE as u64);
        while self.log_trimmed < dead_end {
            let abs = self.log_trimmed;
            self.log_trimmed += 1;
            // a lap of the circular log reuses the slot: only the newest
            // writer may release it, older occupants were already
            // superseded by the overwrite itself
            if abs + self.log_pages < written_end {
                continue;
            }
            if self.dev.trim_seg(now, abs) {
                self.stats.log_trims += 1;
            }
        }
    }

    fn recover_scan(&mut self, now: SimTime, offset: u64, bytes: u32) -> (SimTime, IoStatus) {
        self.stats.scans += 1;
        self.stats.scan_bytes += u64::from(bytes);
        if bytes == 0 {
            return (now, IoStatus::Ok);
        }
        // recovery is offline: read every segment the byte range covers,
        // serialized
        let first = offset / PAGE_SIZE as u64;
        let last = (offset + u64::from(bytes) - 1) / PAGE_SIZE as u64;
        let mut t = now;
        let mut status = IoStatus::Ok;
        for seg in first..=last {
            if let Some((done, st)) = self.dev.read_seg(t, seg) {
                t = done;
                status = worse_status(status, st);
            }
        }
        (t, status)
    }

    fn stats(&self) -> &WalStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        self.dev.label()
    }
}

/// [`LogDevice`] port onto the bare flash SSD the
/// [`LegacyBackend`](crate::backend::LegacyBackend) owns: log segments
/// occupy LBAs `0..log_pages` of the shared device.
pub struct BareSsdLog {
    ssd: Rc<RefCell<Ssd>>,
    log_pages: u64,
}

impl BareSsdLog {
    /// Port onto `ssd`, folding segments onto LBAs `0..log_pages`.
    pub fn new(ssd: Rc<RefCell<Ssd>>, log_pages: u64) -> Self {
        BareSsdLog {
            ssd,
            log_pages: log_pages.max(1),
        }
    }
}

impl LogDevice for BareSsdLog {
    fn write_seg(&mut self, now: SimTime, seg: u64) -> (SimTime, IoStatus) {
        let lba = seg % self.log_pages;
        // a refused command (worn-out device) surfaces as a typed status
        // instead of tearing the engine down
        match self.ssd.borrow_mut().io(now, IoRequest::write(lba)) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn read_seg(&mut self, now: SimTime, seg: u64) -> Option<(SimTime, IoStatus)> {
        let lba = seg % self.log_pages;
        Some(match self.ssd.borrow_mut().io(now, IoRequest::read(lba)) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        })
    }

    fn trim_seg(&mut self, now: SimTime, seg: u64) -> bool {
        let lba = seg % self.log_pages;
        self.ssd
            .borrow_mut()
            .io(now, IoRequest::trim(lba).class(IoClass::Background))
            .is_ok()
    }

    fn label(&self) -> &'static str {
        "flash-wal"
    }
}

/// [`LogDevice`] port through the composed block-layer stack the
/// [`BlockStackBackend`](crate::stack_backend::BlockStackBackend) owns:
/// every segment write pays the OS submission path like the data traffic
/// around it.
pub struct StackLog {
    stack: Rc<RefCell<IoStack<Ssd>>>,
    log_pages: u64,
    /// First LBA of the log region (a shard's stripe starts here).
    base: u64,
    /// Submission core: a shard's log forces ride its own queue pair.
    core: usize,
}

impl StackLog {
    /// Port onto `stack`, folding segments onto LBAs `0..log_pages`.
    pub fn new(stack: Rc<RefCell<IoStack<Ssd>>>, log_pages: u64) -> Self {
        Self::with_region(stack, log_pages, 0, 0)
    }

    /// Port onto `stack`, folding segments onto LBAs
    /// `base..base + log_pages` and submitting on `core` — one shard's
    /// slice of a multi-queue deployment.
    pub fn with_region(
        stack: Rc<RefCell<IoStack<Ssd>>>,
        log_pages: u64,
        base: u64,
        core: usize,
    ) -> Self {
        StackLog {
            stack,
            log_pages: log_pages.max(1),
            base,
            core,
        }
    }
}

impl LogDevice for StackLog {
    fn write_seg(&mut self, now: SimTime, seg: u64) -> (SimTime, IoStatus) {
        let lba = self.base + seg % self.log_pages;
        let c = self
            .stack
            .borrow_mut()
            .submit(now, self.core, IoRequest::write(lba));
        (c.done, c.status)
    }

    fn read_seg(&mut self, now: SimTime, seg: u64) -> Option<(SimTime, IoStatus)> {
        let lba = self.base + seg % self.log_pages;
        let c = self
            .stack
            .borrow_mut()
            .submit(now, self.core, IoRequest::read(lba));
        Some((c.done, c.status))
    }

    fn trim_seg(&mut self, now: SimTime, seg: u64) -> bool {
        let lba = self.base + seg % self.log_pages;
        self.stack.borrow_mut().submit(
            now,
            self.core,
            IoRequest::trim(lba).class(IoClass::Background),
        );
        true
    }

    fn label(&self) -> &'static str {
        "stack-wal"
    }
}

// ---------------------------------------------------------------------
// PcmWal: byte-granular commit records on the memory bus
// ---------------------------------------------------------------------

/// Configuration of a standalone PCM log device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcmWalConfig {
    /// DIMM capacity in bytes (the circular log region).
    pub bytes: u64,
    /// PCM latency/endurance model.
    pub timing: PcmTiming,
    /// Start-Gap rotation period (100 is standard).
    pub gap_interval: u64,
}

impl Default for PcmWalConfig {
    fn default() -> Self {
        PcmWalConfig {
            bytes: 1 << 20,
            timing: PcmTiming::gen1(),
            gap_interval: 100,
        }
    }
}

/// Which medium carries the WAL. Page data streams to flash either way —
/// this only routes the *synchronous* persistence path (P1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WalConfig {
    /// The page backend's own flash device (today's design): the backend
    /// builds a [`FlashWal`] port onto it.
    #[default]
    Flash,
    /// A PCM DIMM on the memory bus (the paper's design): byte-granular
    /// commit records, no flash program per force.
    Pcm(PcmWalConfig),
}

impl WalConfig {
    /// The PCM path with default gen-1 timing and a 1 MiB log region.
    pub fn pcm() -> Self {
        WalConfig::Pcm(PcmWalConfig::default())
    }
}

/// The vision WAL: commit records persist byte-granular into PCM — line
/// writes plus a persist barrier, Start-Gap accruing wear underneath. No
/// 4 KiB rounding, no flash program, and truncation is free (in-place
/// medium: no collector to inform).
pub struct PcmWal {
    pcm: Rc<RefCell<PcmDimm>>,
    /// First byte of the log region inside the DIMM.
    log_base: u64,
    /// Circular log capacity in bytes.
    log_capacity: u64,
    /// Absolute byte tail (never wraps).
    log_tail: u64,
    pending: Vec<(Lsn, u32)>,
    stats: WalStats,
}

impl PcmWal {
    /// A WAL over its own DIMM per `cfg`.
    pub fn new(cfg: &PcmWalConfig) -> Self {
        let dimm = PcmDimm::new(cfg.bytes, cfg.timing.clone(), cfg.gap_interval);
        let capacity = dimm.capacity_bytes();
        PcmWal::with_dimm(Rc::new(RefCell::new(dimm)), 0, capacity)
    }

    /// A WAL over `log_capacity` bytes of a shared DIMM starting at
    /// `log_base` (the `VisionBackend` shares one DIMM between its log
    /// region and its steal-staging region).
    pub fn with_dimm(pcm: Rc<RefCell<PcmDimm>>, log_base: u64, log_capacity: u64) -> Self {
        PcmWal {
            pcm,
            log_base,
            log_capacity: log_capacity.max(1),
            log_tail: 0,
            pending: Vec::new(),
            stats: WalStats::default(),
        }
    }

    /// The DIMM (for latency and wear reporting).
    pub fn dimm(&self) -> Rc<RefCell<PcmDimm>> {
        Rc::clone(&self.pcm)
    }
}

impl WalBackend for PcmWal {
    fn append(&mut self, lsn: Lsn, bytes: u32) {
        // non-strict: a steal force enlists its cost at `next_lsn`, and
        // the next record appended lands at that same byte offset
        debug_assert!(
            self.pending.last().map(|&(l, _)| l <= lsn).unwrap_or(true),
            "WAL appends must arrive in LSN order"
        );
        self.stats.appends += 1;
        self.stats.append_bytes += u64::from(bytes);
        self.pending.push((lsn, bytes));
    }

    fn force(&mut self, now: SimTime, to: Lsn) -> WalForce {
        let mut bytes: u64 = 0;
        self.pending.retain(|&(lsn, b)| {
            if lsn <= to {
                bytes += u64::from(b);
                false
            } else {
                true
            }
        });
        if bytes == 0 {
            return WalForce {
                done: now,
                status: IoStatus::Ok,
            };
        }
        self.stats.log_forces += 1;
        self.stats.log_bytes += bytes;
        // a byte-granular persist — no 4 KiB rounding, no flash program,
        // no segment image (logical_writes stays 0)
        let len = bytes.min(self.log_capacity);
        let offset = self.log_tail % self.log_capacity;
        let offset = offset.min(self.log_capacity - len);
        self.log_tail += bytes;
        let data = vec![0xA5u8; len as usize];
        let done = self
            .pcm
            .borrow_mut()
            .persist(now, self.log_base + offset, &data);
        WalForce {
            done,
            status: IoStatus::Ok,
        }
    }

    fn truncate(&mut self, _now: SimTime, _up_to_byte: u64) {
        // in-place byte-addressable medium: the horizon moves in RAM and
        // the dead bytes will simply be overwritten — there is no
        // collector to inform and nothing to release
    }

    fn recover_scan(&mut self, now: SimTime, offset: u64, bytes: u32) -> (SimTime, IoStatus) {
        self.stats.scans += 1;
        self.stats.scan_bytes += u64::from(bytes);
        if bytes == 0 {
            return (now, IoStatus::Ok);
        }
        // the log lives in PCM: a byte-granular load, always clean (PCM
        // media faults are not modelled)
        let len = u64::from(bytes).min(self.log_capacity);
        let offset = offset % self.log_capacity;
        let offset = offset.min(self.log_capacity - len);
        let (done, _bytes) = self
            .pcm
            .borrow_mut()
            .load(now, self.log_base + offset, len as usize);
        (done, IoStatus::Ok)
    }

    fn stats(&self) -> &WalStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "pcm-wal"
    }

    fn force_cause(&self) -> Cause {
        Cause::PcmPersist
    }

    fn wear(&self) -> Option<WearSnapshot> {
        Some(self.pcm.borrow().wear_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_sim::time::SimDuration;
    use requiem_ssd::SsdConfig;

    fn bare_wal(log_pages: u64) -> FlashWal<BareSsdLog> {
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        let ssd = Rc::new(RefCell::new(Ssd::new(cfg)));
        FlashWal::new(BareSsdLog::new(ssd, log_pages), log_pages)
    }

    #[test]
    fn force_drains_only_records_at_or_below_horizon() {
        let mut w = bare_wal(64);
        w.append(Lsn(100), 32);
        w.append(Lsn(200), 32);
        w.append(Lsn(300), 32);
        let f = w.force(SimTime::ZERO, Lsn(200));
        assert!(f.done > SimTime::ZERO);
        assert_eq!(f.status, IoStatus::Ok);
        assert_eq!(w.stats().log_forces, 1);
        assert_eq!(w.stats().log_bytes, 64, "two records of 32 forced");
        // the third record is still pending
        let f2 = w.force(f.done, Lsn(300));
        assert_eq!(w.stats().log_bytes, 96);
        assert!(f2.done > f.done);
    }

    #[test]
    fn empty_force_is_free() {
        let mut w = bare_wal(64);
        w.append(Lsn(100), 32);
        let f = w.force(SimTime::ZERO, Lsn(100));
        // forcing the same horizon again touches no device
        let f2 = w.force(f.done, Lsn(100));
        assert_eq!(f2.done, f.done);
        assert_eq!(w.stats().log_forces, 1);
    }

    #[test]
    fn flash_force_spills_across_segments() {
        // 10 KiB of log = 3 segment images (tail rewrite + spill)
        let mut w = bare_wal(64);
        w.append(Lsn(1), 10 * 1024);
        w.force(SimTime::ZERO, Lsn(1));
        assert_eq!(w.stats().logical_writes, 3);
    }

    #[test]
    fn pcm_force_is_byte_granular_and_sub_microsecond_scale() {
        let mut p = PcmWal::new(&PcmWalConfig::default());
        let mut f = bare_wal(64);
        p.append(Lsn(1), 256);
        f.append(Lsn(1), 256);
        let tp = p.force(SimTime::ZERO, Lsn(1)).done.since(SimTime::ZERO);
        let tf = f.force(SimTime::ZERO, Lsn(1)).done.since(SimTime::ZERO);
        assert!(tp < SimDuration::from_micros(5), "pcm force {tp}");
        assert!(
            tf.as_nanos() > 10 * tp.as_nanos(),
            "flash {tf} vs pcm {tp}: the P1 latency gap"
        );
        assert_eq!(p.stats().logical_writes, 0, "no segment images on PCM");
        assert_eq!(p.force_cause(), Cause::PcmPersist);
        assert_eq!(f.force_cause(), Cause::Transfer);
    }

    #[test]
    fn pcm_wear_accrues_and_is_surfaced() {
        let mut p = PcmWal::new(&PcmWalConfig {
            bytes: 4096,
            timing: PcmTiming::gen1(),
            gap_interval: 4,
        });
        let mut t = SimTime::ZERO;
        for i in 0..200u64 {
            p.append(Lsn(i + 1), 64);
            t = p.force(t, Lsn(i + 1)).done;
        }
        let w = p.wear().expect("pcm tracks wear");
        assert!(w.total_line_writes > 0);
        assert!(w.gap_moves > 0, "start-gap rotated under the hot log head");
        assert!(w.per_line_writes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn pcm_recover_scan_reads_back_for_free_media() {
        let mut p = PcmWal::new(&PcmWalConfig::default());
        p.append(Lsn(1), 1024);
        let f = p.force(SimTime::ZERO, Lsn(1));
        let (done, st) = p.recover_scan(f.done, 0, 1024);
        assert!(done > f.done);
        assert_eq!(st, IoStatus::Ok);
        assert_eq!(p.stats().scans, 1);
        assert_eq!(p.stats().scan_bytes, 1024);
    }

    #[test]
    fn truncation_trims_dead_flash_segments_but_skips_lapped_slots() {
        let mut w = bare_wal(4);
        // write 8 full segments through a 4-segment circular log: the
        // first lap's slots were superseded by overwrite
        for i in 0..8u64 {
            w.append(Lsn((i + 1) * 10), PAGE_SIZE as u32);
            w.force(SimTime::ZERO, Lsn((i + 1) * 10));
        }
        w.truncate(SimTime::ZERO, 6 * PAGE_SIZE as u64);
        // segments 0..4 were lapped (tail at seg 8): only 4 and 5 trim
        assert_eq!(w.stats().log_trims, 2);
    }
}
