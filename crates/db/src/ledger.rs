//! The two-phase ledger: cross-shard atomic commit over the
//! group-commit WAL.
//!
//! A cross-shard transaction splits into one *participant* share per
//! shard it touches. Each share runs in its shard's closed loop like
//! any other transaction, but terminates with a [`Prepare`] record
//! whose group-commit force is that shard's durability **vote** (a
//! typed force failure is a NO). The ledger — plain coordinator state,
//! no device of its own — collects votes and decides:
//!
//! * **all YES** → the home shard enlists one slot-less *decision
//!   commit* ([`MemberKind::Decide`]) in its own group; that single
//!   force is the global commit point. Durable `Commit{G}` on the home
//!   shard therefore implies a durable `Prepare{G}` on every
//!   participant — the invariant the proptests check.
//! * **any NO** → typed abort: an [`Abort`] record on the home shard
//!   (informational; there is no commit to retract) and an in-memory
//!   rollback of every participant share that already applied, via the
//!   before-images the executor captured. Participants whose share is
//!   still queued run to a wasted prepare and are rolled back when
//!   their late vote arrives — deterministic, and honest about the
//!   cost of aborts.
//!
//! Recovery composes across shards: the committed set is the **union**
//! of durable `Commit` records everywhere
//! ([`Database::recover_with`](crate::Database::recover_with)), so a
//! participant's updates replay exactly when the home shard's decision
//! survived.
//!
//! Panic policy (PAN01): this module is lint-protected — fallible
//! outcomes are typed ([`LedgerAction`], [`TxnDecision`]), invariants
//! use `assert!` with a message.
//!
//! [`Prepare`]: crate::wal::LogRecord::Prepare
//! [`Abort`]: crate::wal::LogRecord::Abort
//! [`MemberKind::Decide`]: crate::wal::MemberKind::Decide

use std::collections::BTreeMap;

use requiem_sim::time::SimTime;
use requiem_sim::IoStatus;

/// Where a cross-shard transaction stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnDecision {
    /// Collecting prepare votes.
    Pending,
    /// All votes YES; the decision commit is enlisted (or in the home
    /// shard's mailbox) but its force has not landed yet.
    Committing,
    /// The decision force landed: globally committed.
    Committed,
    /// A vote was NO: globally aborted.
    Aborted,
}

/// One cross-shard transaction's ledger entry.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Coordinator shard (owner of the decision commit).
    pub home: usize,
    /// Every shard with a participant share (sorted, includes `home`).
    pub participants: Vec<usize>,
    /// True when no share dirties a page.
    pub read_only: bool,
    /// Votes received so far: shard → the prepare force's typed status.
    pub votes: BTreeMap<usize, IoStatus>,
    /// Earliest participant start seen (global latency base).
    pub started: Option<SimTime>,
    /// Current decision state.
    pub decision: TxnDecision,
    /// When the decision became final (commit force done / first NO).
    pub decided_at: Option<SimTime>,
}

/// What the coordinator must do after feeding the ledger one vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerAction {
    /// Keep collecting votes.
    None,
    /// All votes are in and YES: deliver a decision commit to the home
    /// shard once its clock reaches `at` (the last vote's force end).
    EnlistCommit {
        /// Coordinator shard to enlist on.
        home: usize,
        /// Earliest instant the decision may be enlisted.
        at: SimTime,
        /// Global latency base (earliest participant start).
        started: SimTime,
        /// True when no share dirtied a page.
        read_only: bool,
    },
    /// First NO vote: append the `Abort` record on `home` and roll back
    /// the shares on `undo` (every shard that already voted — their
    /// updates are applied; late voters are rolled back as they arrive).
    Abort {
        /// Home shard for the `Abort` record.
        home: usize,
        /// Shards to roll back now.
        undo: Vec<usize>,
    },
    /// A vote arrived for an already-aborted transaction: roll back
    /// that shard's share alone.
    UndoLate {
        /// The late-voting shard.
        shard: usize,
    },
}

/// Counters the ledger keeps (surfaced in the sharded report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Cross-shard transactions begun.
    pub cross_txns: u64,
    /// Prepare votes received.
    pub prepares: u64,
    /// Votes that were typed failures.
    pub prepare_failures: u64,
    /// Transactions whose decision commit force landed.
    pub committed: u64,
    /// Transactions aborted on a NO vote.
    pub aborted: u64,
}

/// Coordinator state for every in-flight (and settled) cross-shard
/// transaction. Keyed by the global transaction id — one namespace
/// across all shards, assigned by the coordinator.
#[derive(Debug, Default)]
pub struct TwoPhaseLedger {
    entries: BTreeMap<u64, LedgerEntry>,
    stats: LedgerStats,
}

impl TwoPhaseLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an entry for global transaction `txn`.
    pub fn begin(&mut self, txn: u64, home: usize, participants: Vec<usize>, read_only: bool) {
        assert!(
            participants.contains(&home),
            "home shard must hold a participant share"
        );
        assert!(
            participants.len() >= 2,
            "a cross-shard transaction needs at least two participants"
        );
        self.stats.cross_txns += 1;
        let prev = self.entries.insert(
            txn,
            LedgerEntry {
                home,
                participants,
                read_only,
                votes: BTreeMap::new(),
                started: None,
                decision: TxnDecision::Pending,
                decided_at: None,
            },
        );
        assert!(prev.is_none(), "duplicate global transaction id {txn}");
    }

    /// Feed one prepare vote: shard `shard`'s prepare force for `txn`
    /// ended at `done` with `status`; its share started at `started`.
    pub fn on_prepared(
        &mut self,
        txn: u64,
        shard: usize,
        status: IoStatus,
        done: SimTime,
        started: SimTime,
    ) -> LedgerAction {
        let Some(e) = self.entries.get_mut(&txn) else {
            return LedgerAction::None; // not a cross-shard txn: ignore
        };
        self.stats.prepares += 1;
        e.started = Some(e.started.map_or(started, |s| s.min(started)));
        e.votes.insert(shard, status);
        match e.decision {
            TxnDecision::Aborted => {
                // late vote after the decision fell: the share applied
                // (and maybe even prepared durably) for nothing
                if !status.is_success() {
                    self.stats.prepare_failures += 1;
                }
                LedgerAction::UndoLate { shard }
            }
            TxnDecision::Pending => {
                if !status.is_success() {
                    self.stats.prepare_failures += 1;
                    self.stats.aborted += 1;
                    e.decision = TxnDecision::Aborted;
                    e.decided_at = Some(done);
                    return LedgerAction::Abort {
                        home: e.home,
                        undo: e.votes.keys().copied().collect(),
                    };
                }
                if e.votes.len() == e.participants.len() {
                    e.decision = TxnDecision::Committing;
                    return LedgerAction::EnlistCommit {
                        home: e.home,
                        at: done,
                        started: e.started.unwrap_or(started),
                        read_only: e.read_only,
                    };
                }
                LedgerAction::None
            }
            // a vote after the decision commit was enlisted cannot
            // happen (the commit needs every vote first); be defensive
            TxnDecision::Committing | TxnDecision::Committed => LedgerAction::None,
        }
    }

    /// The decision commit's force landed at `done`: `txn` is globally
    /// committed.
    pub fn on_committed(&mut self, txn: u64, done: SimTime) {
        if let Some(e) = self.entries.get_mut(&txn) {
            assert!(
                e.decision == TxnDecision::Committing,
                "decision force for txn {txn} in state {:?}",
                e.decision
            );
            e.decision = TxnDecision::Committed;
            e.decided_at = Some(done);
            self.stats.committed += 1;
        }
    }

    /// True when every entry reached a final decision — part of the
    /// coordinator's done-check.
    pub fn is_quiescent(&self) -> bool {
        self.entries
            .values()
            .all(|e| matches!(e.decision, TxnDecision::Committed | TxnDecision::Aborted))
    }

    /// The entry for global transaction `txn`, if it is cross-shard.
    pub fn entry(&self, txn: u64) -> Option<&LedgerEntry> {
        self.entries.get(&txn)
    }

    /// All entries, keyed by global transaction id.
    pub fn entries(&self) -> impl Iterator<Item = (&u64, &LedgerEntry)> {
        self.entries.iter()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + requiem_sim::SimDuration::from_nanos(ns)
    }

    #[test]
    fn unanimous_yes_commits_on_the_last_vote() {
        let mut l = TwoPhaseLedger::new();
        l.begin(7, 0, vec![0, 2], false);
        assert_eq!(
            l.on_prepared(7, 0, IoStatus::Ok, t(100), t(10)),
            LedgerAction::None
        );
        let act = l.on_prepared(7, 2, IoStatus::Ok, t(250), t(5));
        assert_eq!(
            act,
            LedgerAction::EnlistCommit {
                home: 0,
                at: t(250),
                started: t(5),
                read_only: false,
            },
            "last YES vote triggers the decision, latency from earliest start"
        );
        assert!(!l.is_quiescent(), "committing is not final");
        l.on_committed(7, t(400));
        assert!(l.is_quiescent());
        assert_eq!(l.entry(7).map(|e| e.decision), Some(TxnDecision::Committed));
        assert_eq!(l.stats().committed, 1);
    }

    #[test]
    fn a_no_vote_aborts_and_late_votes_roll_back() {
        let mut l = TwoPhaseLedger::new();
        l.begin(9, 1, vec![0, 1, 3], true);
        l.on_prepared(9, 1, IoStatus::Ok, t(50), t(1));
        let act = l.on_prepared(9, 0, IoStatus::Unrecoverable, t(80), t(2));
        assert_eq!(
            act,
            LedgerAction::Abort {
                home: 1,
                undo: vec![0, 1],
            },
            "abort rolls back every share that already ran"
        );
        assert!(l.is_quiescent(), "aborted is final even with a vote out");
        // shard 3's share was still queued; its vote arrives later
        assert_eq!(
            l.on_prepared(9, 3, IoStatus::Ok, t(500), t(3)),
            LedgerAction::UndoLate { shard: 3 }
        );
        assert_eq!(l.stats().aborted, 1);
        assert_eq!(l.stats().prepare_failures, 1);
        assert_eq!(l.stats().committed, 0);
    }

    #[test]
    fn votes_for_unknown_txns_are_ignored() {
        let mut l = TwoPhaseLedger::new();
        assert_eq!(
            l.on_prepared(42, 0, IoStatus::Ok, t(1), t(0)),
            LedgerAction::None
        );
        assert!(l.is_quiescent());
    }
}
