//! The sharded execution path: N executor shards over one device,
//! stepped by a deterministic core clock.
//!
//! [`ShardedDb`] owns `N` [`Database`] instances — each with its own
//! submission context (queue pair via
//! [`BlockStackBackend::shards`](crate::stack_backend::BlockStackBackend::shards)),
//! its own buffer-pool partition, its own WAL region, and a hash
//! partition of the keyspace (`page % N`). The shards never touch each
//! other's state; the only cross-shard machinery is the
//! [`TwoPhaseLedger`] riding on the existing group-commit WAL.
//!
//! ## The coordinator loop
//!
//! Each shard is the *same* completion-driven executor
//! ([`Database::run_concurrent`]'s building blocks, not a copy): the
//! coordinator computes every shard's next wake instant — runnable work
//! at its current clock, its next device completion, slot/group timers,
//! or a deliverable commit decision — and a [`CoreClock`] picks the
//! earliest, breaking ties round-robin from the last grant. The picked
//! shard advances to that instant and runs its `quiesce`/`reap` loop to
//! exhaustion, exactly as the single-threaded executor would. With one
//! shard the coordinator collapses structurally into
//! `run_concurrent` — the same calls in the same order on the same
//! state — which is the **QD-1 × 1-shard bit-identity** anchor the
//! proptests pin.
//!
//! ## Cross-shard transactions
//!
//! A transaction whose accesses land on more than one partition is
//! split into per-shard *shares* at submission time, all under one
//! global id. Each share prepares ([`LogRecord::Prepare`]) instead of
//! committing; prepare votes flow through the shard's
//! [`ShardEvent`] outbox into the ledger; a unanimous-YES verdict posts
//! a *decision commit* to the home shard's mailbox, deliverable once
//! the home clock reaches the last vote's force end — one more
//! group-commit member ([`MemberKind::Decide`]) whose force is the
//! global commit point. A NO vote (typed force failure under fault
//! injection) aborts: an [`LogRecord::Abort`] on the home shard and an
//! in-memory before-image rollback on every shard whose share applied.
//!
//! ## Modeling caveat
//!
//! Shard clocks are loosely coupled: the coordinator steps shards in
//! wake-time order, so a shard's clock can run ahead of a peer's by at
//! most one step. Cross-clock messages (votes, decisions) are delivered
//! at `max(sender done, receiver now)` — never into a receiver's past —
//! so the interleaving is causal and, because every choice flows from
//! the core clock's deterministic pick, bit-reproducible at a fixed
//! seed.
//!
//! Panic policy (PAN01): this module is lint-protected — fallible
//! outcomes are typed, invariants use `assert!` with a message.
//!
//! [`LogRecord::Prepare`]: crate::wal::LogRecord::Prepare
//! [`LogRecord::Abort`]: crate::wal::LogRecord::Abort
//! [`MemberKind::Decide`]: crate::wal::MemberKind::Decide

use std::collections::{BTreeMap, BTreeSet};

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{CoreClock, Histogram};

use crate::backend::PersistenceBackend;
use crate::engine::Database;
use crate::exec::{
    ExecConfig, ExecReport, ExecState, PlannedTxn, ShardEvent, SlotState, TxnInput, TxnRole,
};
use crate::ledger::{LedgerAction, LedgerStats, TwoPhaseLedger};
use crate::wal::LogRecord;

/// A decision commit in flight to its home shard: created when the last
/// prepare vote lands, delivered once the home clock reaches `at`.
#[derive(Debug, Clone, Copy)]
struct Decision {
    home: usize,
    txn: u64,
    /// Earliest delivery instant (the last vote's force end).
    at: SimTime,
    /// Global latency base (earliest participant start).
    started: SimTime,
    read_only: bool,
}

/// What a sharded run measured, merged across shards.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Each shard's own closed-loop report (participant shares count as
    /// that shard's transactions).
    pub per_shard: Vec<ExecReport>,
    /// Global transactions offered.
    pub txns: u64,
    /// Global transactions committed (single-shard commits plus
    /// cross-shard decision commits).
    pub committed: u64,
    /// Cross-shard transactions attempted.
    pub cross_txns: u64,
    /// Cross-shard transactions aborted on a NO vote.
    pub aborted: u64,
    /// Prepare forces that came back as typed failures.
    pub prepare_failures: u64,
    /// Wall-clock (virtual) span: run start to the last shard's end.
    pub makespan: SimDuration,
    /// Committed global transactions per second of virtual time.
    pub tps: f64,
    /// Shared log forces summed across shards.
    pub forces: u64,
    /// End-to-end read-only latency, merged across shards
    /// ([`Histogram::merge`] — each global transaction counted once).
    pub read_only_latency: Histogram,
    /// End-to-end update latency, merged across shards.
    pub update_latency: Histogram,
}

/// N executor shards over one device, plus the two-phase ledger.
///
/// Construction pairs each [`Database`] with a backend already bound to
/// its own submission core and LBA stripe (see
/// [`BlockStackBackend::shards`](crate::stack_backend::BlockStackBackend::shards));
/// `data_pages` is the *global* keyspace, partitioned `page % N` with
/// local page `page / N` — so every shard's engine must be configured
/// with `data_pages / N` pages.
#[derive(Debug)]
pub struct ShardedDb<B: PersistenceBackend> {
    shards: Vec<Database<B>>,
    /// Global keyspace size (pages), before partitioning.
    data_pages: u64,
    ledger: TwoPhaseLedger,
    /// Global transaction id namespace (shards never allocate).
    next_global: u64,
}

impl<B: PersistenceBackend> ShardedDb<B> {
    /// Wrap `shards` engines over the global `data_pages` keyspace.
    pub fn new(shards: Vec<Database<B>>, data_pages: u64) -> Self {
        let n = shards.len() as u64;
        assert!(n >= 1, "a sharded database needs at least one shard");
        assert!(
            data_pages % n == 0,
            "global data_pages {data_pages} must divide evenly over {n} shards"
        );
        let mut shards = shards;
        for db in &mut shards {
            assert!(
                db.cfg.data_pages == data_pages / n,
                "each shard must be configured with data_pages / N local pages"
            );
            // sharded submission is multi-queue by construction: a
            // shard submits into a peer's parked force window, so the
            // device must accept per-stream (not global) time order
            db.backend.relax_submit_order();
        }
        ShardedDb {
            shards,
            data_pages,
            ledger: TwoPhaseLedger::new(),
            next_global: 1,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global keyspace size in pages.
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    /// Shard `i`'s engine (inspection: WAL, stats, probes).
    pub fn shard(&self, i: usize) -> &Database<B> {
        &self.shards[i]
    }

    /// Mutable access to shard `i`'s engine (probe attachment).
    pub fn shard_mut(&mut self, i: usize) -> &mut Database<B> {
        &mut self.shards[i]
    }

    /// The cross-shard ledger (inspection for tests and benches).
    pub fn ledger(&self) -> &TwoPhaseLedger {
        &self.ledger
    }

    /// The shard a global page belongs to.
    pub fn shard_of(&self, page: u64) -> usize {
        ((page % self.data_pages) % self.shards.len() as u64) as usize
    }

    /// Load every shard's partition, then align the shard clocks so the
    /// run starts from a common instant.
    pub fn load(&mut self) {
        for db in &mut self.shards {
            db.load();
        }
        self.align_clocks();
    }

    fn align_clocks(&mut self) {
        let t = self
            .shards
            .iter()
            .map(|db| db.now)
            .max()
            .unwrap_or(SimTime::ZERO);
        for db in &mut self.shards {
            db.now = t;
        }
    }

    /// Split global `inputs` into per-shard input queues and id/role
    /// assignments, registering cross-shard transactions in the ledger.
    /// Everything is planned up front — the run itself makes no
    /// partitioning choices, which keeps replay deterministic.
    fn split(&mut self, inputs: &[TxnInput]) -> (Vec<Vec<TxnInput>>, Vec<Vec<PlannedTxn>>) {
        let n = self.shards.len();
        let mut plans: Vec<Vec<TxnInput>> = vec![Vec::new(); n];
        let mut assigned: Vec<Vec<PlannedTxn>> = vec![Vec::new(); n];
        for input in inputs {
            let id = self.next_global;
            self.next_global += 1;
            // partition the accesses; per-shard access order preserves
            // the global order
            let mut shares: BTreeMap<usize, Vec<(u64, u16, bool)>> = BTreeMap::new();
            for &(page, slot, dirty) in &input.accesses {
                let g = page % self.data_pages;
                shares.entry((g % n as u64) as usize).or_default().push((
                    g / n as u64,
                    slot,
                    dirty,
                ));
            }
            if shares.len() <= 1 {
                // single-shard (or access-free): an ordinary local
                // transaction on its partition, ledger never involved
                let (s, accesses) = shares.into_iter().next().unwrap_or((0, Vec::new()));
                plans[s].push(TxnInput {
                    accesses,
                    log_bytes: input.log_bytes,
                });
                assigned[s].push(PlannedTxn {
                    id,
                    role: TxnRole::Local,
                });
                continue;
            }
            // cross-shard: one participant share per touched partition,
            // home = the first access's shard, log payload split across
            // the shares (each prepare forces its own slice)
            let home = input
                .accesses
                .first()
                .map(|&(page, _, _)| self.shard_of(page))
                .unwrap_or(0);
            let read_only = !input.accesses.iter().any(|a| a.2);
            let k = shares.len() as u32;
            self.ledger
                .begin(id, home, shares.keys().copied().collect(), read_only);
            for (s, accesses) in shares {
                plans[s].push(TxnInput {
                    accesses,
                    log_bytes: (input.log_bytes / k).max(32),
                });
                assigned[s].push(PlannedTxn {
                    id,
                    role: TxnRole::Participant,
                });
            }
        }
        (plans, assigned)
    }

    /// Run global `inputs` to completion across the shards: each shard
    /// a `cfg.concurrency`-deep closed loop, the core clock picking who
    /// steps, the ledger deciding cross-shard fates. See the module
    /// docs for the loop and the 1-shard identity.
    pub fn run(&mut self, inputs: &[TxnInput], cfg: &ExecConfig) -> ShardedReport {
        let n = self.shards.len();
        let depth = cfg.concurrency.max(1);
        let stats_before = self.ledger.stats();
        self.align_clocks();
        let started_at = self
            .shards
            .first()
            .map(|db| db.now)
            .unwrap_or(SimTime::ZERO);
        let (plans, assigned) = self.split(inputs);

        let mut states: Vec<ExecState> = Vec::with_capacity(n);
        let mut coalesced_before: Vec<u64> = Vec::with_capacity(n);
        for (s, db) in self.shards.iter_mut().enumerate() {
            assert!(db.loaded, "call load() before executing transactions");
            db.backend
                .set_read_window(depth + cfg.prefetch.depth as usize);
            coalesced_before.push(db.pool.stats().coalesced);
            let mut st = ExecState::new(depth, db.now, &cfg.prefetch);
            st.assigned = assigned[s].clone();
            // group forces park their completion in `force_horizon`
            // instead of advancing the shard clock, so peer shards keep
            // submitting into the force's latency window (the overlap a
            // real multi-queue host gets for free)
            st.async_force = true;
            states.push(st);
        }

        let mut clock = CoreClock::new(n);
        let mut mailbox: Vec<Decision> = Vec::new();

        loop {
            // every shard's next wake instant
            let mut wakes: Vec<Option<SimTime>> = Vec::with_capacity(n);
            for s in 0..n {
                let db = &mut self.shards[s];
                let st = &states[s];
                let now = db.now;
                let deliverable = mailbox.iter().any(|d| d.home == s && d.at <= now);
                let refillable = st.issued < plans[s].len()
                    && st.slots.iter().any(
                        |sl| matches!(sl.state, SlotState::Idle { free_at } if free_at <= now),
                    );
                let runnable = st
                    .slots
                    .iter()
                    .any(|sl| matches!(sl.state, SlotState::Run { ready_at } if ready_at <= now));
                let completion_ready = db
                    .backend
                    .next_read_done()
                    .map(|t| t <= now)
                    .unwrap_or(false);
                let w = if deliverable
                    || refillable
                    || runnable
                    || completion_ready
                    || st.group.due(&cfg.group, now)
                {
                    Some(now)
                } else {
                    // quiescent at `now`: next future event, a pending
                    // force completion, or a queued decision not yet
                    // deliverable
                    let mut w = db.next_event(plans[s].len(), cfg, st);
                    if st.force_horizon > now {
                        let fh = st.force_horizon;
                        w = Some(w.map_or(fh, |x| x.min(fh)));
                    }
                    if let Some(at) = mailbox.iter().filter(|d| d.home == s).map(|d| d.at).min() {
                        let at = at.max(now);
                        w = Some(w.map_or(at, |x| x.min(at)));
                    }
                    w
                };
                wakes.push(w);
            }

            let events: Vec<(usize, ShardEvent)> = match clock.pick(&wakes) {
                Some((s, t)) => {
                    let db = &mut self.shards[s];
                    let st = &mut states[s];
                    db.now = db.now.max(t);
                    // deliver due decision commits in arrival order
                    let mut i = 0;
                    while i < mailbox.len() {
                        if mailbox[i].home == s && mailbox[i].at <= db.now {
                            let d = mailbox.remove(i);
                            db.enlist_decision(d.txn, d.started, d.read_only, st);
                        } else {
                            i += 1;
                        }
                    }
                    // the single-executor inner loop, verbatim
                    loop {
                        db.quiesce(&plans[s], cfg, st);
                        if !db.reap(st) {
                            break;
                        }
                    }
                    st.outbox.drain(..).map(|ev| (s, ev)).collect()
                }
                None => {
                    // nothing scheduled anywhere: the only way forward
                    // is forcing an undersized group (same fallback as
                    // the single-executor loop, lowest shard first)
                    let Some(s) = (0..n).find(|&s| !states[s].group.is_empty()) else {
                        break; // all quiet: the run is complete
                    };
                    let t = self.shards[s].now;
                    self.shards[s].force_group(t, &mut states[s]);
                    states[s].outbox.drain(..).map(|ev| (s, ev)).collect()
                }
            };

            // route force outcomes through the ledger
            for (s, ev) in events {
                match ev {
                    ShardEvent::Prepared {
                        txn,
                        status,
                        done,
                        started,
                    } => match self.ledger.on_prepared(txn, s, status, done, started) {
                        LedgerAction::None => {}
                        LedgerAction::EnlistCommit {
                            home,
                            at,
                            started,
                            read_only,
                        } => {
                            mailbox.push(Decision {
                                home,
                                txn,
                                at,
                                started,
                                read_only,
                            });
                        }
                        LedgerAction::Abort { home, undo } => {
                            // typed abort: an informational record on the
                            // home log (RAM append — there is no commit to
                            // retract, so nothing forces) plus a rollback
                            // of every share that already applied
                            self.shards[home].wal.append(LogRecord::Abort { txn });
                            for p in undo {
                                self.shards[p].undo_participant(txn, &mut states[p]);
                            }
                        }
                        LedgerAction::UndoLate { shard } => {
                            self.shards[shard].undo_participant(txn, &mut states[shard]);
                        }
                    },
                    ShardEvent::Committed { txn, done } => {
                        self.ledger.on_committed(txn, done);
                    }
                }
            }
        }

        // the loop only exits fully drained; pin that down
        for (s, st) in states.iter().enumerate() {
            assert!(
                st.issued == plans[s].len()
                    && st.all_idle()
                    && st.pending.is_empty()
                    && st.group.is_empty(),
                "shard {s} exited the run with work outstanding"
            );
        }
        assert!(mailbox.is_empty(), "undelivered decision commits remain");
        assert!(
            self.ledger.is_quiescent(),
            "cross-shard transactions left undecided"
        );

        // per-shard reports, then align the clocks on the global end
        let mut per_shard: Vec<ExecReport> = Vec::with_capacity(n);
        for (s, st) in states.into_iter().enumerate() {
            let report = self.shards[s].finish_run(started_at, coalesced_before[s], st);
            per_shard.push(report);
        }
        self.align_clocks();
        let end = self.shards.first().map(|db| db.now).unwrap_or(started_at);

        let delta = |f: fn(&LedgerStats) -> u64| {
            let after = self.ledger.stats();
            f(&after) - f(&stats_before)
        };
        let committed: u64 = per_shard.iter().map(|r| r.commit_order.len() as u64).sum();
        let mut read_only_latency = Histogram::new();
        let mut update_latency = Histogram::new();
        for r in &per_shard {
            read_only_latency.merge(&r.read_only_latency);
            update_latency.merge(&r.update_latency);
        }
        let makespan = end.since(started_at);
        let secs = makespan.as_secs_f64();
        ShardedReport {
            txns: inputs.len() as u64,
            committed,
            cross_txns: delta(|s| s.cross_txns),
            aborted: delta(|s| s.aborted),
            prepare_failures: delta(|s| s.prepare_failures),
            makespan,
            tps: if secs > 0.0 {
                committed as f64 / secs
            } else {
                0.0
            },
            forces: per_shard.iter().map(|r| r.forces).sum(),
            read_only_latency,
            update_latency,
            per_shard,
        }
    }

    /// Simulated crash of the whole deployment: every shard loses its
    /// volatile state at its current instant.
    pub fn crash(&mut self) {
        for db in &mut self.shards {
            db.crash();
        }
    }

    /// Recover every shard against the *union* of durable `Commit`
    /// records across all shards — a cross-shard transaction's commit
    /// record lives only on its home shard, but its updates live on
    /// every participant ([`Database::recover_with`]). Returns the
    /// total records replayed.
    pub fn recover(&mut self) -> u64 {
        let committed: BTreeSet<u64> = self
            .shards
            .iter()
            .flat_map(|db| {
                db.wal().durable_records().filter_map(|(_, r)| match r {
                    LogRecord::Commit { txn } => Some(*txn),
                    _ => None,
                })
            })
            .collect();
        let mut replayed = 0;
        for db in &mut self.shards {
            replayed += db.recover_with(Some(&committed));
        }
        self.align_clocks();
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DbConfig;
    use crate::ledger::TxnDecision;
    use crate::stack_backend::BlockStackBackend;
    use requiem_block::StackConfig;
    use requiem_ssd::SsdConfig;

    fn sharded(n: usize) -> ShardedDb<BlockStackBackend> {
        DbConfig::builder()
            .data_pages(64)
            .log_pages(16)
            .buffer_frames(32)
            .shards(n)
            .build_sharded_stack(StackConfig::blk_mq(n as u32), SsdConfig::modern())
    }

    fn mixed_inputs(n: u64, pages: u64, cross_every: u64) -> Vec<TxnInput> {
        (0..n)
            .map(|i| {
                let p = (i * 7) % pages;
                let mut accesses = vec![(p, (i % 16) as u16, true)];
                if cross_every > 0 && i % cross_every == 0 {
                    // touch the next residue class too: guaranteed
                    // cross-shard for any shard count > 1
                    accesses.push(((p + 1) % pages, (i % 16) as u16, true));
                }
                TxnInput {
                    accesses,
                    log_bytes: 128,
                }
            })
            .collect()
    }

    #[test]
    fn single_shard_commits_everything_locally() {
        let mut db = sharded(1);
        let report = db.run(&mixed_inputs(24, 64, 3), &ExecConfig::serialized());
        assert_eq!(report.txns, 24);
        assert_eq!(report.committed, 24);
        assert_eq!(report.cross_txns, 0, "one shard: nothing crosses");
        assert_eq!(db.ledger().stats().cross_txns, 0);
        assert_eq!(db.shard(0).stats().commits, 24);
    }

    #[test]
    fn cross_shard_txns_two_phase_commit() {
        let mut db = sharded(2);
        // txn 1 spans shards 0 and 1; txn 2 stays on shard 0
        let inputs = vec![
            TxnInput {
                accesses: vec![(0, 0, true), (1, 0, true)],
                log_bytes: 128,
            },
            TxnInput {
                accesses: vec![(2, 1, true)],
                log_bytes: 128,
            },
        ];
        let report = db.run(&inputs, &ExecConfig::serialized());
        assert_eq!(report.committed, 2);
        assert_eq!(report.cross_txns, 1);
        assert_eq!(report.aborted, 0);
        let entry = db.ledger().entry(1).expect("txn 1 is cross-shard");
        assert_eq!(entry.decision, TxnDecision::Committed);
        assert_eq!(entry.participants, vec![0, 1]);
        // the commit point lives only on the home shard; both shards
        // hold a durable prepare
        for s in 0..2 {
            let has_prepare = db
                .shard(s)
                .wal()
                .durable_records()
                .any(|(_, r)| matches!(r, LogRecord::Prepare { txn: 1 }));
            assert!(has_prepare, "shard {s} must hold a durable Prepare");
        }
        let commits: Vec<usize> = (0..2)
            .filter(|&s| {
                db.shard(s)
                    .wal()
                    .durable_records()
                    .any(|(_, r)| matches!(r, LogRecord::Commit { txn: 1 }))
            })
            .collect();
        assert_eq!(commits, vec![entry.home], "commit record only on home");
    }

    #[test]
    fn cross_shard_updates_survive_crash_via_union_recovery() {
        let mut db = sharded(2);
        let inputs = vec![TxnInput {
            accesses: vec![(0, 3, true), (1, 3, true)],
            log_bytes: 128,
        }];
        db.run(&inputs, &ExecConfig::serialized());
        db.crash();
        db.recover();
        // global page 1 lives on shard 1, local page 0; the update must
        // replay there even though shard 1 only holds a Prepare record
        assert_eq!(db.shard_mut(1).visible_owner(0, 3), 1);
        assert_eq!(db.shard_mut(0).visible_owner(0, 3), 1);
    }

    #[test]
    fn sharded_replay_is_deterministic() {
        for n in [2usize, 4] {
            let inputs = mixed_inputs(40, 64, 4);
            let cfg = ExecConfig {
                concurrency: 4,
                ..ExecConfig::serialized()
            };
            let a = sharded(n).run(&inputs, &cfg);
            let b = sharded(n).run(&inputs, &cfg);
            assert_eq!(a.makespan, b.makespan, "{n} shards: makespan");
            assert_eq!(a.forces, b.forces, "{n} shards: forces");
            for s in 0..n {
                assert_eq!(
                    a.per_shard[s].commit_order, b.per_shard[s].commit_order,
                    "{n} shards: shard {s} commit order"
                );
            }
        }
    }
}
