//! # requiem-db — a miniature database storage manager
//!
//! The paper's audience is database systems researchers; its §3 vision is
//! ultimately about how a **database storage manager** should talk to
//! storage. This crate is a compact but complete storage manager built to
//! test that vision:
//!
//! * [`page`] — slotted pages with LSNs (the unit of buffering and I/O);
//! * [`heap`] — heap files of records with free-space tracking;
//! * [`btree`] — a page-based B+tree index (`u64 → Rid`);
//! * [`buffer`] — a clock buffer pool with a steal policy (dirty eviction
//!   forces a synchronous write — one of the paper's two synchronous
//!   patterns);
//! * [`wal`] — a redo write-ahead log with group commit (the other
//!   synchronous pattern);
//! * [`backend`] — the persistence boundary, with two implementations:
//!   - **Legacy**: everything (log and data, double-write journal) goes
//!     through the block interface of one flash SSD;
//!   - **Vision**: the paper's principle P1 — synchronous log forces and
//!     buffer steals go to a PCM DIMM on the memory bus, asynchronous data
//!     traffic goes to the flash SSD using atomic writes (no double-write
//!     journal) and trim on free.
//! * [`engine`] — transaction execution over all of the above, with
//!   crash/recovery (redo replay) support and group commit;
//! * [`manager`] — the pluggable [`StorageManager`] layer: the trait is
//!   generic over the device's handle type, so the block-backed heap
//!   manager (handles are LBAs, relocations structurally silent) and the
//!   cooperating-logs manager (handles are device-chosen
//!   [`PhysName`](requiem_iface::PhysName)s, patched by upcalls) plug
//!   into the same engine;
//! * [`coop`] — the cooperating-logs manager itself: nameless writes,
//!   eager frees, upcall-patched [`pagetable`], checkpoints as native
//!   atomic batches, WAL truncation as exact name frees — one garbage
//!   collector in the whole stack (E14 measures what the second one
//!   cost);
//! * [`kvstore`] — a SILT-flavoured key-value store over nameless writes
//!   (the paper's ref [14] rebuilt on the §3 interface);
//! * [`shard`] — the sharded execution path: N executor shards, each
//!   with its own submission context, keyspace partition, and
//!   buffer-pool slice, stepped by a deterministic core clock;
//! * [`ledger`] — two-phase atomic commit for cross-shard transactions,
//!   riding on the group-commit WAL (prepare votes, one decision
//!   force, typed aborts).
//!
//! Virtual time discipline: RAM operations are free; every device
//! interaction advances the clock through the backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod btree;
pub mod buffer;
pub mod config;
pub mod coop;
pub mod engine;
pub mod exec;
pub mod heap;
pub mod kvstore;
pub mod ledger;
pub mod manager;
pub mod page;
pub mod pagetable;
pub mod prefetch;
pub mod shard;
pub mod stack_backend;
pub mod wal;
pub mod walbackend;

pub use backend::{
    CommandTag, LegacyBackend, PageRead, PersistenceBackend, ReadShim, VisionBackend,
};
pub use config::DbBuilder;
pub use coop::CoopLogBackend;
pub use engine::{Database, DbConfig, TxnOutcome};
pub use exec::{ExecConfig, ExecReport, TxnInput};
pub use kvstore::NamelessKv;
pub use ledger::{LedgerStats, TwoPhaseLedger, TxnDecision};
pub use manager::StorageManager;
pub use page::{PageId, Rid, SlottedPage, PAGE_SIZE};
pub use pagetable::PageTable;
pub use prefetch::{PrefetchConfig, PrefetchMode, PrefetchStats};
pub use shard::{ShardedDb, ShardedReport};
pub use stack_backend::BlockStackBackend;
pub use wal::GroupCommitPolicy;
pub use walbackend::{FlashWal, PcmWal, PcmWalConfig, WalBackend, WalConfig, WalForce, WalStats};
