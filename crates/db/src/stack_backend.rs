//! A persistence backend routed through the composed block-layer
//! [`IoStack`]: the storage manager's traffic pays the OS submission
//! path, queue locks, doorbells, and IRQ/polling completion costs that
//! [`LegacyBackend`](crate::backend::LegacyBackend) (which talks to the
//! bare device) leaves out.
//!
//! This is the backend the completion-driven engine showcases: its
//! batched read path is implemented directly over
//! [`IoStack::submit_batch`] / [`IoStack::poll_completions`], so a DB
//! queue depth of N turns into N commands resident in the device-side
//! in-flight window — the paper's Figure-1 parallelism finally reaching
//! transaction throughput. Layout and traffic classes are identical to
//! the legacy backend (circular log + data + double-write journal on one
//! flash SSD behind the block interface).

use std::cell::{Ref, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use requiem_block::{IoStack, StackConfig};
use requiem_sim::time::SimTime;
use requiem_sim::IoStatus;
use requiem_ssd::{IoClass, IoRequest, Lpn, Ssd, SsdConfig};

use crate::backend::{BackendStats, CommandTag, PageRead, PersistenceBackend};
use crate::page::PageId;
use crate::walbackend::{FlashWal, StackLog, WalBackend};

/// The block-stack backend: one flash SSD behind the full OS I/O stack.
pub struct BlockStackBackend {
    /// Shared with the WAL port ([`make_wal`](PersistenceBackend::make_wal)):
    /// log forces pay the same block-layer path as the page traffic.
    stack: Rc<RefCell<IoStack<Ssd>>>,
    /// LBA layout (log, data, journal), as in the legacy backend.
    log_pages: u64,
    data_base: u64,
    journal_base: u64,
    data_pages: u64,
    /// First LBA of this backend's region. A standalone backend owns
    /// the whole device (base 0); a shard of a multi-queue deployment
    /// owns a disjoint `[log | data | journal]` stripe.
    lba_base: u64,
    /// Submission/completion core this backend drives. Each shard's
    /// traffic rides its own queue pair; contention happens below, on
    /// the shared channels.
    core: usize,
    /// Use TRIM on frees (off by default, like the legacy stack).
    pub use_trim: bool,
    /// Batched reads in flight: host tag → page.
    pending: BTreeMap<u64, PageId>,
    /// Read completions reaped early (while draining a synchronous
    /// journal batch), waiting for the next poll.
    ready: Vec<PageRead>,
    /// Tag namespace for everything that goes through `submit_batch`.
    next_tag: u64,
    stats: BackendStats,
}

impl std::fmt::Debug for BlockStackBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStackBackend")
            .field("stats", &self.stats)
            .finish()
    }
}

impl BlockStackBackend {
    /// Lay out `data_pages` of data, `log_pages` of circular log, and an
    /// equal-size journal area on one device behind `stack_cfg`.
    ///
    /// # Panics
    /// Panics if the device is too small for the layout.
    pub fn new(
        stack_cfg: StackConfig,
        ssd_cfg: SsdConfig,
        data_pages: u64,
        log_pages: u64,
    ) -> Self {
        let ssd = Ssd::new(ssd_cfg);
        let exported = ssd.capacity().exported_pages;
        let needed = log_pages + 2 * data_pages;
        assert!(
            needed <= exported,
            "device too small: need {needed} pages, exported {exported}"
        );
        BlockStackBackend {
            stack: Rc::new(RefCell::new(IoStack::new(stack_cfg, ssd))),
            log_pages,
            data_base: log_pages,
            journal_base: log_pages + data_pages,
            data_pages,
            lba_base: 0,
            core: 0,
            use_trim: false,
            pending: BTreeMap::new(),
            ready: Vec::new(),
            next_tag: 0,
            stats: BackendStats::default(),
        }
    }

    /// Build `shards` backends over ONE device and ONE block stack:
    /// shard `i` submits on core `i` (its own queue pair and in-flight
    /// window) and owns the LBA stripe
    /// `[i * stripe, (i+1) * stripe)` with the usual
    /// `[log | data | journal]` layout inside, where
    /// `stripe = log_pages + 2 * data_pages`. `data_pages` here is the
    /// *per-shard* data-region size. Host tags are namespaced per core
    /// so traces stay unambiguous.
    ///
    /// # Panics
    /// Panics if `stack_cfg` has fewer cores than `shards`, or the
    /// device is too small for `shards` stripes.
    pub fn shards(
        stack_cfg: StackConfig,
        ssd_cfg: SsdConfig,
        shards: usize,
        data_pages: u64,
        log_pages: u64,
    ) -> Vec<Self> {
        let shards = shards.max(1);
        assert!(
            stack_cfg.cores as usize >= shards,
            "stack must expose one core per shard ({} < {shards})",
            stack_cfg.cores
        );
        let mut ssd = Ssd::new(ssd_cfg);
        // sharded clocks are loosely coupled: commands from different
        // queue pairs (and a shard's own submissions during a parked
        // force window) interleave out of global time order, exactly as
        // NVMe multi-SQ — each stream stays monotone
        ssd.relax_submit_order();
        let exported = ssd.capacity().exported_pages;
        let stripe = log_pages + 2 * data_pages;
        let needed = stripe * shards as u64;
        assert!(
            needed <= exported,
            "device too small: need {needed} pages ({shards} shards x {stripe}), exported {exported}"
        );
        let stack = Rc::new(RefCell::new(IoStack::new(stack_cfg, ssd)));
        (0..shards)
            .map(|i| BlockStackBackend {
                stack: Rc::clone(&stack),
                log_pages,
                data_base: log_pages,
                journal_base: log_pages + data_pages,
                data_pages,
                lba_base: i as u64 * stripe,
                core: i,
                use_trim: false,
                pending: BTreeMap::new(),
                ready: Vec::new(),
                next_tag: (i as u64) << 48,
                stats: BackendStats::default(),
            })
            .collect()
    }

    /// The block stack (for software-share reporting).
    pub fn stack(&self) -> Ref<'_, IoStack<Ssd>> {
        self.stack.borrow()
    }

    /// The underlying device (for write-amplification reporting).
    pub fn ssd(&self) -> Ref<'_, Ssd> {
        Ref::map(self.stack.borrow(), |s| s.backend())
    }

    fn data_lpn(&self, page: PageId) -> Lpn {
        assert!(page.0 < self.data_pages, "page id beyond data region");
        Lpn(self.lba_base + self.data_base + page.0)
    }

    fn fresh_tag(&mut self) -> CommandTag {
        self.next_tag += 1;
        CommandTag(self.next_tag)
    }

    /// Submit `reqs` as one batch and drain the completion queue until
    /// every one of them has been reaped; returns the latest completion
    /// instant. Read completions that happen to become ready while we
    /// drain are buffered into `self.ready` for the next poll — the
    /// batch must not swallow them.
    fn run_batch_to_completion(&mut self, now: SimTime, reqs: &[IoRequest]) -> SimTime {
        if reqs.is_empty() {
            return now;
        }
        let batch: BTreeSet<u64> = reqs.iter().map(|r| r.tag.0).collect();
        self.stack.borrow_mut().submit_batch(now, self.core, reqs);
        let mut outstanding = batch;
        let mut t = now;
        while !outstanding.is_empty() {
            let Some(next) = self.stack.borrow().next_completion_time(self.core) else {
                // nothing left in flight but tags unaccounted — a batch
                // member was dropped by the stack; stop honestly rather
                // than spin (cannot happen with the current stack)
                break;
            };
            for c in self.stack.borrow_mut().poll_completions(next, self.core) {
                if outstanding.remove(&c.tag.0) {
                    t = t.max(c.done);
                } else if let Some(page) = self.pending.remove(&c.tag.0) {
                    self.ready.push(PageRead {
                        tag: c.tag,
                        page,
                        done: c.done,
                        status: c.status,
                    });
                }
            }
        }
        t
    }
}

impl PersistenceBackend for BlockStackBackend {
    fn make_wal(&mut self) -> Box<dyn WalBackend> {
        // identical layout policy to the legacy backend, but every log
        // write pays the block-layer path like the page traffic around
        // it — in this backend's own stripe, on its own core
        Box::new(FlashWal::new(
            StackLog::with_region(
                Rc::clone(&self.stack),
                self.log_pages,
                self.lba_base,
                self.core,
            ),
            self.log_pages,
        ))
    }

    fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.page_writes += 1;
        self.stats.logical_writes += 1;
        let lpn = self.data_lpn(page);
        self.stack
            .borrow_mut()
            .submit(
                now,
                self.core,
                IoRequest::write(lpn.0).class(IoClass::Background),
            )
            .done
    }

    fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.steal_writes += 1;
        self.stats.logical_writes += 1;
        let lpn = self.data_lpn(page);
        self.stack
            .borrow_mut()
            .submit(now, self.core, IoRequest::write(lpn.0))
            .done
    }

    fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, IoStatus) {
        self.stats.page_reads += 1;
        let lpn = self.data_lpn(page);
        let c = self
            .stack
            .borrow_mut()
            .submit(now, self.core, IoRequest::read(lpn.0));
        (c.done, c.status)
    }

    fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime {
        if pages.is_empty() {
            return now;
        }
        self.stats.batches += 1;
        self.stats.page_writes += pages.len() as u64;
        self.stats.logical_writes += pages.len() as u64;
        // torn-write safety through the block interface = double-write
        // journal, but both phases ride the queue-pair path: journal
        // copies as one batch, barrier (drain), then in-place writes as a
        // second batch
        let journal: Vec<IoRequest> = pages
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let tag = self.fresh_tag();
                IoRequest::write(self.lba_base + self.journal_base + i as u64).tag(tag)
            })
            .collect();
        let t1 = self.run_batch_to_completion(now, &journal);
        let in_place: Vec<IoRequest> = pages
            .iter()
            .map(|&p| {
                let tag = self.fresh_tag();
                IoRequest::write(self.data_lpn(p).0).tag(tag)
            })
            .collect();
        self.run_batch_to_completion(t1, &in_place)
    }

    fn free_page(&mut self, now: SimTime, page: PageId) {
        self.stats.frees += 1;
        if self.use_trim {
            let lpn = self.data_lpn(page);
            self.stack.borrow_mut().submit(
                now,
                self.core,
                IoRequest::trim(lpn.0).class(IoClass::Background),
            );
        }
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "stack-block"
    }

    fn attach_probe(&mut self, probe: requiem_sim::Probe) {
        self.stack.borrow_mut().attach_probe(probe);
    }

    fn relax_submit_order(&mut self) {
        self.stack.borrow_mut().backend_mut().relax_submit_order();
    }

    fn submit_reads(&mut self, now: SimTime, pages: &[PageId]) -> Vec<CommandTag> {
        let reqs: Vec<IoRequest> = pages
            .iter()
            .map(|&p| {
                self.stats.page_reads += 1;
                let tag = self.fresh_tag();
                self.pending.insert(tag.0, p);
                IoRequest::read(self.data_lpn(p).0).tag(tag)
            })
            .collect();
        self.stack.borrow_mut().submit_batch(now, self.core, &reqs)
    }

    fn poll(&mut self, now: SimTime) -> Vec<PageRead> {
        let mut out: Vec<PageRead> = Vec::new();
        // early-reaped completions first (they finished before `now`)
        self.ready.retain(|r| {
            if r.done <= now {
                out.push(*r);
                false
            } else {
                true
            }
        });
        out.sort_by_key(|r| (r.done, r.tag.0));
        for c in self.stack.borrow_mut().poll_completions(now, self.core) {
            if let Some(page) = self.pending.remove(&c.tag.0) {
                out.push(PageRead {
                    tag: c.tag,
                    page,
                    done: c.done,
                    status: c.status,
                });
            }
        }
        out
    }

    fn next_read_done(&mut self) -> Option<SimTime> {
        let r = self.ready.iter().map(|r| r.done).min();
        match (r, self.stack.borrow().next_completion_time(self.core)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn reads_in_flight(&mut self) -> usize {
        self.pending.len() + self.ready.len()
    }

    fn set_read_window(&mut self, depth: usize) {
        debug_assert!(
            self.pending.is_empty() && self.ready.is_empty(),
            "window change with reads in flight"
        );
        self.stack
            .borrow_mut()
            .set_core_inflight_window(self.core, depth.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Lsn;

    fn backend() -> BlockStackBackend {
        let mut ssd_cfg = SsdConfig::modern();
        ssd_cfg.buffer.capacity_pages = 0;
        BlockStackBackend::new(StackConfig::blk_mq(1), ssd_cfg, 1024, 64)
    }

    #[test]
    fn sync_ops_advance_time_and_count() {
        let mut b = backend();
        let mut w = b.make_wal();
        let t1 = b.page_write(SimTime::ZERO, PageId(0));
        let (t2, st) = b.page_read(t1, PageId(0));
        assert!(t2 > t1);
        assert_eq!(st, IoStatus::Ok);
        w.append(Lsn(1), 256);
        let t3 = w.force(t2, Lsn(1)).done;
        assert!(t3 > t2);
        assert_eq!(b.stats().page_writes, 1);
        assert_eq!(b.stats().page_reads, 1);
        assert_eq!(w.stats().log_forces, 1);
        assert_eq!(w.label(), "stack-wal");
    }

    #[test]
    fn page_batch_journals_then_writes_in_place() {
        let mut b = backend();
        let pages: Vec<PageId> = (0..8).map(PageId).collect();
        let done = b.page_batch(SimTime::ZERO, &pages);
        assert!(done > SimTime::ZERO);
        assert_eq!(
            b.ssd().metrics().host_writes,
            16,
            "double-write journal writes twice"
        );
        assert_eq!(b.reads_in_flight(), 0);
    }

    #[test]
    fn batched_reads_overlap_on_the_device() {
        let mut b = backend();
        // precondition: write the pages so reads hit mapped LPNs
        let mut t = SimTime::ZERO;
        for p in 0..16u64 {
            t = b.page_write(t, PageId(p));
        }
        // serialized reference
        let mut serial = t;
        for p in 0..16u64 {
            let (done, _) = b.page_read(serial, PageId(p));
            serial = done;
        }
        // batched at depth 8 over the same (now warmer) device state
        b.set_read_window(8);
        let pages: Vec<PageId> = (0..16).map(PageId).collect();
        let tags = b.submit_reads(serial, &pages);
        assert_eq!(tags.len(), 16);
        assert_eq!(b.reads_in_flight(), 16);
        let mut last = serial;
        let mut got = 0;
        while b.reads_in_flight() > 0 {
            let next = b.next_read_done().expect("reads in flight");
            for r in PersistenceBackend::poll(&mut b, next) {
                last = last.max(r.done);
                got += 1;
            }
        }
        assert_eq!(got, 16);
        let batched_span = last.since(serial);
        let serial_span = serial.since(t);
        assert!(
            batched_span < serial_span,
            "batched {batched_span} should beat serialized {serial_span}"
        );
    }

    #[test]
    fn recover_scan_covers_the_byte_range() {
        let mut b = backend();
        let mut w = b.make_wal();
        w.append(Lsn(1), 10 * 1024);
        let t1 = w.force(SimTime::ZERO, Lsn(1)).done;
        let reads_before = b.ssd().metrics().host_reads;
        let (t2, st) = w.recover_scan(t1, 0, 10 * 1024);
        assert!(t2 > t1);
        assert_eq!(st, IoStatus::Ok);
        assert_eq!(b.ssd().metrics().host_reads - reads_before, 3);
    }
}
