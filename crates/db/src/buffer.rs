//! The buffer pool: clock eviction, pin counts, dirty tracking, steals.
//!
//! The paper's principle P1 singles out **buffer steals under memory
//! pressure** as one of the two synchronous persistence patterns: when the
//! pool must evict a dirty page to make room, someone waits for a write.
//! The pool reports steals to the caller, who routes them through the
//! persistence backend (legacy: a flash page write on the blocking path;
//! vision: a cheap PCM staging write).
//!
//! The pool is purely in-memory; all I/O decisions surface as
//! [`EvictOutcome`] values for the engine to act on.

use std::collections::BTreeMap;

use crate::page::{PageId, SlottedPage};

/// One frame of the pool.
#[derive(Debug)]
struct Frame {
    page_id: PageId,
    page: SlottedPage,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// What happened when a frame was needed.
#[derive(Debug, PartialEq, Eq)]
pub enum EvictOutcome {
    /// A free or clean frame was used; no I/O implied.
    Clean,
    /// A dirty page had to be stolen: the caller must write `page_id`
    /// (with the returned image) before reusing the frame.
    Steal {
        /// The evicted dirty page.
        page_id: PageId,
        /// Its image at eviction time.
        image: Box<SlottedPage>,
    },
}

/// Statistics of pool behaviour.
#[derive(Debug, Default, Clone)]
pub struct PoolStats {
    /// Requests satisfied without I/O.
    pub hits: u64,
    /// Requests that missed (caller had to fetch).
    pub misses: u64,
    /// Dirty evictions (synchronous writes on the legacy path).
    pub steals: u64,
    /// Clean evictions.
    pub clean_evictions: u64,
    /// Requests that found their page already being fetched and joined
    /// the in-flight fetch instead of issuing a second device command.
    pub coalesced: u64,
}

/// A clock-replacement buffer pool.
///
/// Besides resident frames, the pool tracks pages **in flight**: a fetch
/// has been submitted but its completion has not installed the page yet.
/// Concurrent requests for such a page coalesce — they register as
/// waiters on the one outstanding device command instead of issuing
/// their own ([`BufferPool::begin_fetch`] / [`BufferPool::add_waiter`] /
/// [`BufferPool::complete_fetch`]). In-flight pages occupy no frame; the
/// frame is claimed at completion time.
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: BTreeMap<PageId, usize>,
    hand: usize,
    /// Fetches in flight: page → waiter cookies (opaque to the pool; the
    /// engine uses transaction-slot indices).
    in_flight: BTreeMap<PageId, Vec<u64>>,
    stats: PoolStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BufferPool {
    /// Create a pool of `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity),
            map: BTreeMap::new(),
            hand: 0,
            in_flight: BTreeMap::new(),
            stats: PoolStats::default(),
        }
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// True if `page_id` is resident.
    pub fn contains(&self, page_id: PageId) -> bool {
        self.map.contains_key(&page_id)
    }

    /// Get a resident page mutably, marking it referenced (and dirty if
    /// `for_write`). Pins are the caller's responsibility via
    /// [`BufferPool::pin`]/[`BufferPool::unpin`]. Returns `None` on miss.
    pub fn get_mut(&mut self, page_id: PageId, for_write: bool) -> Option<&mut SlottedPage> {
        match self.map.get(&page_id) {
            Some(&i) => {
                self.stats.hits += 1;
                let f = &mut self.frames[i];
                f.referenced = true;
                if for_write {
                    f.dirty = true;
                }
                Some(&mut f.page)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Read-only access without touching statistics (internal checks).
    pub fn peek(&self, page_id: PageId) -> Option<&SlottedPage> {
        self.map.get(&page_id).map(|&i| &self.frames[i].page)
    }

    /// Pin a resident page (prevents eviction).
    ///
    /// # Panics
    /// Panics if the page is not resident.
    pub fn pin(&mut self, page_id: PageId) {
        let &i = self.map.get(&page_id).expect("pin of non-resident page");
        self.frames[i].pins += 1;
    }

    /// Unpin a resident page.
    ///
    /// # Panics
    /// Panics if the page is not resident or not pinned.
    pub fn unpin(&mut self, page_id: PageId) {
        let &i = self.map.get(&page_id).expect("unpin of non-resident page");
        let f = &mut self.frames[i];
        assert!(f.pins > 0, "unpin of unpinned page");
        f.pins -= 1;
    }

    /// Install a page image (after a fetch or fresh allocation), evicting
    /// if the pool is full. Returns the eviction outcome so the caller can
    /// perform the steal write.
    ///
    /// # Panics
    /// Panics if the page is already resident, or if every frame is pinned.
    pub fn install(&mut self, page_id: PageId, page: SlottedPage, dirty: bool) -> EvictOutcome {
        assert!(
            !self.map.contains_key(&page_id),
            "page {page_id:?} already resident"
        );
        let outcome = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_id,
                page,
                dirty,
                pins: 0,
                referenced: true,
            });
            self.map.insert(page_id, self.frames.len() - 1);
            return EvictOutcome::Clean;
        } else {
            // clock sweep: find an unpinned, unreferenced victim
            let n = self.frames.len();
            let mut spins = 0usize;
            loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % n;
                let f = &mut self.frames[i];
                if f.pins > 0 {
                    spins += 1;
                    assert!(spins < 3 * n, "every frame is pinned");
                    continue;
                }
                if f.referenced {
                    f.referenced = false;
                    spins += 1;
                    assert!(spins < 3 * n, "clock cannot find a victim");
                    continue;
                }
                // victim found
                let old_id = f.page_id;
                let was_dirty = f.dirty;
                let image = std::mem::take(&mut f.page);
                f.page_id = page_id;
                f.page = page;
                f.dirty = dirty;
                f.referenced = true;
                self.map.remove(&old_id);
                self.map.insert(page_id, i);
                if was_dirty {
                    self.stats.steals += 1;
                    break EvictOutcome::Steal {
                        page_id: old_id,
                        image: Box::new(image),
                    };
                } else {
                    self.stats.clean_evictions += 1;
                    break EvictOutcome::Clean;
                }
            }
        };
        outcome
    }

    /// Start a fetch for `page_id` if none is in flight. Returns `true`
    /// when this call started the fetch (the caller must submit the
    /// device read and later call [`BufferPool::complete_fetch`]);
    /// `false` when a fetch is already in flight (join it with
    /// [`BufferPool::add_waiter`]).
    ///
    /// # Panics
    /// Panics if the page is already resident — fetching a resident page
    /// is an engine bug.
    pub fn begin_fetch(&mut self, page_id: PageId) -> bool {
        assert!(
            !self.map.contains_key(&page_id),
            "fetch of resident page {page_id:?}"
        );
        if self.in_flight.contains_key(&page_id) {
            return false;
        }
        self.in_flight.insert(page_id, Vec::new());
        true
    }

    /// True when a fetch for `page_id` is in flight.
    pub fn fetch_in_flight(&self, page_id: PageId) -> bool {
        self.in_flight.contains_key(&page_id)
    }

    /// Number of fetches in flight.
    pub fn fetches_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Join the in-flight fetch of `page_id` as `waiter` (an opaque
    /// cookie echoed back by [`BufferPool::complete_fetch`]). Counts a
    /// coalesced request. No-op when no fetch is in flight (the caller
    /// should have checked [`BufferPool::fetch_in_flight`]).
    pub fn add_waiter(&mut self, page_id: PageId, waiter: u64) {
        if let Some(ws) = self.in_flight.get_mut(&page_id) {
            ws.push(waiter);
            self.stats.coalesced += 1;
        }
    }

    /// Complete the in-flight fetch of `page_id`: install the image
    /// (evicting if needed) and return the eviction outcome together
    /// with the waiters that coalesced onto this fetch, in registration
    /// order.
    ///
    /// # Panics
    /// Panics (inside [`BufferPool::install`]) if every frame is pinned.
    pub fn complete_fetch(
        &mut self,
        page_id: PageId,
        page: SlottedPage,
        dirty: bool,
    ) -> (EvictOutcome, Vec<u64>) {
        let waiters = self.in_flight.remove(&page_id).unwrap_or_default();
        let outcome = self.install(page_id, page, dirty);
        (outcome, waiters)
    }

    /// Mark a resident page clean (after its write-back completed).
    pub fn mark_clean(&mut self, page_id: PageId) {
        if let Some(&i) = self.map.get(&page_id) {
            self.frames[i].dirty = false;
        }
    }

    /// Snapshot of all dirty resident pages (for checkpointing).
    pub fn dirty_pages(&self) -> Vec<(PageId, SlottedPage)> {
        self.frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| (f.page_id, f.page.clone()))
            .collect()
    }

    /// Drop every frame (simulated crash: volatile state vanishes,
    /// including fetches in flight — their completions are orphaned).
    pub fn crash(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.in_flight.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(tag: &[u8]) -> SlottedPage {
        let mut p = SlottedPage::new();
        p.insert(tag).unwrap();
        p
    }

    #[test]
    fn install_and_hit() {
        let mut bp = BufferPool::new(2);
        assert_eq!(
            bp.install(PageId(1), page_with(b"one"), false),
            EvictOutcome::Clean
        );
        assert!(bp.contains(PageId(1)));
        assert!(bp.get_mut(PageId(1), false).is_some());
        assert_eq!(bp.stats().hits, 1);
        assert!(bp.get_mut(PageId(9), false).is_none());
        assert_eq!(bp.stats().misses, 1);
    }

    #[test]
    fn clean_eviction_has_no_io() {
        let mut bp = BufferPool::new(2);
        bp.install(PageId(1), page_with(b"a"), false);
        bp.install(PageId(2), page_with(b"b"), false);
        let out = bp.install(PageId(3), page_with(b"c"), false);
        assert_eq!(out, EvictOutcome::Clean);
        assert_eq!(bp.stats().clean_evictions, 1);
        assert_eq!(bp.resident(), 2);
    }

    #[test]
    fn dirty_eviction_is_a_steal_with_image() {
        let mut bp = BufferPool::new(1);
        bp.install(PageId(1), page_with(b"dirty data"), true);
        let out = bp.install(PageId(2), page_with(b"newcomer"), false);
        match out {
            EvictOutcome::Steal { page_id, image } => {
                assert_eq!(page_id, PageId(1));
                assert_eq!(image.get(0), Some(&b"dirty data"[..]));
            }
            other => panic!("expected steal, got {other:?}"),
        }
        assert_eq!(bp.stats().steals, 1);
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let mut bp = BufferPool::new(2);
        bp.install(PageId(1), page_with(b"pinned"), false);
        bp.pin(PageId(1));
        bp.install(PageId(2), page_with(b"b"), false);
        bp.install(PageId(3), page_with(b"c"), false); // must evict 2, not 1
        assert!(bp.contains(PageId(1)));
        assert!(!bp.contains(PageId(2)));
        bp.unpin(PageId(1));
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn all_pinned_panics() {
        let mut bp = BufferPool::new(1);
        bp.install(PageId(1), page_with(b"a"), false);
        bp.pin(PageId(1));
        bp.install(PageId(2), page_with(b"b"), false);
    }

    #[test]
    fn write_access_marks_dirty() {
        let mut bp = BufferPool::new(2);
        bp.install(PageId(1), page_with(b"a"), false);
        bp.get_mut(PageId(1), true).unwrap();
        assert_eq!(bp.dirty_pages().len(), 1);
        bp.mark_clean(PageId(1));
        assert!(bp.dirty_pages().is_empty());
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut bp = BufferPool::new(2);
        bp.install(PageId(1), page_with(b"a"), false);
        bp.install(PageId(2), page_with(b"b"), false);
        // touch page 1 so it is referenced; eviction should take page 2
        bp.get_mut(PageId(1), false);
        // hand is at 0: frame0(p1, ref) gets second chance... both were
        // installed referenced; sweep clears both, then evicts frame0.
        // Touch order only matters after a full sweep — verify a victim
        // was found and pool size stays correct either way.
        bp.install(PageId(3), page_with(b"c"), false);
        assert_eq!(bp.resident(), 2);
        assert!(bp.contains(PageId(3)));
    }

    #[test]
    fn crash_clears_everything() {
        let mut bp = BufferPool::new(2);
        bp.install(PageId(1), page_with(b"a"), true);
        bp.begin_fetch(PageId(7));
        bp.crash();
        assert_eq!(bp.resident(), 0);
        assert!(!bp.contains(PageId(1)));
        assert!(!bp.fetch_in_flight(PageId(7)));
    }

    #[test]
    fn concurrent_fetches_coalesce_onto_one_command() {
        let mut bp = BufferPool::new(4);
        assert!(bp.begin_fetch(PageId(9)), "first fetch starts the command");
        assert!(!bp.begin_fetch(PageId(9)), "second request must coalesce");
        bp.add_waiter(PageId(9), 1);
        bp.add_waiter(PageId(9), 2);
        assert!(bp.fetch_in_flight(PageId(9)));
        assert_eq!(bp.stats().coalesced, 2);
        let (out, waiters) = bp.complete_fetch(PageId(9), page_with(b"img"), false);
        assert_eq!(out, EvictOutcome::Clean);
        assert_eq!(waiters, vec![1, 2], "waiters wake in registration order");
        assert!(bp.contains(PageId(9)));
        assert!(!bp.fetch_in_flight(PageId(9)));
    }

    #[test]
    fn in_flight_pages_occupy_no_frame() {
        let mut bp = BufferPool::new(1);
        bp.begin_fetch(PageId(1));
        bp.begin_fetch(PageId(2));
        assert_eq!(bp.resident(), 0);
        assert_eq!(bp.fetches_in_flight(), 2);
        bp.complete_fetch(PageId(1), page_with(b"a"), false);
        // completing the second evicts the first (capacity 1)
        let (out, _) = bp.complete_fetch(PageId(2), page_with(b"b"), false);
        assert_eq!(out, EvictOutcome::Clean);
        assert_eq!(bp.resident(), 1);
    }

    #[test]
    #[should_panic(expected = "fetch of resident page")]
    fn fetching_a_resident_page_panics() {
        let mut bp = BufferPool::new(2);
        bp.install(PageId(1), page_with(b"a"), false);
        bp.begin_fetch(PageId(1));
    }
}
