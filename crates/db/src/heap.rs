//! Heap files: unordered record storage over slotted pages.
//!
//! A heap file owns a range of page ids and a free-space hint list. It
//! operates purely on in-memory pages supplied by the buffer pool — the
//! heap layer itself never does I/O, preserving the crate's layering
//! (only [`crate::backend`] touches devices).

use std::collections::BTreeMap;

use crate::page::{PageId, Rid, SlottedPage};

/// Catalog/state of one heap file (page contents live in the buffer pool).
#[derive(Debug, Default)]
pub struct HeapFile {
    /// Pages owned by this heap, with a cached free-space hint.
    pages: BTreeMap<PageId, usize>,
}

impl HeapFile {
    /// New, empty heap file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// All page ids, ascending.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages.keys().copied()
    }

    /// Register a (new or reloaded) page with its current free space.
    pub fn register_page(&mut self, id: PageId, free: usize) {
        self.pages.insert(id, free);
    }

    /// Drop a page from the file (it became empty and was freed).
    pub fn unregister_page(&mut self, id: PageId) {
        self.pages.remove(&id);
    }

    /// Find a page with at least `need` bytes of free space, if any.
    /// First-fit in page-id order (deterministic).
    pub fn find_space(&self, need: usize) -> Option<PageId> {
        self.pages
            .iter()
            .find(|(_, &free)| free >= need)
            .map(|(&id, _)| id)
    }

    /// Update the cached free-space hint after a page mutation.
    pub fn update_hint(&mut self, id: PageId, free: usize) {
        if let Some(f) = self.pages.get_mut(&id) {
            *f = free;
        }
    }

    /// Insert a record into `page` (the buffer-pool frame for the chosen
    /// page), maintaining hints. Returns the record's rid, or `None` if
    /// the caller's chosen page was too full after all.
    pub fn insert_into(
        &mut self,
        id: PageId,
        page: &mut SlottedPage,
        record: &[u8],
    ) -> Option<Rid> {
        let slot = page.insert(record)?;
        self.update_hint(id, page.free_space());
        Some(Rid { page: id, slot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_space_first_fit_in_id_order() {
        let mut h = HeapFile::new();
        h.register_page(PageId(3), 100);
        h.register_page(PageId(1), 50);
        h.register_page(PageId(2), 100);
        assert_eq!(h.find_space(80), Some(PageId(2)));
        assert_eq!(h.find_space(40), Some(PageId(1)));
        assert_eq!(h.find_space(500), None);
    }

    #[test]
    fn insert_updates_hint() {
        let mut h = HeapFile::new();
        let mut p = SlottedPage::new();
        h.register_page(PageId(1), p.free_space());
        let rid = h.insert_into(PageId(1), &mut p, b"record").unwrap();
        assert_eq!(rid.page, PageId(1));
        assert_eq!(h.find_space(4080), None); // hint shrank below a full page
        assert!(h.find_space(100).is_some());
    }

    #[test]
    fn unregister_removes() {
        let mut h = HeapFile::new();
        h.register_page(PageId(1), 100);
        h.unregister_page(PageId(1));
        assert_eq!(h.page_count(), 0);
        assert_eq!(h.find_space(1), None);
    }
}
