//! The write-ahead log: redo records, LSNs, group commit.
//!
//! A physiological redo log in the ARIES tradition, cut down to what the
//! experiments need: page-update redo records and commit records. The log
//! object is pure state; *forcing* it to stable storage is the backend's
//! job — which is precisely where the legacy and vision designs diverge
//! (§3 P1: log writes are the canonical synchronous pattern).

use requiem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::page::PageId;

/// A log sequence number (byte offset in the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsn(pub u64);

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Redo information for one page update: replace slot `slot` of
    /// `page` with `after` (insert if the slot is new).
    Update {
        /// The transaction.
        txn: u64,
        /// Target page.
        page: PageId,
        /// Target slot.
        slot: u16,
        /// After-image of the record.
        after: Vec<u8>,
    },
    /// A record was deleted.
    Delete {
        /// The transaction.
        txn: u64,
        /// Target page.
        page: PageId,
        /// Target slot.
        slot: u16,
    },
    /// Transaction commit.
    Commit {
        /// The transaction.
        txn: u64,
    },
    /// Two-phase prepare: this shard's updates for the global
    /// transaction are complete and durable once the record is forced.
    /// A transaction with a `Prepare` but no `Commit` anywhere is *not*
    /// committed — recovery discards it.
    Prepare {
        /// The global transaction.
        txn: u64,
    },
    /// Two-phase abort: a participant's prepare force failed and the
    /// coordinator rolled the global transaction back. Purely
    /// informational for recovery (no `Commit` exists either way).
    Abort {
        /// The global transaction.
        txn: u64,
    },
    /// Checkpoint: all pages with LSN ≤ this record's LSN are durable.
    Checkpoint,
}

impl LogRecord {
    /// Serialized size in bytes (header + payload), used for log-space
    /// accounting and force sizing.
    pub fn encoded_len(&self) -> u32 {
        let payload = match self {
            LogRecord::Update { after, .. } => 8 + 8 + 2 + 4 + after.len(),
            LogRecord::Delete { .. } => 8 + 8 + 2,
            LogRecord::Commit { .. } => 8,
            LogRecord::Prepare { .. } => 8,
            LogRecord::Abort { .. } => 8,
            LogRecord::Checkpoint => 0,
        };
        (16 + payload) as u32 // 16-byte record header (lsn, len, type, crc)
    }
}

/// The in-memory log: appended records plus the durable horizon.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<(Lsn, LogRecord)>,
    next_lsn: u64,
    /// Everything up to (and including) this LSN is durable.
    flushed: Option<Lsn>,
}

impl Wal {
    /// New, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record; returns its LSN. Not yet durable.
    pub fn append(&mut self, rec: LogRecord) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += u64::from(rec.encoded_len());
        self.records.push((lsn, rec));
        lsn
    }

    /// The LSN the next record will get.
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }

    /// Durable horizon.
    pub fn flushed(&self) -> Option<Lsn> {
        self.flushed
    }

    /// Bytes not yet durable.
    pub fn unflushed_bytes(&self) -> u64 {
        let from = self.flushed.map(|l| l.0).unwrap_or(0);
        self.next_lsn
            - self
                .records
                .iter()
                .find(|(lsn, _)| lsn.0 >= from && self.flushed.map(|f| lsn.0 > f.0).unwrap_or(true))
                .map(|(lsn, _)| lsn.0)
                .unwrap_or(self.next_lsn)
    }

    /// Mark everything up to `lsn` durable (called by the backend after a
    /// successful force).
    pub fn mark_flushed(&mut self, lsn: Lsn) {
        debug_assert!(self.flushed.map(|f| lsn >= f).unwrap_or(true));
        self.flushed = Some(lsn);
    }

    /// Records with LSN strictly greater than `after` (or all, if `None`)
    /// — the redo range for recovery.
    pub fn records_after(&self, after: Option<Lsn>) -> impl Iterator<Item = &(Lsn, LogRecord)> {
        let from = after.map(|l| l.0);
        self.records
            .iter()
            .filter(move |(lsn, _)| from.map(|f| lsn.0 > f).unwrap_or(true))
    }

    /// All records up to the durable horizon — what survives a crash.
    pub fn durable_records(&self) -> impl Iterator<Item = &(Lsn, LogRecord)> {
        let horizon = self.flushed;
        self.records
            .iter()
            .filter(move |(lsn, _)| horizon.map(|h| *lsn <= h).unwrap_or(false))
    }

    /// Total records appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The latest checkpoint LSN at or below the durable horizon.
    pub fn last_durable_checkpoint(&self) -> Option<Lsn> {
        self.durable_records()
            .filter(|(_, r)| matches!(r, LogRecord::Checkpoint))
            .map(|(lsn, _)| *lsn)
            .last()
    }
}

// ---------------------------------------------------------------------
// Group commit: shared log forces with a deterministic flush policy
// ---------------------------------------------------------------------

/// When the next shared log force happens. All three triggers are
/// deterministic functions of enlisted state and virtual time — no
/// wall-clock timers.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCommitPolicy {
    /// Force once this many commits are enlisted (≥ 1).
    pub max_txns: u32,
    /// Force once the enlisted force bytes reach this size
    /// (0 disables the size trigger).
    pub max_bytes: u32,
    /// Force once the oldest enlisted commit has waited this long
    /// ([`SimDuration::ZERO`] disables the deadline trigger).
    pub max_wait: SimDuration,
}

impl GroupCommitPolicy {
    /// Force on every commit — the serialized engine's behaviour, and
    /// the policy under which the QD-1 identity holds.
    pub fn immediate() -> Self {
        GroupCommitPolicy {
            max_txns: 1,
            max_bytes: 0,
            max_wait: SimDuration::ZERO,
        }
    }

    /// Batch up to `n` commits per force, with no size or deadline
    /// trigger (idle engines still force: the executor forces an
    /// undersized group whenever nothing else can make progress).
    pub fn batched(n: u32) -> Self {
        GroupCommitPolicy {
            max_txns: n.max(1),
            max_bytes: 0,
            max_wait: SimDuration::ZERO,
        }
    }
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        Self::immediate()
    }
}

/// What an enlisted member means once its force lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemberKind {
    /// A local (single-shard) commit: the force completes the slot's
    /// transaction.
    #[default]
    Commit,
    /// A two-phase prepare: the force makes this shard's prepare record
    /// durable; the slot frees, and the coordinator is told the vote.
    Prepare,
    /// The coordinator's decision commit for a cross-shard transaction:
    /// slot-less (`slot == usize::MAX`), counted as one global commit.
    Decide,
}

/// One commit enlisted for the next shared force.
#[derive(Debug, Clone)]
pub struct GroupMember {
    /// Executor slot cookie (opaque to the WAL); `usize::MAX` for
    /// slot-less [`MemberKind::Decide`] members.
    pub slot: usize,
    /// How the member resolves when the force lands.
    pub kind: MemberKind,
    /// The committing transaction.
    pub txn: u64,
    /// Its commit record's LSN.
    pub lsn: Lsn,
    /// When the commit record was appended (per-txn wait starts here).
    pub enlisted: SimTime,
    /// When the transaction started (for end-to-end latency).
    pub started: SimTime,
    /// Force bytes this commit contributes.
    pub bytes: u32,
    /// Detached probe command id for the commit span (0 = not probed).
    pub probe_id: u64,
    /// True when the transaction dirtied nothing.
    pub read_only: bool,
}

/// Commits waiting for the next shared log force.
#[derive(Debug, Default)]
pub struct GroupCommit {
    members: Vec<GroupMember>,
    bytes: u32,
}

impl GroupCommit {
    /// Empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enlist one commit.
    pub fn enlist(&mut self, member: GroupMember) {
        self.bytes = self.bytes.saturating_add(member.bytes);
        self.members.push(member);
    }

    /// Enlisted commits.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when nothing is enlisted.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Accumulated force bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Enlist instant of the oldest member.
    pub fn oldest(&self) -> Option<SimTime> {
        self.members.iter().map(|m| m.enlisted).min()
    }

    /// Highest enlisted commit LSN — the durability horizon the shared
    /// force establishes.
    pub fn max_lsn(&self) -> Option<Lsn> {
        self.members.iter().map(|m| m.lsn).max()
    }

    /// True when `policy` wants a force at `now`.
    pub fn due(&self, policy: &GroupCommitPolicy, now: SimTime) -> bool {
        if self.members.is_empty() {
            return false;
        }
        if self.members.len() as u32 >= policy.max_txns.max(1) {
            return true;
        }
        if policy.max_bytes > 0 && self.bytes >= policy.max_bytes {
            return true;
        }
        if policy.max_wait > SimDuration::ZERO {
            if let Some(oldest) = self.oldest() {
                return now.since(oldest) >= policy.max_wait;
            }
        }
        false
    }

    /// Instant the deadline trigger will fire (`None` when disabled or
    /// empty).
    pub fn deadline(&self, policy: &GroupCommitPolicy) -> Option<SimTime> {
        if policy.max_wait == SimDuration::ZERO {
            return None;
        }
        self.oldest().map(|t| t + policy.max_wait)
    }

    /// Take the whole group for forcing; leaves the group empty.
    pub fn take(&mut self) -> (Vec<GroupMember>, u32) {
        let bytes = self.bytes;
        self.bytes = 0;
        (std::mem::take(&mut self.members), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_advance_by_encoded_len() {
        let mut w = Wal::new();
        let r1 = LogRecord::Commit { txn: 1 };
        let l1 = w.append(r1.clone());
        let l2 = w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(l1, Lsn(0));
        assert_eq!(l2, Lsn(u64::from(r1.encoded_len())));
    }

    #[test]
    fn encoded_len_tracks_payload() {
        let small = LogRecord::Update {
            txn: 1,
            page: PageId(1),
            slot: 0,
            after: vec![0; 10],
        };
        let big = LogRecord::Update {
            txn: 1,
            page: PageId(1),
            slot: 0,
            after: vec![0; 100],
        };
        assert_eq!(big.encoded_len() - small.encoded_len(), 90);
    }

    #[test]
    fn durability_horizon() {
        let mut w = Wal::new();
        let l1 = w.append(LogRecord::Commit { txn: 1 });
        let l2 = w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(w.durable_records().count(), 0);
        w.mark_flushed(l1);
        assert_eq!(w.durable_records().count(), 1);
        w.mark_flushed(l2);
        assert_eq!(w.durable_records().count(), 2);
    }

    #[test]
    fn records_after_filters() {
        let mut w = Wal::new();
        let l1 = w.append(LogRecord::Commit { txn: 1 });
        w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(w.records_after(None).count(), 2);
        assert_eq!(w.records_after(Some(l1)).count(), 1);
    }

    fn member(slot: usize, lsn: u64, enlisted: u64, bytes: u32) -> GroupMember {
        GroupMember {
            slot,
            kind: MemberKind::Commit,
            txn: slot as u64,
            lsn: Lsn(lsn),
            enlisted: SimTime::ZERO + SimDuration::from_nanos(enlisted),
            started: SimTime::ZERO,
            bytes,
            probe_id: 0,
            read_only: false,
        }
    }

    #[test]
    fn group_triggers_on_count_bytes_and_deadline() {
        let mut g = GroupCommit::new();
        let by_count = GroupCommitPolicy::batched(2);
        let by_bytes = GroupCommitPolicy {
            max_txns: 100,
            max_bytes: 300,
            max_wait: SimDuration::ZERO,
        };
        let by_wait = GroupCommitPolicy {
            max_txns: 100,
            max_bytes: 0,
            max_wait: SimDuration::from_micros(10),
        };
        let t = |ns: u64| SimTime::ZERO + SimDuration::from_nanos(ns);
        assert!(!g.due(&by_count, t(0)), "empty group is never due");
        g.enlist(member(0, 10, 100, 200));
        assert!(!g.due(&by_count, t(100)));
        assert!(!g.due(&by_bytes, t(100)));
        assert!(!g.due(&by_wait, t(100)));
        assert_eq!(
            g.deadline(&by_wait),
            Some(t(100) + SimDuration::from_micros(10))
        );
        g.enlist(member(1, 20, 200, 200));
        assert!(g.due(&by_count, t(200)), "two commits hit max_txns=2");
        assert!(g.due(&by_bytes, t(200)), "400 bytes hit max_bytes=300");
        assert!(!g.due(&by_wait, t(200)));
        assert!(g.due(&by_wait, t(100 + 10_000)), "oldest member ages out");
        assert_eq!(g.max_lsn(), Some(Lsn(20)));
        let (members, bytes) = g.take();
        assert_eq!(members.len(), 2);
        assert_eq!(bytes, 400);
        assert!(g.is_empty());
        assert_eq!(g.bytes(), 0);
    }

    #[test]
    fn checkpoint_discovery() {
        let mut w = Wal::new();
        w.append(LogRecord::Commit { txn: 1 });
        let ck = w.append(LogRecord::Checkpoint);
        let l3 = w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(w.last_durable_checkpoint(), None, "not yet flushed");
        w.mark_flushed(l3);
        assert_eq!(w.last_durable_checkpoint(), Some(ck));
    }
}
