//! The write-ahead log: redo records, LSNs, group commit.
//!
//! A physiological redo log in the ARIES tradition, cut down to what the
//! experiments need: page-update redo records and commit records. The log
//! object is pure state; *forcing* it to stable storage is the backend's
//! job — which is precisely where the legacy and vision designs diverge
//! (§3 P1: log writes are the canonical synchronous pattern).

use serde::{Deserialize, Serialize};

use crate::page::PageId;

/// A log sequence number (byte offset in the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsn(pub u64);

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Redo information for one page update: replace slot `slot` of
    /// `page` with `after` (insert if the slot is new).
    Update {
        /// The transaction.
        txn: u64,
        /// Target page.
        page: PageId,
        /// Target slot.
        slot: u16,
        /// After-image of the record.
        after: Vec<u8>,
    },
    /// A record was deleted.
    Delete {
        /// The transaction.
        txn: u64,
        /// Target page.
        page: PageId,
        /// Target slot.
        slot: u16,
    },
    /// Transaction commit.
    Commit {
        /// The transaction.
        txn: u64,
    },
    /// Checkpoint: all pages with LSN ≤ this record's LSN are durable.
    Checkpoint,
}

impl LogRecord {
    /// Serialized size in bytes (header + payload), used for log-space
    /// accounting and force sizing.
    pub fn encoded_len(&self) -> u32 {
        let payload = match self {
            LogRecord::Update { after, .. } => 8 + 8 + 2 + 4 + after.len(),
            LogRecord::Delete { .. } => 8 + 8 + 2,
            LogRecord::Commit { .. } => 8,
            LogRecord::Checkpoint => 0,
        };
        (16 + payload) as u32 // 16-byte record header (lsn, len, type, crc)
    }
}

/// The in-memory log: appended records plus the durable horizon.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<(Lsn, LogRecord)>,
    next_lsn: u64,
    /// Everything up to (and including) this LSN is durable.
    flushed: Option<Lsn>,
}

impl Wal {
    /// New, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record; returns its LSN. Not yet durable.
    pub fn append(&mut self, rec: LogRecord) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += u64::from(rec.encoded_len());
        self.records.push((lsn, rec));
        lsn
    }

    /// The LSN the next record will get.
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }

    /// Durable horizon.
    pub fn flushed(&self) -> Option<Lsn> {
        self.flushed
    }

    /// Bytes not yet durable.
    pub fn unflushed_bytes(&self) -> u64 {
        let from = self.flushed.map(|l| l.0).unwrap_or(0);
        self.next_lsn
            - self
                .records
                .iter()
                .find(|(lsn, _)| lsn.0 >= from && self.flushed.map(|f| lsn.0 > f.0).unwrap_or(true))
                .map(|(lsn, _)| lsn.0)
                .unwrap_or(self.next_lsn)
    }

    /// Mark everything up to `lsn` durable (called by the backend after a
    /// successful force).
    pub fn mark_flushed(&mut self, lsn: Lsn) {
        debug_assert!(self.flushed.map(|f| lsn >= f).unwrap_or(true));
        self.flushed = Some(lsn);
    }

    /// Records with LSN strictly greater than `after` (or all, if `None`)
    /// — the redo range for recovery.
    pub fn records_after(&self, after: Option<Lsn>) -> impl Iterator<Item = &(Lsn, LogRecord)> {
        let from = after.map(|l| l.0);
        self.records
            .iter()
            .filter(move |(lsn, _)| from.map(|f| lsn.0 > f).unwrap_or(true))
    }

    /// All records up to the durable horizon — what survives a crash.
    pub fn durable_records(&self) -> impl Iterator<Item = &(Lsn, LogRecord)> {
        let horizon = self.flushed;
        self.records
            .iter()
            .filter(move |(lsn, _)| horizon.map(|h| *lsn <= h).unwrap_or(false))
    }

    /// Total records appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The latest checkpoint LSN at or below the durable horizon.
    pub fn last_durable_checkpoint(&self) -> Option<Lsn> {
        self.durable_records()
            .filter(|(_, r)| matches!(r, LogRecord::Checkpoint))
            .map(|(lsn, _)| *lsn)
            .last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_advance_by_encoded_len() {
        let mut w = Wal::new();
        let r1 = LogRecord::Commit { txn: 1 };
        let l1 = w.append(r1.clone());
        let l2 = w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(l1, Lsn(0));
        assert_eq!(l2, Lsn(u64::from(r1.encoded_len())));
    }

    #[test]
    fn encoded_len_tracks_payload() {
        let small = LogRecord::Update {
            txn: 1,
            page: PageId(1),
            slot: 0,
            after: vec![0; 10],
        };
        let big = LogRecord::Update {
            txn: 1,
            page: PageId(1),
            slot: 0,
            after: vec![0; 100],
        };
        assert_eq!(big.encoded_len() - small.encoded_len(), 90);
    }

    #[test]
    fn durability_horizon() {
        let mut w = Wal::new();
        let l1 = w.append(LogRecord::Commit { txn: 1 });
        let l2 = w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(w.durable_records().count(), 0);
        w.mark_flushed(l1);
        assert_eq!(w.durable_records().count(), 1);
        w.mark_flushed(l2);
        assert_eq!(w.durable_records().count(), 2);
    }

    #[test]
    fn records_after_filters() {
        let mut w = Wal::new();
        let l1 = w.append(LogRecord::Commit { txn: 1 });
        w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(w.records_after(None).count(), 2);
        assert_eq!(w.records_after(Some(l1)).count(), 1);
    }

    #[test]
    fn checkpoint_discovery() {
        let mut w = Wal::new();
        w.append(LogRecord::Commit { txn: 1 });
        let ck = w.append(LogRecord::Checkpoint);
        let l3 = w.append(LogRecord::Commit { txn: 2 });
        assert_eq!(w.last_durable_checkpoint(), None, "not yet flushed");
        w.mark_flushed(l3);
        assert_eq!(w.last_durable_checkpoint(), Some(ck));
    }
}
