//! The host-side page table of a nameless storage manager — generic over
//! the device's handle type.
//!
//! §3 of the paper: with nameless writes *"the host stores names instead
//! of maintaining a redundant logical map"*. This table IS that stored
//! name set: one handle per live tag, patched in place when the device's
//! garbage collector migrates a page and sends a
//! [`Migrated`](requiem_iface::Upcall::Migrated) upcall. The table is
//! deliberately generic over the handle type `H` so the same structure
//! serves the block manager (where `H` is an LBA and migrations never
//! happen) and the cooperating-logs manager (where `H` is a
//! [`PhysName`](requiem_iface::PhysName) and migrations are routine).
//!
//! Patches are **old-value guarded**: a migration names the location it
//! moved *from*, and the patch applies only if the table still points
//! there. This makes upcall application idempotent and safe under the
//! one legal race — the host rebinding a tag (new write) while a
//! migration message for the *previous* version is still in flight. The
//! guarded miss is counted, never dropped silently.

use std::collections::BTreeMap;

/// Host-side tag → handle map with old-value-guarded migration patching.
#[derive(Debug, Clone)]
pub struct PageTable<H> {
    map: BTreeMap<u64, H>,
    patched: u64,
    unmatched: u64,
}

impl<H> Default for PageTable<H> {
    fn default() -> Self {
        PageTable {
            map: BTreeMap::new(),
            patched: 0,
            unmatched: 0,
        }
    }
}

impl<H: Copy + PartialEq> PageTable<H> {
    /// New, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `tag` to `handle`; returns the previous binding (the caller
    /// owns freeing the superseded version).
    pub fn bind(&mut self, tag: u64, handle: H) -> Option<H> {
        self.map.insert(tag, handle)
    }

    /// Current handle of `tag`.
    pub fn lookup(&self, tag: u64) -> Option<H> {
        self.map.get(&tag).copied()
    }

    /// Remove `tag`'s binding; returns it (the caller owns the free).
    pub fn unbind(&mut self, tag: u64) -> Option<H> {
        self.map.remove(&tag)
    }

    /// Apply one migration: if `tag` is bound to exactly `old`, rebind it
    /// to `new` and return `true`. A guarded miss (tag unbound, or bound
    /// elsewhere because the host already superseded that version) is
    /// counted and returns `false` — the message was about a version this
    /// table no longer points at.
    pub fn patch(&mut self, tag: u64, old: H, new: H) -> bool {
        match self.map.get_mut(&tag) {
            Some(h) if *h == old => {
                *h = new;
                self.patched += 1;
                true
            }
            _ => {
                self.unmatched += 1;
                false
            }
        }
    }

    /// Live bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no tag is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Migrations applied (table pointed at the old location).
    pub fn patched(&self) -> u64 {
        self.patched
    }

    /// Migrations that missed the guard (version already superseded).
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Iterate live `(tag, handle)` bindings in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, H)> + '_ {
        self.map.iter().map(|(&t, &h)| (t, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind_roundtrip() {
        let mut t: PageTable<u32> = PageTable::new();
        assert_eq!(t.bind(7, 100), None);
        assert_eq!(t.lookup(7), Some(100));
        assert_eq!(t.bind(7, 200), Some(100), "rebind returns superseded");
        assert_eq!(t.unbind(7), Some(200));
        assert!(t.is_empty());
    }

    #[test]
    fn patch_is_old_value_guarded() {
        let mut t: PageTable<u32> = PageTable::new();
        t.bind(1, 10);
        assert!(t.patch(1, 10, 11), "matching old applies");
        assert_eq!(t.lookup(1), Some(11));
        assert!(!t.patch(1, 10, 12), "stale migration must not apply");
        assert_eq!(t.lookup(1), Some(11), "binding unchanged by stale patch");
        assert!(!t.patch(2, 0, 1), "unbound tag is a guarded miss");
        assert_eq!((t.patched(), t.unmatched()), (1, 2));
    }

    #[test]
    fn patch_chains_compose() {
        // two migrations of the same version, delivered in order, both
        // apply; replayed out of order, the second is refused
        let mut t: PageTable<u32> = PageTable::new();
        t.bind(3, 10);
        assert!(t.patch(3, 10, 20));
        assert!(t.patch(3, 20, 30));
        assert!(!t.patch(3, 10, 20), "replay of the first hop is refused");
        assert_eq!(t.lookup(3), Some(30));
    }
}
