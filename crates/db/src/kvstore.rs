//! A key-value store over nameless writes — the communication abstraction
//! used in anger.
//!
//! The paper's ref [14] (SILT) is a flash key-value store whose design is
//! dominated by one constraint: the host index must be tiny, yet every
//! get must cost ≈1 flash read. With the block interface, SILT builds its
//! own log over LBAs and the FTL builds *another* log underneath, each
//! with its own cleaning and its own mapping RAM.
//!
//! [`NamelessKv`] shows what the §3 interface buys: the store's in-memory
//! index maps `key → physical name` directly — **one** level of
//! indirection, **zero** FTL mapping RAM, one shared cleaner (the
//! device's GC, which reports migrations through upcalls). Puts are
//! device-placed appends; gets are exactly one flash read; deletes are
//! exact frees (no trim ambiguity).

use std::collections::BTreeMap;

use requiem_iface::comm::Upcall;
use requiem_iface::nameless::{NamelessCompletion, NamelessError, NamelessSsd, PhysName};
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::Histogram;

/// Statistics of a [`NamelessKv`].
#[derive(Debug, Default, Clone)]
pub struct KvStats {
    /// Puts served.
    pub puts: u64,
    /// Gets served (hit or miss).
    pub gets: u64,
    /// Gets that found the key.
    pub hits: u64,
    /// Deletes served.
    pub deletes: u64,
    /// Index updates applied from device migration upcalls.
    pub migrations_applied: u64,
}

/// A page-granular KV store on a [`NamelessSsd`].
///
/// Keys are `u64`; each value occupies one device page (SILT-style stores
/// pack multiple values per page — a layout concern orthogonal to the
/// interface being demonstrated).
pub struct NamelessKv {
    dev: NamelessSsd,
    index: BTreeMap<u64, PhysName>,
    now: SimTime,
    stats: KvStats,
    get_latency: Histogram,
    put_latency: Histogram,
}

impl std::fmt::Debug for NamelessKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamelessKv")
            .field("keys", &self.index.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl NamelessKv {
    /// Wrap a nameless device.
    pub fn new(dev: NamelessSsd) -> Self {
        NamelessKv {
            dev,
            index: BTreeMap::new(),
            now: SimTime::ZERO,
            stats: KvStats::default(),
            get_latency: Histogram::new(),
            put_latency: Histogram::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Statistics.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Get-latency distribution.
    pub fn get_latency(&self) -> &Histogram {
        &self.get_latency
    }

    /// Put-latency distribution.
    pub fn put_latency(&self) -> &Histogram {
        &self.put_latency
    }

    /// The wrapped device (metrics inspection).
    pub fn device(&self) -> &NamelessSsd {
        &self.dev
    }

    /// Host-side index memory: 8 B key + name per entry — the *only*
    /// mapping state in the whole system.
    pub fn index_bytes(&self) -> u64 {
        (self.index.len() * (8 + std::mem::size_of::<PhysName>())) as u64
    }

    /// Apply pending device migration upcalls to the index. Called
    /// internally before every operation; public for explicit draining.
    pub fn sync_upcalls(&mut self) {
        for u in self.dev.upcalls().drain() {
            if let Upcall::Migrated { tag, old, new, .. } = u {
                // update only if the index still points at the old name
                // (the key may have been overwritten or deleted since)
                if self.index.get(&tag) == Some(&old) {
                    self.index.insert(tag, new);
                    self.stats.migrations_applied += 1;
                }
            }
        }
    }

    /// Insert or overwrite a key. The device chooses the location.
    pub fn put(&mut self, key: u64) -> Result<NamelessCompletion, NamelessError> {
        self.sync_upcalls();
        self.stats.puts += 1;
        // free the previous version first (exact, not a trim hint)
        if let Some(old) = self.index.get(&key).copied() {
            let t = self.dev.free(self.now, old, key)?;
            self.now = self.now.max(t);
        }
        let w = self.dev.write(self.now, key)?;
        self.now = self.now.max(w.done);
        self.index.insert(key, w.name);
        self.put_latency.record_duration(w.latency);
        Ok(w)
    }

    /// Look up a key: exactly one flash read on a hit.
    pub fn get(&mut self, key: u64) -> Result<Option<SimDuration>, NamelessError> {
        self.sync_upcalls();
        self.stats.gets += 1;
        let Some(name) = self.index.get(&key).copied() else {
            return Ok(None);
        };
        let (done, lat, status) = self.dev.read(self.now, name, key)?;
        self.now = self.now.max(done);
        // a parity-rebuilt page was re-homed by the device; the Migrated
        // upcall is applied before the next operation via sync_upcalls()
        debug_assert!(status.is_success(), "kv get hit unrecoverable media");
        self.stats.hits += 1;
        self.get_latency.record_duration(lat);
        Ok(Some(lat))
    }

    /// Delete a key (exact free on the device).
    pub fn delete(&mut self, key: u64) -> Result<bool, NamelessError> {
        self.sync_upcalls();
        self.stats.deletes += 1;
        let Some(name) = self.index.remove(&key) else {
            return Ok(false);
        };
        let t = self.dev.free(self.now, name, key)?;
        self.now = self.now.max(t);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_iface::nameless::NamelessConfig;
    use requiem_ssd::SsdConfig;

    fn store() -> NamelessKv {
        let mut base = SsdConfig::modern();
        base.shape.channels = 2;
        base.shape.chips_per_channel = 2;
        NamelessKv::new(NamelessSsd::new(NamelessConfig::from(&base)))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut kv = store();
        kv.put(7).unwrap();
        assert_eq!(kv.len(), 1);
        assert!(kv.get(7).unwrap().is_some());
        assert!(kv.get(8).unwrap().is_none());
        assert!(kv.delete(7).unwrap());
        assert!(!kv.delete(7).unwrap());
        assert!(kv.get(7).unwrap().is_none());
        assert!(kv.is_empty());
        assert_eq!(kv.stats().puts, 1);
        assert_eq!(kv.stats().gets, 3);
        assert_eq!(kv.stats().hits, 1);
    }

    #[test]
    fn overwrite_frees_the_old_version() {
        let mut kv = store();
        kv.put(1).unwrap();
        kv.put(1).unwrap();
        assert_eq!(kv.len(), 1);
        assert!(kv.get(1).unwrap().is_some());
        // device saw 2 writes and 1 free
        assert_eq!(kv.device().metrics().host_writes, 2);
        assert_eq!(kv.device().metrics().host_trims, 1);
    }

    #[test]
    fn gets_cost_exactly_one_flash_read() {
        let mut kv = store();
        for k in 0..64u64 {
            kv.put(k).unwrap();
        }
        let before = kv.device().metrics().flash_reads.host;
        for k in 0..64u64 {
            kv.get(k).unwrap();
        }
        let after = kv.device().metrics().flash_reads.host;
        assert_eq!(after - before, 64, "one flash read per get — the SILT goal");
    }

    #[test]
    fn survives_gc_churn_with_migrations() {
        let mut kv = store();
        let raw = 4 * kv.device().config().flash.geometry.total_pages();
        let keys = raw * 7 / 10;
        for k in 0..keys {
            kv.put(k).unwrap();
        }
        // churn random keys for two drive-fills: GC must migrate live data
        let mut x = 5u64;
        for _ in 0..2 * keys {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            kv.put(x % keys).unwrap();
        }
        assert!(kv.device().metrics().gc_runs > 0, "churn must trigger GC");
        assert!(
            kv.stats().migrations_applied > 0,
            "GC must have migrated live keys"
        );
        // every key still readable at its (possibly migrated) name
        for k in 0..keys {
            assert!(kv.get(k).unwrap().is_some(), "key {k} lost");
        }
    }

    #[test]
    fn index_is_the_only_mapping_state() {
        let mut kv = store();
        for k in 0..100u64 {
            kv.put(k).unwrap();
        }
        assert!(kv.index_bytes() > 0);
        assert_eq!(kv.device().mapping_table_bytes(), 0);
    }
}
